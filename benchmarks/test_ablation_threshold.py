"""Ablation E: choosing the PAR threshold delta_P.

The paper fixes one unreported ``delta_P``.  This ablation shows why no
fixed threshold can rescue the net-metering-unaware detector:

- on any *single* day its margins are merely shifted (the offset between
  its predicted PAR and reality), so its one-day ROC looks fine;
- but the offset moves day to day with the weather-driven net demand, so
  margins *pooled across days* no longer separate — the pooled ROC and
  the Youden-optimal threshold quantify the damage.

The aware detector's margins are anchored near zero on every day, so its
pooled ROC stays sharp.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.attacks.hacking import MeterHackingProcess
from repro.data.pricing import GuidelinePriceModel, PriceHistory
from repro.detection.roc import ThresholdSweep
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor

N_DAYS = 3
TRIALS_PER_DAY = 8
THRESHOLDS = np.linspace(-0.3, 0.6, 31)


@pytest.fixture(scope="module")
def pooled_sweeps(environment):
    config = environment.config
    truth = CommunityResponseSimulator(
        environment.community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
    )
    unaware_model = CommunityResponseSimulator(
        environment.community.without_net_metering(),
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
    )
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    sampler = MeterHackingProcess(
        config.detection.n_monitored_meters,
        config.detection.hack_probability,
        rng=np.random.default_rng(11),
    )
    rng = np.random.default_rng(17)
    history = environment.history
    spd = config.time.slots_per_day

    margins = {
        "aware": {"benign": [], "attacked": []},
        "unaware": {"benign": [], "attacked": []},
    }
    for _ in range(N_DAYS):
        weather = float(np.clip(rng.beta(2.0, 2.0), 0.0, 1.0))
        renewable = environment.community.total_pv * weather
        clean = price_model.price(environment.demand, renewable, rng=rng)
        p_aware = (
            AwarePricePredictor()
            .fit(history)
            .predict_day(
                demand_forecast=environment.demand, renewable_forecast=renewable
            )
        )
        p_unaware = UnawarePricePredictor().fit(history).predict_day()
        detectors = {
            "aware": SingleEventDetector(
                truth, p_aware, threshold=0.1, margin_noise_std=0.0
            ),
            "unaware": SingleEventDetector(
                truth,
                p_unaware,
                predicted_simulator=unaware_model,
                threshold=0.1,
                margin_noise_std=0.0,
            ),
        }
        for name, detector in detectors.items():
            margins[name]["benign"].append(detector.check(clean).margin)
            for _ in range(TRIALS_PER_DAY):
                attack = sampler.draw_attack()
                margins[name]["attacked"].append(
                    detector.check(attack.apply(clean)).margin
                )
        history = PriceHistory(
            prices=np.concatenate([history.prices, clean]),
            demand=np.concatenate([history.demand, environment.demand]),
            renewable=np.concatenate([history.renewable, renewable]),
            nm_active=np.concatenate(
                [history.nm_active, np.ones(spd, dtype=bool)]
            ),
            slots_per_day=spd,
        )

    sweeps = {}
    for name, samples in margins.items():
        benign = np.asarray(samples["benign"])
        attacked = np.asarray(samples["attacked"])
        from repro.detection.roc import ThresholdOperatingPoint

        points = tuple(
            ThresholdOperatingPoint(
                threshold=float(t),
                tp_rate=float(np.mean(attacked > t)),
                fp_rate=float(np.mean(benign > t)),
            )
            for t in THRESHOLDS
        )
        sweeps[name] = ThresholdSweep(
            points=points, benign_margins=benign, attacked_margins=attacked
        )
    return sweeps


def test_pooled_threshold_sweep(pooled_sweeps, benchmark):
    def run():
        return {name: sweep.auc() for name, sweep in pooled_sweeps.items()}

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, auc in aucs.items():
        report(f"Ablation E: pooled {name} AUC", 0.0, auc)
        benchmark.extra_info[f"auc_{name}"] = auc
    assert aucs["aware"] > 0.75


def test_unaware_best_threshold_still_misses(pooled_sweeps, benchmark):
    """Even at ITS Youden-optimal threshold the unaware detector detects a
    smaller fraction of attacks than the aware detector at its own —
    retuning delta_P cannot close the gap."""
    aware_best, unaware_best = benchmark.pedantic(
        lambda: (
            pooled_sweeps["aware"].best_by_youden(),
            pooled_sweeps["unaware"].best_by_youden(),
        ),
        rounds=1,
        iterations=1,
    )
    report("Ablation E: aware best J", 0.0, aware_best.youden_j)
    report("Ablation E: unaware best J", 0.0, unaware_best.youden_j)
    assert aware_best.youden_j >= unaware_best.youden_j - 0.05


def test_unaware_offset_varies_across_days(pooled_sweeps, benchmark):
    """The unaware detector's benign margins vary more day-to-day
    (weather moves its model offset); the aware detector's stay anchored."""
    aware_spread, unaware_spread = benchmark.pedantic(
        lambda: (
            pooled_sweeps["aware"].benign_margins.std(),
            pooled_sweeps["unaware"].benign_margins.std(),
        ),
        rounds=1,
        iterations=1,
    )
    report("Ablation E: benign-margin spread (aware)", 0.0, aware_spread)
    report("Ablation E: benign-margin spread (unaware)", 0.0, unaware_spread)
