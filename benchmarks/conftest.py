"""Shared artifacts for the benchmark harness.

Everything expensive (community, history, predictors, the clean-day
environment) is computed once per session and shared across the
figure/table benchmarks, mirroring how the paper's experiments share one
simulated community.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.config import CommunityConfig
from repro.core.presets import bench_preset
from repro.simulation.aggregate import AggregateResult, run_aggregate_scenario
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    PriceHistory,
    baseline_demand_profile,
    generate_history,
)
from repro.perf.counters import PERF
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.scheduling.game import Community
from repro.simulation.cache import global_game_cache


@dataclass(frozen=True)
class BenchEnvironment:
    """One evaluation day shared by the figure benchmarks."""

    config: CommunityConfig
    community: Community
    history: PriceHistory
    demand: np.ndarray
    renewable: np.ndarray
    clean_prices: np.ndarray
    unaware_prices: np.ndarray
    aware_prices: np.ndarray


@pytest.fixture(scope="session")
def bench_config() -> CommunityConfig:
    return bench_preset()


@pytest.fixture(scope="session")
def environment(bench_config: CommunityConfig) -> BenchEnvironment:
    rng = np.random.default_rng(bench_config.seed)
    community = build_community(bench_config, rng=rng)
    demand = baseline_demand_profile(bench_config.time) * bench_config.n_customers
    model = GuidelinePriceModel(
        config=bench_config.pricing, n_customers=bench_config.n_customers
    )
    history = generate_history(
        rng,
        n_customers=bench_config.n_customers,
        pricing=bench_config.pricing,
        solar=bench_config.solar,
        mean_pv_per_customer_kw=bench_config.solar.peak_kw * bench_config.pv_adoption,
    )
    renewable = community.total_pv  # sunny evaluation day
    clean = model.price(demand, renewable, rng=rng)
    unaware = UnawarePricePredictor().fit(history).predict_day()
    aware = (
        AwarePricePredictor()
        .fit(history)
        .predict_day(demand_forecast=demand, renewable_forecast=renewable)
    )
    return BenchEnvironment(
        config=bench_config,
        community=community,
        history=history,
        demand=demand,
        renewable=renewable,
        clean_prices=clean,
        unaware_prices=unaware,
        aware_prices=aware,
    )


SCENARIO_SEEDS = (2015, 7)
"""Seeds aggregated by the Fig. 6 / Table 1 benches: a 48-hour window
holds only a couple of attack campaigns, so single-seed numbers carry
real draw-to-draw variance."""


@pytest.fixture(scope="session")
def scenario_aggregates(bench_config) -> dict[str, AggregateResult]:
    """All three detector variants, aggregated across SCENARIO_SEEDS."""
    return {
        kind: run_aggregate_scenario(
            bench_config, detector=kind, seeds=SCENARIO_SEEDS, n_slots=48
        )
        for kind in ("none", "unaware", "aware")
    }


_REPORT_ROWS: list[str] = []


def report(label: str, paper: float, measured: float) -> None:
    """Record and print one paper-vs-measured comparison row.

    ``paper=0.0`` marks quantities the paper does not publish (our
    ablations); those rows print without a deviation column.  Rows are
    also replayed in the terminal summary so they survive pytest's
    output capture in recorded runs.
    """
    if paper == 0.0:  # repro: noqa[FLT001] 0.0 is an exact sentinel for 'paper does not publish this'
        row = f"{label}: measured={measured:.4f}"
    else:
        deviation = (measured - paper) / paper * 100.0
        row = (
            f"{label}: paper={paper:.4f}  measured={measured:.4f}  "
            f"({deviation:+.1f}%)"
        )
    _REPORT_ROWS.append(row)
    print(f"\n  {row}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the paper-vs-measured rows, then the hot-path perf totals."""
    if _REPORT_ROWS:
        terminalreporter.write_sep("=", "paper vs measured")
        for row in _REPORT_ROWS:
            terminalreporter.write_line("  " + row)
    counters = PERF.snapshot()
    cache = global_game_cache()
    if counters or cache.hits or cache.misses:
        terminalreporter.write_sep("=", "hot-path perf counters")
        for name, value in sorted(counters.items()):
            terminalreporter.write_line(f"  {name}: {value:g}")
        terminalreporter.write_line(
            f"  game cache: {cache.hits} hits / {cache.misses} misses "
            f"(hit rate {cache.hit_rate:.2%}, {cache.size} entries)"
        )
