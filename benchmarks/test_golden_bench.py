"""Golden-master regression for the bench preset (paper-scale fixture).

The bench fixture takes minutes to recompute, so it lives in the
benchmark tier rather than tier-1; ``tests/test_golden_master.py``
covers the fast smoke preset.  Regenerate after intentional changes with
``python scripts/refresh_golden.py --preset bench``.
"""

from pathlib import Path

from repro.core.presets import bench_preset
from repro.reporting.golden import (
    compute_golden_digests,
    diff_digests,
    load_golden_digests,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def test_bench_run_matches_committed_digests():
    expected = load_golden_digests(GOLDEN_DIR / "bench_digests.json")
    actual = compute_golden_digests(bench_preset())
    diffs = diff_digests(expected, actual)
    assert not diffs, (
        "bench golden drift (refresh only if intentional):\n" + "\n".join(diffs)
    )
