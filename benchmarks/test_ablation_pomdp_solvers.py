"""Ablation B: POMDP solver comparison (QMDP vs PBVI).

The paper uses the POMDP machinery of its ref. [4] without naming the
solver.  This ablation compares the two implemented policies on the
monitoring POMDP by simulated discounted return, plus solve-time costs.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.detection.pomdp import REPAIR, build_detection_pomdp
from repro.detection.solvers import BeliefFilter, PbviPolicy, QmdpPolicy

N_METERS = 10


@pytest.fixture(scope="module")
def model():
    return build_detection_pomdp(
        N_METERS,
        hack_probability=0.08,
        tp_rate=0.85,
        fp_rate=0.05,
        damage_per_meter=1.0,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=0.92,
    )


def simulate_policy(model, policy, *, n_episodes=40, horizon=48, seed=0) -> float:
    """Monte-Carlo discounted return of a policy on the true POMDP."""
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(n_episodes):
        state = 0
        belief_filter = BeliefFilter(model)
        discount = 1.0
        episode = 0.0
        action = 0
        for _ in range(horizon):
            observation = rng.choice(
                model.n_observations, p=model.observations[action, state]
            )
            belief_filter.update(action, observation)
            action = policy.action(belief_filter.belief)
            episode += discount * model.rewards[action, state]
            discount *= model.discount
            state = rng.choice(model.n_states, p=model.transitions[action, state])
        total += episode
    return total / n_episodes


def test_qmdp_solve_time(model, benchmark):
    policy = benchmark.pedantic(lambda: QmdpPolicy(model), rounds=3, iterations=1)
    assert policy.q_values.shape == (2, N_METERS + 1)


def test_pbvi_solve_time(model, benchmark):
    policy = benchmark.pedantic(
        lambda: PbviPolicy(model, n_beliefs=48, n_backups=25, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    assert policy.alpha_vectors.shape[1] == N_METERS + 1


def test_policy_quality_comparison(model, benchmark):
    qmdp = QmdpPolicy(model)
    pbvi = PbviPolicy(model, n_beliefs=48, n_backups=25, rng=np.random.default_rng(0))

    def run():
        return (
            simulate_policy(model, qmdp, seed=1),
            simulate_policy(model, pbvi, seed=1),
        )

    qmdp_return, pbvi_return = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation B: QMDP simulated return", 0.0, qmdp_return)
    report("Ablation B: PBVI simulated return", 0.0, pbvi_return)
    benchmark.extra_info["qmdp_return"] = qmdp_return
    benchmark.extra_info["pbvi_return"] = pbvi_return
    # Both must clearly beat never repairing.
    never = simulate_policy(model, _NeverRepair(), seed=1)
    assert qmdp_return > never
    assert pbvi_return > never


def test_policies_repair_under_saturation(model, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    saturated = np.zeros(N_METERS + 1)
    saturated[-1] = 1.0
    assert QmdpPolicy(model).action(saturated) == REPAIR
    assert (
        PbviPolicy(model, n_beliefs=48, n_backups=25, rng=np.random.default_rng(0)).action(
            saturated
        )
        == REPAIR
    )


class _NeverRepair:
    def action(self, belief) -> int:
        return 0
