"""Figure 4: net-metering-aware prediction (price match + load PAR).

Paper: the G(p, V, D)-featured SVR tracks the received guideline price
closely (Fig. 4a) and the predicted load has PAR = 1.3986 (Fig. 4b),
5.11% below the unaware prediction's 1.4700.
"""

import pytest

from benchmarks.conftest import report
from repro.detection.single_event import CommunityResponseSimulator
from repro.metrics.errors import rmse

PAPER_PAR_FIG4B = 1.3986


@pytest.fixture(scope="module")
def aware_simulator(environment):
    return CommunityResponseSimulator(
        environment.community,
        config=environment.config.game,
        sellback_divisor=environment.config.pricing.sellback_divisor,
        seed=3,
    )


def test_fig4a_price_match_beats_unaware(environment, benchmark):
    """The aware prediction matches the received price better (paper's
    central prediction claim)."""
    aware_error, unaware_error = benchmark.pedantic(
        lambda: (
            rmse(environment.clean_prices, environment.aware_prices),
            rmse(environment.clean_prices, environment.unaware_prices),
        ),
        rounds=1,
        iterations=1,
    )
    report("Fig4a RMSE improvement factor", 1.0, unaware_error / aware_error)
    assert aware_error < unaware_error


def test_fig4b_predicted_load_par(environment, aware_simulator, benchmark):
    """Predicted energy load under the aware price (paper: PAR 1.3986)."""

    def run():
        return aware_simulator.grid_par(environment.aware_prices)

    par_value = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig4b aware predicted PAR", PAPER_PAR_FIG4B, par_value)
    benchmark.extra_info["paper_par"] = PAPER_PAR_FIG4B
    benchmark.extra_info["measured_par"] = par_value
    assert 1.1 <= par_value <= 1.6


def test_fig4b_matches_reality(environment, aware_simulator, benchmark):
    """The aware predicted PAR tracks the true benign PAR closely — unlike
    the unaware prediction (Fig. 3)."""
    true_par, aware_par = benchmark.pedantic(
        lambda: (
            aware_simulator.grid_par(environment.clean_prices),
            aware_simulator.grid_par(environment.aware_prices),
        ),
        rounds=1,
        iterations=1,
    )
    unaware_model = CommunityResponseSimulator(
        environment.community.without_net_metering(),
        config=environment.config.game,
        sellback_divisor=environment.config.pricing.sellback_divisor,
        seed=3,
    )
    unaware_par = unaware_model.grid_par(environment.unaware_prices)
    report("Fig4b |aware PAR - true PAR|", 0.0, abs(aware_par - true_par))
    assert abs(aware_par - true_par) < abs(unaware_par - true_par)
