"""Table 1: PAR and labor cost under the three detection policies.

Paper:

=======================  ============  ==========  ========
quantity                 No Detection  Unaware     Aware
=======================  ============  ==========  ========
PAR                      1.6509        1.5422      1.4112
Normalized labor cost    --            1.0000      1.0067
=======================  ============  ==========  ========

The aware detector reduces the PAR by 8.49% relative to the unaware one
at a 0.67% labor premium.  The reproduction targets the ordering: the
realized PAR falls monotonically from no-detection through unaware to
aware.  Numbers are means over ``SCENARIO_SEEDS``.
"""

from benchmarks.conftest import report
from repro.metrics.cost import normalized_labor_cost

PAPER = {
    "none": 1.6509,
    "unaware": 1.5422,
    "aware": 1.4112,
}


def test_table1_par_rows(scenario_aggregates, benchmark):
    def run():
        return {
            kind: aggregate.mean_par.mean
            for kind, aggregate in scenario_aggregates.items()
        }

    pars = benchmark.pedantic(run, rounds=1, iterations=1)
    for kind in ("none", "unaware", "aware"):
        report(f"Table1 PAR [{kind}]", PAPER[kind], pars[kind])
        benchmark.extra_info[f"paper_{kind}"] = PAPER[kind]
        benchmark.extra_info[f"measured_{kind}"] = pars[kind]
    # The paper's ordering: detection reduces PAR, awareness reduces it more.
    assert pars["aware"] < pars["none"]
    assert pars["unaware"] < pars["none"]
    assert pars["aware"] <= pars["unaware"] + 0.02


def test_table1_labor_cost(scenario_aggregates, benchmark):
    """Labor cost comparison (paper: aware/unaware = 1.0067).

    The aware detector catches more campaigns, so it dispatches at least
    as much repair labor; the paper found a 0.67% premium.
    """
    unaware_cost, aware_cost = benchmark.pedantic(
        lambda: (
            scenario_aggregates["unaware"].labor_cost.mean,
            scenario_aggregates["aware"].labor_cost.mean,
        ),
        rounds=1,
        iterations=1,
    )
    assert scenario_aggregates["none"].labor_cost.mean == 0.0  # repro: noqa[FLT001] exactly zero by construction: no detector means no labor
    if unaware_cost > 0:
        ratio = normalized_labor_cost(aware_cost, unaware_cost)
        report("Table1 normalized labor cost (aware)", 1.0067, ratio)
        assert ratio >= 0.8


def test_table1_detection_reduces_compromise_time(scenario_aggregates, benchmark):
    """Detected-and-repaired fleets spend less time compromised."""
    none_hacked = benchmark.pedantic(
        lambda: scenario_aggregates["none"].mean_hacked.mean,
        rounds=1,
        iterations=1,
    )
    assert scenario_aggregates["aware"].mean_hacked.mean < none_hacked
    assert scenario_aggregates["unaware"].mean_hacked.mean <= none_hacked


def test_table1_awareness_shortens_exposure(scenario_aggregates, benchmark):
    """The aware detector clears compromises faster than the unaware one
    (this is what produces the PAR column's ordering)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert (
        scenario_aggregates["aware"].mean_hacked.mean
        <= scenario_aggregates["unaware"].mean_hacked.mean
    )
