"""Figure 6: POMDP observation accuracy over the 48-hour scenario.

Paper: the detection technique considering net metering has an average
observation accuracy of 95.14%; without considering net metering it is
65.95% — a 29.19-point gap caused by the unaware prediction's PAR bias.

Numbers are means over ``SCENARIO_SEEDS`` (a 48-hour window sees only a
couple of attack campaigns, so single runs carry draw variance).
"""

from benchmarks.conftest import report

PAPER_AWARE_ACCURACY = 0.9514
PAPER_UNAWARE_ACCURACY = 0.6595


def test_fig6_aware_accuracy(scenario_aggregates, benchmark):
    aggregate = scenario_aggregates["aware"]

    def run():
        return aggregate.observation_accuracy.mean

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig6 aware observation accuracy", PAPER_AWARE_ACCURACY, accuracy)
    benchmark.extra_info["paper"] = PAPER_AWARE_ACCURACY
    benchmark.extra_info["measured"] = accuracy
    benchmark.extra_info["std"] = aggregate.observation_accuracy.std
    assert accuracy > 0.85


def test_fig6_unaware_accuracy(scenario_aggregates, benchmark):
    aggregate = scenario_aggregates["unaware"]

    def run():
        return aggregate.observation_accuracy.mean

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig6 unaware observation accuracy", PAPER_UNAWARE_ACCURACY, accuracy)
    benchmark.extra_info["paper"] = PAPER_UNAWARE_ACCURACY
    benchmark.extra_info["measured"] = accuracy
    benchmark.extra_info["std"] = aggregate.observation_accuracy.std
    assert accuracy < 0.9


def test_fig6_awareness_gap(scenario_aggregates, benchmark):
    """The aware detector's accuracy advantage (paper: 29.19 points)."""
    gap = benchmark.pedantic(
        lambda: (
            scenario_aggregates["aware"].observation_accuracy.mean
            - scenario_aggregates["unaware"].observation_accuracy.mean
        ),
        rounds=1,
        iterations=1,
    )
    report("Fig6 accuracy gap", 0.2919, gap)
    assert gap > 0.1


def test_fig6_per_slot_series(scenario_aggregates, benchmark):
    """Per-slot accuracy curves (the actual Fig. 6 series) stay apart on
    average across the horizon, in every aggregated run."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    aware_runs = scenario_aggregates["aware"].runs
    unaware_runs = scenario_aggregates["unaware"].runs
    aware_mean = sum(r.accuracy_per_slot.mean() for r in aware_runs) / len(aware_runs)
    unaware_mean = sum(r.accuracy_per_slot.mean() for r in unaware_runs) / len(
        unaware_runs
    )
    assert aware_mean > unaware_mean


def test_fig6_unaware_fails_by_missing(scenario_aggregates, benchmark):
    """The unaware detector's errors are missed detections (the paper's
    mechanism), not false alarms."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for run in scenario_aggregates["unaware"].runs:
        tp, fp = run.rates_summary()
        assert fp < 0.2
