"""Ablation D: the value of the POMDP policy.

Table 1 compares detection variants; this ablation fixes the (aware)
observation channel and swaps only the *decision policy*: the POMDP
(QMDP) policy against never/always/periodic/threshold heuristics.  The
comparison metric is the POMDP's own objective — expected discounted
reward combining attack damage and labor cost — evaluated by Monte-Carlo
simulation on the true model.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.detection.policies import (
    AlwaysRepair,
    NeverRepair,
    ObservationThreshold,
    PeriodicRepair,
)
from repro.detection.pomdp import build_detection_pomdp
from repro.detection.solvers import BeliefFilter, QmdpPolicy

N_METERS = 10


@pytest.fixture(scope="module")
def model():
    return build_detection_pomdp(
        N_METERS,
        hack_probability=0.08,
        tp_rate=0.9,
        fp_rate=0.05,
        damage_per_meter=1.0,
        repair_fixed_cost=2.0,
        repair_cost_per_meter=1.0,
        discount=0.92,
    )


def simulate(model, policy_factory, *, n_episodes=50, horizon=48, seed=0) -> float:
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(n_episodes):
        policy = policy_factory()
        state = 0
        belief = BeliefFilter(model)
        action = 0
        discount = 1.0
        episode = 0.0
        for _ in range(horizon):
            observation = rng.choice(
                model.n_observations, p=model.observations[action, state]
            )
            belief.update(action, observation)
            action = policy.action(belief.belief)
            episode += discount * model.rewards[action, state]
            discount *= model.discount
            state = rng.choice(model.n_states, p=model.transitions[action, state])
        total += episode
    return total / n_episodes


@pytest.fixture(scope="module")
def returns(model):
    factories = {
        "qmdp": lambda: QmdpPolicy(model),
        "never": NeverRepair,
        "always": AlwaysRepair,
        "periodic-6": lambda: PeriodicRepair(period=6),
        "threshold-2": lambda: ObservationThreshold(threshold=2.0),
    }
    return {
        name: simulate(model, factory, seed=3) for name, factory in factories.items()
    }


def test_policy_returns(returns, benchmark):
    values = benchmark.pedantic(lambda: returns, rounds=1, iterations=1)
    for name, value in values.items():
        report(f"Ablation D: {name} return", 0.0, value)
        benchmark.extra_info[name] = value
    # The POMDP policy must beat every observation-blind heuristic.
    assert values["qmdp"] > values["never"]
    assert values["qmdp"] > values["always"]
    assert values["qmdp"] > values["periodic-6"]


def test_threshold_policy_close_but_not_better(returns, benchmark):
    """The certainty-equivalent threshold rule is the strongest heuristic;
    the POMDP policy should still not lose to it."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert returns["qmdp"] >= returns["threshold-2"] - 1.0
