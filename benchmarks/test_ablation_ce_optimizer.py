"""Ablation A: cross-entropy vs baseline optimizers on the battery cost.

The paper chooses cross-entropy optimization because the battery cost is
non-convex (the selling branch is a concave quadratic).  This bench pits
CE against random search, coordinate descent and projected gradient on a
realistic battery arbitrage instance at matched evaluation budgets.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.config import BatteryConfig
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.annealing import simulated_annealing
from repro.optimization.baselines import (
    coordinate_descent,
    projected_gradient,
    random_search,
)
from repro.optimization.battery import BatteryOptimizer, BatteryProblem

H = 24


@pytest.fixture(scope="module")
def problem(environment) -> BatteryProblem:
    """A PV-plus-arbitrage battery instance from the bench environment."""
    config = environment.config
    customer = next(
        c for c in environment.community.customers if c.has_net_metering
    )
    prices = environment.clean_prices
    load = customer.base_load_array + 0.4
    return BatteryProblem(
        load=tuple(load),
        pv=customer.pv,
        others_trading=tuple(np.full(H, 60.0)),
        spec=config.battery,
        cost_model=NetMeteringCostModel(
            prices=tuple(prices),
            sellback_divisor=config.pricing.sellback_divisor,
        ),
    )


@pytest.fixture(scope="module")
def ce_result(problem):
    optimizer = BatteryOptimizer(n_samples=96, n_elites=12, n_iterations=30)
    return optimizer.optimize(problem, rng=np.random.default_rng(0))


def test_ce_optimizer(problem, ce_result, benchmark):
    optimizer = BatteryOptimizer(n_samples=96, n_elites=12, n_iterations=30)
    result = benchmark.pedantic(
        lambda: optimizer.optimize(problem, rng=np.random.default_rng(0)),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cost"] = result.fun
    benchmark.extra_info["evaluations"] = result.n_evaluations
    idle = problem.cost(np.zeros(H))
    report("Ablation A: CE cost improvement over idle", 0.0, idle - result.fun)
    assert result.fun < idle


def test_random_search_baseline(problem, ce_result, benchmark):
    result = benchmark.pedantic(
        lambda: random_search(
            problem.cost,
            np.zeros(H),
            np.full(H, problem.spec.capacity_kwh),
            n_samples=ce_result.n_evaluations,
            rng=np.random.default_rng(0),
            projection=problem.project,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cost"] = result.fun
    report("Ablation A: CE advantage over random search", 0.0, result.fun - ce_result.fun)
    # Matched budget: CE must not lose to uniform sampling.
    assert ce_result.fun <= result.fun + 1e-6


def test_coordinate_descent_baseline(problem, ce_result, benchmark):
    result = benchmark.pedantic(
        lambda: coordinate_descent(
            problem.cost,
            np.zeros(H),
            np.full(H, problem.spec.capacity_kwh),
            n_grid=5,
            n_sweeps=5,
            projection=problem.project,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cost"] = result.fun
    report(
        "Ablation A: CE vs coordinate descent (cost delta)",
        0.0,
        result.fun - ce_result.fun,
    )


def test_simulated_annealing_baseline(problem, ce_result, benchmark):
    result = benchmark.pedantic(
        lambda: simulated_annealing(
            problem.cost,
            np.zeros(H),
            np.full(H, problem.spec.capacity_kwh),
            n_iterations=ce_result.n_evaluations,
            rng=np.random.default_rng(0),
            projection=problem.project,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cost"] = result.fun
    report(
        "Ablation A: CE vs simulated annealing (cost delta)",
        0.0,
        result.fun - ce_result.fun,
    )


def test_projected_gradient_baseline(problem, ce_result, benchmark):
    result = benchmark.pedantic(
        lambda: projected_gradient(
            problem.cost,
            np.zeros(H),
            np.full(H, problem.spec.capacity_kwh),
            step=0.2,
            n_iterations=20,
            projection=problem.project,
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["cost"] = result.fun
    report(
        "Ablation A: CE vs projected gradient (cost delta)",
        0.0,
        result.fun - ce_result.fun,
    )
