"""Ablation C: the sell-back divisor W.

Section 2.3 introduces ``W >= 1``: customers are paid ``p_h / W`` for
energy sold back.  A small W makes selling attractive (aggressive
net-metering participation); ``W -> infinity`` effectively disables
selling.  This ablation sweeps W and measures the community's sold
energy and grid PAR.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.netmetering.trading import net_position
from repro.scheduling.game import SchedulingGame

W_VALUES = (1.0, 1.5, 2.0, 4.0)


@pytest.fixture(scope="module")
def sweep_results(environment):
    results = {}
    for w in W_VALUES:
        game = SchedulingGame(
            environment.community,
            environment.clean_prices,
            sellback_divisor=w,
            config=environment.config.game,
        )
        result = game.solve(rng=np.random.default_rng(3))  # repro: noqa[SEED003] same stream per divisor isolates the ablation variable
        sold_total = 0.0
        for state, count in zip(result.states, result.counts):
            _, sold = net_position(state.trading)
            sold_total += count * sold.sum()
        results[w] = {
            "sold_kwh": sold_total,
            "grid_par": float(
                result.grid_demand.max() / result.grid_demand.mean()
            ),
        }
    return results


def test_sellback_sweep(sweep_results, benchmark):
    def run():
        return {w: r["sold_kwh"] for w, r in sweep_results.items()}

    sold = benchmark.pedantic(run, rounds=1, iterations=1)
    for w in W_VALUES:
        report(f"Ablation C: energy sold at W={w}", 0.0, sold[w])
        benchmark.extra_info[f"sold_w{w}"] = sold[w]
    # Selling must not increase as the sell-back payment shrinks.
    assert sold[1.0] >= sold[4.0] - 1e-6


def test_sellback_par_recorded(sweep_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for w, result in sweep_results.items():
        report(f"Ablation C: grid PAR at W={w}", 0.0, result["grid_par"])
        assert result["grid_par"] >= 1.0
