"""Figure 5: impact of the zero-price cyberattack.

Paper: manipulating the guideline price to zero between 16:00 and 17:00
concentrates the community load into the free window; the attacked load's
PAR is 1.9037 — 29.50% above the unaware prediction (1.4700) and 36.11%
above the aware prediction (1.3986).
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.attacks.pricing import ZeroPriceAttack
from repro.detection.single_event import CommunityResponseSimulator

PAPER_PAR_FIG5B = 1.9037
PAPER_INCREASE_VS_AWARE = 0.3611


@pytest.fixture(scope="module")
def truth_simulator(environment):
    return CommunityResponseSimulator(
        environment.community,
        config=environment.config.game,
        sellback_divisor=environment.config.pricing.sellback_divisor,
        seed=3,
    )


def test_fig5b_attacked_par(environment, truth_simulator, benchmark):
    """Community response to the 16:00-17:00 zero-price attack."""
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    attacked_prices = attack.apply(environment.clean_prices)

    def run():
        return truth_simulator.grid_par(attacked_prices)

    par_value = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig5b attacked PAR", PAPER_PAR_FIG5B, par_value)
    benchmark.extra_info["paper_par"] = PAPER_PAR_FIG5B
    benchmark.extra_info["measured_par"] = par_value
    # The attack must blow the PAR far out of the benign band.
    benign = truth_simulator.grid_par(environment.clean_prices)
    assert par_value > benign + 0.25


def test_fig5b_peak_lands_in_attack_window(environment, truth_simulator, benchmark):
    """The load peak forms at the manipulated slots, as in Fig. 5(b)."""
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    result = benchmark.pedantic(
        lambda: truth_simulator.response(attack.apply(environment.clean_prices)),
        rounds=1,
        iterations=1,
    )
    peak_slot = int(np.argmax(result.grid_demand))
    assert peak_slot in (16, 17)


def test_fig5b_relative_increase(environment, truth_simulator, benchmark):
    """Attack-over-benign increase is of the paper's order (36.11%)."""
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    attacked, benign = benchmark.pedantic(
        lambda: (
            truth_simulator.grid_par(attack.apply(environment.clean_prices)),
            truth_simulator.grid_par(environment.aware_prices),
        ),
        rounds=1,
        iterations=1,
    )
    increase = (attacked - benign) / benign
    report("Fig5 relative PAR increase vs aware", PAPER_INCREASE_VS_AWARE, increase)
    assert increase > 0.2
