"""Figure 3: net-metering-unaware prediction (price match + load PAR).

Paper: the SVR-on-price-lags prediction of ref. [8] misses the midday
price gap of the received guideline price (Fig. 3a), and the predicted
energy load under that price has PAR = 1.4700 (Fig. 3b).

Reproduction targets the *shape*: the unaware prediction's error is a
multiple of the aware prediction's error, and the unaware predicted PAR
over-estimates the true benign PAR (the bias that masks attacks).
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.detection.single_event import CommunityResponseSimulator
from repro.metrics.errors import rmse

PAPER_PAR_FIG3B = 1.4700


@pytest.fixture(scope="module")
def unaware_simulator(environment):
    return CommunityResponseSimulator(
        environment.community.without_net_metering(),
        config=environment.config.game,
        sellback_divisor=environment.config.pricing.sellback_divisor,
        seed=3,
    )


def test_fig3a_price_mismatch(environment, benchmark):
    """The unaware prediction tracks the received price poorly."""
    error = benchmark.pedantic(
        lambda: rmse(environment.clean_prices, environment.unaware_prices),
        rounds=1,
        iterations=1,
    )
    relative = error / environment.clean_prices.mean()
    report("Fig3a unaware price RMSE (relative)", 0.0, relative)
    assert relative > 0.03  # visibly wrong, as in the paper's Fig. 3a


def test_fig3b_predicted_load_par(environment, unaware_simulator, benchmark):
    """Predicted energy load under the unaware price (paper: PAR 1.4700)."""

    def run():
        return unaware_simulator.grid_par(environment.unaware_prices)

    par_value = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig3b unaware predicted PAR", PAPER_PAR_FIG3B, par_value)
    benchmark.extra_info["paper_par"] = PAPER_PAR_FIG3B
    benchmark.extra_info["measured_par"] = par_value
    # Same band as the paper's benign PARs.
    assert 1.15 <= par_value <= 1.75


def test_fig3b_overestimates_reality(environment, unaware_simulator, benchmark):
    """The unaware model's PAR exceeds the true (net-metering) benign PAR —
    the systematic bias the paper identifies (1.4700 vs 1.3986)."""
    truth = CommunityResponseSimulator(
        environment.community,
        config=environment.config.game,
        sellback_divisor=environment.config.pricing.sellback_divisor,
        seed=3,
    )
    unaware_par, true_par = benchmark.pedantic(
        lambda: (
            unaware_simulator.grid_par(environment.unaware_prices),
            truth.grid_par(environment.clean_prices),
        ),
        rounds=1,
        iterations=1,
    )
    report("Fig3b bias (unaware PAR - true PAR)", 0.0714, unaware_par - true_par)
    assert unaware_par > true_par
