"""Impact assessment: detection quality vs net-metering penetration.

The paper's title question, asked as a sweep: as PV/battery adoption
grows from 0% to 80%, how do the aware and unaware detectors' observation
accuracies move?  At zero adoption the two coincide (there is no net
metering to be unaware of); the gap opens with penetration.

Runtime note: every sweep cell runs a one-day monitored scenario, so this
example takes a few minutes at its default scale.

Run:  python examples/adoption_sweep.py  [--customers N]
"""

import argparse

from repro.core.presets import bench_preset
from repro.reporting.tables import fixed_table
from repro.simulation.sweep import sweep_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=40)
    args = parser.parse_args()

    config = bench_preset().with_updates(n_customers=args.customers)
    values = (0.0, 0.25, 0.5, 0.75)
    print(f"sweeping pv_adoption over {values} ({args.customers} customers)...")
    result = sweep_scenario(
        config,
        parameter="pv_adoption",
        values=values,
        detectors=("aware", "unaware"),
        n_slots=24,
        calibration_trials=10,
        seed=2015,
    )

    aware = dict(result.series("aware", "observation_accuracy"))
    unaware = dict(result.series("unaware", "observation_accuracy"))
    aware_par = dict(result.series("aware", "mean_par"))
    unaware_par = dict(result.series("unaware", "mean_par"))
    rows = [
        [
            f"{value:.2f}",
            f"{aware[value]:.2%}",
            f"{unaware[value]:.2%}",
            f"{aware[value] - unaware[value]:+.2%}",
            f"{aware_par[value]:.3f}",
            f"{unaware_par[value]:.3f}",
        ]
        for value in values
    ]
    print()
    print(
        fixed_table(
            [
                "adoption",
                "acc(aware)",
                "acc(unaware)",
                "gap",
                "PAR(aware)",
                "PAR(unaware)",
            ],
            rows,
        )
    )
    print(
        "\nReading: the awareness gap is a net-metering phenomenon — it"
        "\nvanishes at zero adoption and widens with penetration, which is"
        "\nthe paper's core impact claim."
    )


if __name__ == "__main__":
    main()
