"""Streaming monitor demo: 30 simulated days through the online pipeline.

Builds the synthetic streaming engine (deterministic double-peak prices
with a scripted mid-month compromise window), pumps a month of events
through the incremental SVR + POMDP detector stack, and prints the
detection timeline, the belief trajectory around the attack window, and
the repair dispatches — the service-layer view of the paper's Figure 2
monitoring loop.

Run:  python examples/streaming_monitor.py  [--days N] [--checkpoint PATH]
"""

import argparse

from repro.core.presets import bench_preset
from repro.reporting.ascii import render_stream_timeline, sparkline
from repro.stream.checkpoint import save_checkpoint
from repro.stream.pipeline import build_synthetic_engine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=30)
    parser.add_argument("--attack-start", type=int, default=10)
    parser.add_argument("--attack-end", type=int, default=19)
    parser.add_argument(
        "--checkpoint", default=None, help="save resumable engine state here"
    )
    args = parser.parse_args()

    config = bench_preset()
    print(
        f"building synthetic stream: {args.days} days, "
        f"attack window days [{args.attack_start}, {args.attack_end})..."
    )
    engine = build_synthetic_engine(
        config,
        n_days=args.days,
        attack_days=(args.attack_start, args.attack_end),
    )
    engine.run()
    timeline = engine.timeline
    spd = engine.pipeline.slots_per_day

    print("\n=== detection timeline (digit = flags, R = repair dispatch) ===")
    print(render_stream_timeline(timeline, slots_per_day=spd))

    print("\n=== belief trajectory (posterior mean hacked meters) ===")
    beliefs = [det.belief_mean for det in timeline if det.belief_mean is not None]
    print(sparkline(beliefs))
    print(f"min {min(beliefs):.2f}  max {max(beliefs):.2f}")

    repairs = [det for det in timeline if det.repaired]
    print(f"\n=== repairs: {len(repairs)} dispatches ===")
    for det in repairs:
        in_window = args.attack_start <= det.day < args.attack_end
        print(
            f"day {det.day:3d} slot {det.slot:4d}: repaired "
            f"{det.repaired_count} meters (belief {det.belief_mean:.2f}, "
            f"{'inside' if in_window else 'outside'} attack window)"
        )

    stats = engine.pipeline.detection_stats()
    print(
        f"\nslots {stats['slots_processed']}  flags {stats['flags_total']}  "
        f"observation accuracy {stats['observation_accuracy']:.2%}"
    )

    if args.checkpoint is not None:
        path = save_checkpoint(engine, args.checkpoint)
        print(f"checkpoint saved to {path} (resume with repro.stream.resume_engine)")


if __name__ == "__main__":
    main()
