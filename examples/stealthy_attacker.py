"""Detection-aware attacker study (extension of the paper's threat model).

If the attacker knows the detector's PAR threshold, how much billing
damage can it still do while staying invisible?  Sweeps the stealth
planner across thresholds, mapping the residual-exposure curve — the
security margin the paper's framework leaves on the table.

Run:  python examples/stealthy_attacker.py
"""

import numpy as np

from repro.attacks.stealth import plan_stealthy_attack
from repro.billing.realtime import RealTimePriceModel
from repro.core.presets import bench_preset
from repro.data.community import build_community
from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile
from repro.detection.single_event import CommunityResponseSimulator
from repro.reporting.tables import fixed_table


def main() -> None:
    config = bench_preset().with_updates(n_customers=60)
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    clean = price_model.price(demand, community.total_pv, rng=rng)
    simulator = CommunityResponseSimulator(
        community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
    )
    billing = RealTimePriceModel(
        config=config.pricing, n_customers=config.n_customers, surge_exponent=1.5
    )

    rows = []
    for threshold in (0.02, 0.05, 0.10, 0.20, 0.40):
        plan = plan_stealthy_attack(
            simulator,
            clean,
            threshold=threshold,
            price_model=billing,
            strengths=np.linspace(0.1, 0.9, 9),
            window_starts=np.arange(8, 21, 2),
            safety_margin=config.detection.margin_noise_std,
        )
        if plan.found:
            attack = plan.attack
            description = (
                f"s={attack.strength:.1f} [{attack.start_slot},{attack.end_slot}]"
            )
        else:
            description = "(none undetectable)"
        rows.append(
            [
                f"{threshold:.2f}",
                description,
                f"{plan.margin:+.3f}",
                f"{plan.bill_damage * 100:+.2f}%",
            ]
        )
    print("residual exposure vs detector threshold (delta_P):\n")
    print(
        fixed_table(
            ["delta_P", "best hidden attack", "PAR margin", "bill damage"], rows
        )
    )
    print(
        "\nReading: tighter thresholds shrink the attacker's hidden-damage"
        "\nbudget; the paper's detector leaves only the sub-threshold band."
    )


if __name__ == "__main__":
    main()
