"""Household battery arbitrage with cross-entropy optimization.

A single net-metered household faces a day-ahead guideline price with a
cheap solar midday and an expensive evening.  The cross-entropy
optimizer (Section 3.2 of the paper) finds the battery trajectory that
buys/stores cheap energy and discharges into the expensive hours, and is
compared against the ablation baselines.

Run:  python examples/battery_arbitrage.py
"""

import numpy as np

from repro.core.config import BatteryConfig, SolarConfig, TimeGrid
from repro.data.solar import generate_pv
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.baselines import (
    coordinate_descent,
    projected_gradient,
    random_search,
)
from repro.optimization.battery import BatteryOptimizer, BatteryProblem


def main() -> None:
    rng = np.random.default_rng(7)
    grid = TimeGrid(slots_per_day=24, n_days=1)
    hours = np.arange(24) + 0.5

    # Duck-curve guideline price: cheap solar midday, expensive evening.
    prices = 0.03 + 0.02 * np.exp(-0.5 * ((hours - 19) / 2.0) ** 2)
    prices -= 0.015 * np.exp(-0.5 * ((hours - 13) / 2.5) ** 2)

    pv = generate_pv(rng, grid, SolarConfig(peak_kw=1.5))
    load = np.full(24, 0.8)
    spec = BatteryConfig(
        capacity_kwh=4.0, initial_kwh=0.5, max_charge_kw=1.5, max_discharge_kw=1.5
    )
    problem = BatteryProblem(
        load=tuple(load),
        pv=tuple(pv),
        others_trading=tuple(np.full(24, 40.0)),
        spec=spec,
        cost_model=NetMeteringCostModel(prices=tuple(prices), sellback_divisor=2.0),
    )

    idle_cost = problem.cost(np.full(24, spec.initial_kwh))
    print(f"idle battery cost        : {idle_cost:8.4f}")

    ce = BatteryOptimizer(n_samples=64, n_elites=10, n_iterations=25).optimize(
        problem, rng=np.random.default_rng(0)
    )
    print(
        f"cross-entropy            : {ce.fun:8.4f}  "
        f"({ce.n_evaluations} evaluations, saved {idle_cost - ce.fun:.4f})"
    )

    bounds = (np.zeros(24), np.full(24, spec.capacity_kwh))
    rs = random_search(
        problem.cost, *bounds, n_samples=ce.n_evaluations,
        rng=np.random.default_rng(0), projection=problem.project,
    )
    cd = coordinate_descent(
        problem.cost, *bounds, n_grid=5, n_sweeps=4, projection=problem.project
    )
    pg = projected_gradient(
        problem.cost, *bounds, step=0.2, n_iterations=30, projection=problem.project
    )
    print(f"random search (matched)  : {rs.fun:8.4f}")
    print(f"coordinate descent       : {cd.fun:8.4f}")
    print(f"projected gradient       : {pg.fun:8.4f}")

    trajectory = problem.full_trajectory(ce.x)
    trading = problem.trading(ce.x)
    print("\nhour  price   pv    b(start)  trade")
    for h in range(24):
        print(
            f"{h:4d} {prices[h]:6.4f} {pv[h]:5.2f} {trajectory[h]:8.2f} "
            f"{trading[h]:+6.2f}"
        )


if __name__ == "__main__":
    main()
