"""Quickstart: the end-to-end detection pipeline in ~40 lines.

Builds a small smart home community with net metering, trains the
net-metering-aware guideline-price predictor, predicts the community
load by solving the scheduling game, and runs a single-event cyberattack
check against a manipulated price.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks.pricing import ZeroPriceAttack
from repro.core import DetectionFramework, smoke_preset


def main() -> None:
    config = smoke_preset().with_updates(n_customers=20)
    framework = DetectionFramework(config, aware=True).train()

    # One evaluation day: genuine (clean) prices and the SVR prediction.
    day = framework.sample_day(weather=0.8)
    print("clean prices   :", np.round(day.clean_prices, 4))
    print("predicted      :", np.round(day.predicted_prices, 4))

    # Net-metering-aware load prediction = solve the scheduling game.
    prediction = framework.predict_load(day.predicted_prices)
    print(f"\npredicted load PAR      : {prediction.par:.4f}")
    print(f"predicted grid PAR      : {prediction.grid_par:.4f}")
    print(f"game converged          : {prediction.game.converged}")

    # Single-event detection: benign check, then a zero-price attack.
    detector = framework.single_event_detector(day.predicted_prices)
    benign = detector.check(day.clean_prices)
    print(f"\nbenign margin           : {benign.margin:+.4f} (flagged={benign.flagged})")

    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    attacked = detector.check(attack.apply(day.clean_prices))
    print(f"attacked margin         : {attacked.margin:+.4f} (flagged={attacked.flagged})")
    print(f"detection threshold     : {detector.threshold}")


if __name__ == "__main__":
    main()
