"""Long-term monitoring study: reproduce the Figure 6 / Table 1 narrative.

Runs the 48-hour monitored-community scenario under the three policies
of Table 1 (no detection, net-metering-unaware detection, net-metering-
aware detection) and prints observation accuracy, realized PAR and labor
cost.

Run:  python examples/long_term_monitoring.py  [--customers N] [--slots H]
"""

import argparse

import numpy as np

from repro.core.presets import bench_preset
from repro.metrics.cost import LaborCostModel, normalized_labor_cost
from repro.simulation.scenario import run_long_term_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=60)
    parser.add_argument("--slots", type=int, default=48)
    args = parser.parse_args()

    config = bench_preset().with_updates(n_customers=args.customers)
    labor_model = LaborCostModel(
        fixed_cost=config.detection.repair_fixed_cost,
        per_meter_cost=config.detection.repair_cost_per_meter,
    )

    results = {}
    for kind in ("none", "unaware", "aware"):
        print(f"running {kind} scenario...")
        results[kind] = run_long_term_scenario(
            config, detector=kind, n_slots=args.slots
        )

    print("\n=== Figure 6: observation accuracy (paper: 95.14% vs 65.95%) ===")
    for kind in ("aware", "unaware"):
        result = results[kind]
        print(
            f"{kind:>8}: accuracy={result.observation_accuracy:6.2%}  "
            f"calibrated tp={result.tp_rate:.2f} fp={result.fp_rate:.2f}"
        )
    print("\nper-slot accuracy series (aware):")
    print(np.round(results["aware"].accuracy_per_slot, 2))

    print("\n=== Table 1 (paper: PAR 1.6509 / 1.5422 / 1.4112) ===")
    unaware_cost = results["unaware"].labor_cost(labor_model)
    header = f"{'policy':>14} {'PAR':>8} {'repairs':>8} {'labor':>8} {'norm.':>7}"
    print(header)
    for kind in ("none", "unaware", "aware"):
        result = results[kind]
        cost = result.labor_cost(labor_model)
        normalized = (
            normalized_labor_cost(cost, unaware_cost) if unaware_cost > 0 else 0.0
        )
        print(
            f"{kind:>14} {result.mean_par:8.4f} {result.n_repairs:8d} "
            f"{cost:8.1f} {normalized:7.4f}"
        )

    print("\nmean simultaneously-hacked meters:")
    for kind in ("none", "unaware", "aware"):
        print(f"{kind:>14}: {results[kind].mean_hacked:.2f}")


if __name__ == "__main__":
    main()
