"""Attack impact study: reproduce the Figures 3-5 narrative.

Builds the evaluation day of Section 5, compares the unaware (ref. [8])
and aware guideline-price predictions against the received price, then
sweeps the zero-price attack over strengths and windows to map the PAR
damage surface.

Run:  python examples/attack_impact_study.py  [--customers N]
"""

import argparse

import numpy as np

from repro.attacks.pricing import PeakIncreaseAttack, ZeroPriceAttack
from repro.core.presets import bench_preset
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.single_event import CommunityResponseSimulator
from repro.metrics.errors import rmse
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--customers", type=int, default=60)
    args = parser.parse_args()

    config = bench_preset().with_updates(n_customers=args.customers)
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    history = generate_history(
        rng,
        n_customers=config.n_customers,
        pricing=config.pricing,
        solar=config.solar,
        mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
    )
    renewable = community.total_pv
    clean = price_model.price(demand, renewable, rng=rng)

    p_unaware = UnawarePricePredictor().fit(history).predict_day()
    p_aware = (
        AwarePricePredictor()
        .fit(history)
        .predict_day(demand_forecast=demand, renewable_forecast=renewable)
    )
    print("=== Figures 3a / 4a: prediction quality ===")
    print(f"unaware RMSE : {rmse(clean, p_unaware):.5f}")
    print(f"aware RMSE   : {rmse(clean, p_aware):.5f}")

    truth = CommunityResponseSimulator(
        community, config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )
    unaware_model = CommunityResponseSimulator(
        community.without_net_metering(), config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )
    print("\n=== Figures 3b / 4b: predicted load PAR (paper: 1.4700 / 1.3986) ===")
    print(f"unaware predicted PAR : {unaware_model.grid_par(p_unaware):.4f}")
    print(f"aware predicted PAR   : {truth.grid_par(p_aware):.4f}")
    print(f"actual benign PAR     : {truth.grid_par(clean):.4f}")

    print("\n=== Figure 5: zero price 16:00-17:00 (paper: PAR 1.9037) ===")
    attacked = truth.response(ZeroPriceAttack(16, 17).apply(clean))
    par = float(attacked.grid_demand.max() / attacked.grid_demand.mean())
    print(f"attacked PAR          : {par:.4f}")
    print("attacked grid profile :", np.round(attacked.grid_demand, 1))

    print("\n=== Damage surface: strength x window sweep ===")
    print(f"{'window':>10} " + " ".join(f"s={s:.1f}" for s in (0.4, 0.7, 1.0)))
    for start in (8, 12, 16, 20):
        row = []
        for strength in (0.4, 0.7, 1.0):
            attack = PeakIncreaseAttack(start, start + 1, strength=strength)
            row.append(truth.grid_par(attack.apply(clean)))
        print(
            f"{start:>6}-{start + 1:<3} "
            + " ".join(f"{value:5.3f}" for value in row)
        )


if __name__ == "__main__":
    main()
