"""Detector threshold study: how to pick delta_P.

Sweeps the single-event PAR threshold for the aware and unaware
detectors, printing tp/fp operating points, AUCs and the Youden-optimal
thresholds.  Shows directly why the net-metering-unaware detector cannot
be fixed by retuning the threshold: its whole margin distribution is
offset.

Run:  python examples/threshold_study.py
"""

import numpy as np

from repro.attacks.hacking import MeterHackingProcess
from repro.core.presets import bench_preset
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.roc import sweep_thresholds
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.reporting.tables import fixed_table


def main() -> None:
    config = bench_preset().with_updates(n_customers=60)
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    history = generate_history(
        rng,
        n_customers=config.n_customers,
        pricing=config.pricing,
        solar=config.solar,
        mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
    )
    clean = price_model.price(demand, community.total_pv, rng=rng)
    p_aware = (
        AwarePricePredictor()
        .fit(history)
        .predict_day(demand_forecast=demand, renewable_forecast=community.total_pv)
    )
    p_unaware = UnawarePricePredictor().fit(history).predict_day()

    truth = CommunityResponseSimulator(
        community, config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )
    unaware_model = CommunityResponseSimulator(
        community.without_net_metering(), config=config.game,
        sellback_divisor=config.pricing.sellback_divisor, seed=3,
    )
    sampler = MeterHackingProcess(
        config.detection.n_monitored_meters,
        config.detection.hack_probability,
        rng=np.random.default_rng(11),
    )
    detectors = {
        "aware": SingleEventDetector(
            truth, p_aware,
            threshold=config.detection.par_threshold,
            margin_noise_std=config.detection.margin_noise_std,
        ),
        "unaware": SingleEventDetector(
            truth, p_unaware, predicted_simulator=unaware_model,
            threshold=config.detection.par_threshold,
            margin_noise_std=config.detection.margin_noise_std,
        ),
    }

    thresholds = np.linspace(-0.05, 0.5, 12)
    for name, detector in detectors.items():
        print(f"\n=== {name} detector ===")
        sweep = sweep_thresholds(
            detector, clean, sampler,
            thresholds=thresholds, n_trials=20, rng=np.random.default_rng(5),
        )
        print(
            f"benign margins  : mean {sweep.benign_margins.mean():+.3f} "
            f"std {sweep.benign_margins.std():.3f}"
        )
        print(
            f"attacked margins: mean {sweep.attacked_margins.mean():+.3f} "
            f"std {sweep.attacked_margins.std():.3f}"
        )
        rows = [
            [f"{p.threshold:+.3f}", f"{p.tp_rate:.2f}", f"{p.fp_rate:.2f}", f"{p.youden_j:+.2f}"]
            for p in sweep.points
        ]
        print(fixed_table(["delta_P", "tp", "fp", "J"], rows))
        best = sweep.best_by_youden()
        print(f"AUC = {sweep.auc():.3f}; best delta_P = {best.threshold:+.3f} (J={best.youden_j:+.2f})")


if __name__ == "__main__":
    main()
