"""Billing impact of pricing cyberattacks.

Ref. [8] of the paper identifies two attack objectives: raising the peak
(grid instability) and raising the customers' electricity bill.  This
example quantifies both on one community: the community schedules
against a manipulated guideline price, is billed at the real-time price
its own response produces, and pays for the spike it was tricked into.

Run:  python examples/billing_attack_study.py
"""

import numpy as np

from repro.attacks.pricing import BillIncreaseAttack, ZeroPriceAttack
from repro.billing.bills import attack_bill_impact, community_bills
from repro.billing.realtime import RealTimePriceModel
from repro.core.presets import bench_preset
from repro.data.community import build_community
from repro.data.pricing import GuidelinePriceModel, baseline_demand_profile
from repro.reporting.ascii import render_profile
from repro.reporting.tables import fixed_table
from repro.scheduling.game import SchedulingGame


def main() -> None:
    config = bench_preset().with_updates(n_customers=60)
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    demand = baseline_demand_profile(config.time) * config.n_customers
    guideline_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    clean = guideline_model.price(demand, community.total_pv, rng=rng)
    realtime = RealTimePriceModel(
        config=config.pricing, n_customers=config.n_customers, surge_exponent=1.5
    )

    def solve(prices):
        return SchedulingGame(
            community,
            prices,
            sellback_divisor=config.pricing.sellback_divisor,
            config=config.game,
        ).solve(rng=np.random.default_rng(3))

    print("solving benign community response...")
    benign = solve(clean)
    print(render_profile(benign.grid_demand, label="benign"))

    attacks = {
        "zero 16-17": ZeroPriceAttack(16, 17),
        "zero 11-12": ZeroPriceAttack(11, 12),
        "bill x2 (12-14)": BillIncreaseAttack(12, 14, inflation=2.0),
    }
    rows = []
    for name, attack in attacks.items():
        print(f"solving response to {name}...")
        attacked = solve(attack.apply(clean))
        par = float(attacked.grid_demand.max() / attacked.grid_demand.mean())
        impact = attack_bill_impact(benign, attacked, realtime)
        rows.append([name, f"{par:.4f}", f"{impact * 100:+.1f}%"])
        print(render_profile(attacked.grid_demand, label=name[:12]))

    benign_par = float(benign.grid_demand.max() / benign.grid_demand.mean())
    rows.insert(0, ["(benign)", f"{benign_par:.4f}", "+0.0%"])
    print()
    print(fixed_table(["attack", "grid PAR", "bill impact"], rows))

    print("\nper-archetype bills (benign day, first five):")
    cost_model = SchedulingGame(
        community, clean, sellback_divisor=config.pricing.sellback_divisor,
        config=config.game,
    ).cost_model
    for i, bill in enumerate(community_bills(benign, cost_model)[:5]):
        print(
            f"  archetype {i}: bought {bill.purchases_kwh:5.1f} kWh, "
            f"sold {bill.sales_kwh:4.1f} kWh, net ${bill.total:7.3f}"
        )


if __name__ == "__main__":
    main()
