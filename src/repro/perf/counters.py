"""Lightweight global performance counters and timers.

The hot paths of the reproduction (CE sampling, DP cell relaxation, game
rounds, game-solution caching) increment a process-global registry so
that any entry point — the CLI, the benchmark harness, or
``scripts/bench_hotpaths.py`` — can report how much work a run actually
did.  Counter updates are a dict lookup plus an add; the overhead is
negligible next to the work being counted.

The registry is process-local by design: parallel workers accumulate
their own counters, and the parent's registry only reflects work done in
the parent process.  This keeps the counters race-free without locks.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator


class BoundedHistogram:
    """Reservoir of the most recent ``max_samples`` observations.

    Keeps exact ``count``/``total``/``min``/``max`` over the full lifetime
    and a bounded sample window for quantile estimates — enough for
    p50/p95/p99 scrapes without unbounded memory on long service runs.
    Quantiles use the nearest-rank method over the sorted window; an
    empty histogram reports ``nan``.
    """

    def __init__(self, max_samples: int = 1024) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._cursor = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            # Ring buffer: overwrite the oldest sample.
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.max_samples

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window (nan if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return math.nan
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """Count/sum/min/max plus the standard p50/p95/p99 quantiles."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class PerfRegistry:
    """Named monotonic counters, wall-clock timers, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._timers: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, BoundedHistogram] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins)."""
        self._gauges[name] = float(value)

    def gauges(self) -> dict[str, float]:
        """Every gauge's current value (copy)."""
        return dict(self._gauges)

    def observe(self, name: str, value: float, *, max_samples: int = 1024) -> None:
        """Fold one sample into the named bounded histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = BoundedHistogram(max_samples)
        hist.observe(value)

    def histogram(self, name: str) -> BoundedHistogram | None:
        """The named histogram, or ``None`` if never observed."""
        return self._histograms.get(name)

    def histograms(self) -> dict[str, dict[str, float]]:
        """Per-histogram summaries (count/sum/min/max/p50/p95/p99)."""
        return {name: hist.summary() for name, hist in self._histograms.items()}

    @contextmanager
    def timer(self, name: str, *, hist: bool = False) -> Iterator[None]:
        """Accumulate wall-clock seconds spent inside the block.

        With ``hist=True`` each block's duration is also folded into the
        histogram of the same name, so scrapes can report latency
        quantiles alongside the accumulated total.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._timers[name] = self._timers.get(name, 0.0) + elapsed
            if hist:
                self.observe(name, elapsed)

    def snapshot(self) -> dict[str, float]:
        """Counters and timers as one flat dict (timers suffixed ``_s``)."""
        out = dict(self._counters)
        for name, seconds in self._timers.items():
            out[f"{name}_s"] = seconds
        return out

    def delta_since(
        self, baseline: dict[str, float], *, include_zero: bool = False
    ) -> dict[str, float]:
        """Per-counter change since a :meth:`snapshot` baseline.

        The monitoring service pairs this with :meth:`snapshot` to report
        per-interval rates (events pumped, cache hits, seconds in the hot
        paths *since the last scrape*) instead of process-lifetime
        totals.  Counters absent from the baseline count from zero.

        By default zero-change entries are dropped so the report only
        shows what moved.  Scrapers that must distinguish "idle counter"
        from "counter absent" (the Prometheus exposition path) pass
        ``include_zero=True`` to keep every known counter in the result.
        """
        current = self.snapshot()
        delta = {
            name: value - baseline.get(name, 0.0) for name, value in current.items()
        }
        if include_zero:
            return delta
        # Exact zero: drop counters that did not move at all between snapshots.
        return {k: v for k, v in delta.items() if v != 0.0}  # repro: noqa[FLT001]

    def prefixed(self, prefix: str) -> dict[str, float]:
        """Counters and timers whose name starts with ``prefix``, sorted.

        The monitoring service uses this to report e.g. every
        ``stream.faults.*`` counter without enumerating fault kinds.
        """
        return {
            name: value
            for name, value in sorted(self.snapshot().items())
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Zero every counter, timer, gauge and histogram."""
        self._counters.clear()
        self._timers.clear()
        self._gauges.clear()
        self._histograms.clear()

    def report(self) -> str:
        """Human-readable multi-line report, sorted by name."""
        snap = self.snapshot()
        if not snap:
            return "perf: no activity recorded"
        width = max(len(k) for k in snap)
        lines = ["perf counters:"]
        for name in sorted(snap):
            value = snap[name]
            rendered = f"{value:.4f}" if name.endswith("_s") else f"{value:,.0f}"
            lines.append(f"  {name:<{width}}  {rendered}")
        hits, misses = snap.get("cache.hits", 0.0), snap.get("cache.misses", 0.0)
        if hits + misses > 0:
            lines.append(
                f"  {'cache.hit_rate':<{width}}  {hits / (hits + misses):.3f}"
            )
        return "\n".join(lines)


PERF = PerfRegistry()
"""The process-global registry used by the instrumented hot paths."""
