"""Lightweight global performance counters and timers.

The hot paths of the reproduction (CE sampling, DP cell relaxation, game
rounds, game-solution caching) increment a process-global registry so
that any entry point — the CLI, the benchmark harness, or
``scripts/bench_hotpaths.py`` — can report how much work a run actually
did.  Counter updates are a dict lookup plus an add; the overhead is
negligible next to the work being counted.

The registry is process-local by design: parallel workers accumulate
their own counters, and the parent's registry only reflects work done in
the parent process.  This keeps the counters race-free without locks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class PerfRegistry:
    """Named monotonic counters plus wall-clock timers."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._timers: dict[str, float] = {}

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0.0) + value

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0.0)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds spent inside the block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._timers[name] = self._timers.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def snapshot(self) -> dict[str, float]:
        """Counters and timers as one flat dict (timers suffixed ``_s``)."""
        out = dict(self._counters)
        for name, seconds in self._timers.items():
            out[f"{name}_s"] = seconds
        return out

    def delta_since(self, baseline: dict[str, float]) -> dict[str, float]:
        """Per-counter change since a :meth:`snapshot` baseline.

        The monitoring service pairs this with :meth:`snapshot` to report
        per-interval rates (events pumped, cache hits, seconds in the hot
        paths *since the last scrape*) instead of process-lifetime
        totals.  Counters absent from the baseline count from zero;
        zero-change entries are dropped so the report only shows what
        moved.
        """
        current = self.snapshot()
        delta = {
            name: value - baseline.get(name, 0.0) for name, value in current.items()
        }
        # Exact zero: drop counters that did not move at all between snapshots.
        return {k: v for k, v in delta.items() if v != 0.0}  # repro: noqa[FLT001]

    def prefixed(self, prefix: str) -> dict[str, float]:
        """Counters and timers whose name starts with ``prefix``, sorted.

        The monitoring service uses this to report e.g. every
        ``stream.faults.*`` counter without enumerating fault kinds.
        """
        return {
            name: value
            for name, value in sorted(self.snapshot().items())
            if name.startswith(prefix)
        }

    def reset(self) -> None:
        """Zero every counter and timer."""
        self._counters.clear()
        self._timers.clear()

    def report(self) -> str:
        """Human-readable multi-line report, sorted by name."""
        snap = self.snapshot()
        if not snap:
            return "perf: no activity recorded"
        width = max(len(k) for k in snap)
        lines = ["perf counters:"]
        for name in sorted(snap):
            value = snap[name]
            rendered = f"{value:.4f}" if name.endswith("_s") else f"{value:,.0f}"
            lines.append(f"  {name:<{width}}  {rendered}")
        hits, misses = snap.get("cache.hits", 0.0), snap.get("cache.misses", 0.0)
        if hits + misses > 0:
            lines.append(
                f"  {'cache.hit_rate':<{width}}  {hits / (hits + misses):.3f}"
            )
        return "\n".join(lines)


PERF = PerfRegistry()
"""The process-global registry used by the instrumented hot paths."""
