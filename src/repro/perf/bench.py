"""Hot-path benchmark harness and ``BENCH_*.json`` perf-trajectory writer.

``python scripts/bench_hotpaths.py`` (or ``make bench`` / the
``repro-bench`` console script) times the pipeline's three hot layers —
the CE battery step, a full game solve, and the long-term scenario — and
appends one machine-readable entry to ``BENCH_hotpaths.json``.  Each
entry records the environment (CPU count, versions), wall-clock timings,
derived speedups, and the perf counters of the scenario run (including
the game-solution cache hit rate), so the repository accumulates a perf
trajectory PR over PR.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.config import CommunityConfig, SolverConfig
from repro.core.presets import bench_preset, smoke_preset
from repro.obs.logs import configure_logging, get_logger
from repro.data.community import build_community
from repro.kernels import get_backend
from repro.optimization.battery import BatteryOptimizer, BatteryProblem
from repro.optimization.cross_entropy import CrossEntropyOptimizer
from repro.perf.counters import PERF
from repro.perf.parallel import ParallelMap
from repro.scheduling.game import SchedulingGame
from repro.simulation.aggregate import run_aggregate_scenario
from repro.simulation.cache import GameSolutionCache, global_game_cache
from repro.simulation.scenario import run_long_term_scenario

PRESETS = {"smoke": smoke_preset, "bench": bench_preset}


def collect_environment() -> dict[str, object]:
    """Reproducibility metadata for one bench entry."""
    try:
        git_rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        ).stdout.strip()
    except OSError:
        git_rev = ""
    return {
        # Bench provenance stamp — records *when* the run happened, never
        # flows into a simulation path.
        "timestamp": datetime.now(timezone.utc).isoformat(),  # repro: noqa[DET002]
        "git_rev": git_rev,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def write_bench_json(path: str | Path, entry: dict[str, object]) -> None:
    """Append one entry to a ``BENCH_*.json`` perf-trajectory file.

    The file holds ``{"entries": [...]}``; corrupt or legacy files are
    replaced rather than crashing the bench run.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, list[dict[str, object]]] = {"entries": []}
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("entries"), list):
                payload = loaded
        except json.JSONDecodeError:
            pass
    payload["entries"].append(entry)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _time(fn: Callable[[], object], *, repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one callable."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _bench_ce_step(
    config: CommunityConfig, *, backend: str | None = None
) -> dict[str, float]:
    """Batched-projection CE battery step vs the seed's per-sample loop."""
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    customer = next(
        c for c in community.customers if c.battery.capacity_kwh > 0
    )
    horizon = community.horizon
    prices = np.linspace(0.01, 0.05, horizon)
    game = SchedulingGame(
        community, prices, sellback_divisor=config.pricing.sellback_divisor,
        config=config.game, backend=backend,
    )
    state = game.initial_state(customer)
    problem = BatteryProblem(
        load=tuple(state.load),
        pv=customer.pv,
        others_trading=tuple(np.zeros(horizon)),
        spec=customer.battery,
        cost_model=game.cost_model,
        slot_hours=1.0,
        multiplicity=1,
    )
    gc = config.game

    def seed_style_step() -> None:
        # The pre-batching implementation: per-sample projection loop,
        # redundant warm-start projection, and a final re-projection +
        # cost re-evaluation of the winner.
        optimizer = CrossEntropyOptimizer(
            lower=np.zeros(horizon),
            upper=np.full(horizon, problem.spec.capacity_kwh),
            n_samples=gc.ce_samples,
            n_elites=gc.ce_elites,
            n_iterations=gc.ce_iterations,
            smoothing=gc.ce_smoothing,
            projection=problem.project,
        )
        start = problem.project(np.full(horizon, problem.spec.initial_kwh))
        result = optimizer.minimize(
            problem.cost_batch, x0=start,
            rng=np.random.default_rng(customer.customer_id + 7919), batch=True,
        )
        problem.cost(problem.project(result.x))

    def batched_step() -> None:
        BatteryOptimizer(
            n_samples=gc.ce_samples,
            n_elites=gc.ce_elites,
            n_iterations=gc.ce_iterations,
            smoothing=gc.ce_smoothing,
            backend=backend,
        ).optimize(
            problem, rng=np.random.default_rng(customer.customer_id + 7919)
        )

    # Raw projection of one CE population, batched vs per-sample.
    population = np.random.default_rng(0).uniform(
        -1.0, problem.spec.capacity_kwh + 1.0, size=(gc.ce_samples, horizon)
    )
    loop_projection_s = _time(
        lambda: np.stack([problem.project(s) for s in population]), repeats=5
    )
    batch_projection_s = _time(
        lambda: problem.project_batch(population), repeats=5
    )

    seed_s = _time(seed_style_step, repeats=3)
    batched_s = _time(batched_step, repeats=3)
    return {
        "projection_loop_s": loop_projection_s,
        "projection_batch_s": batch_projection_s,
        "projection_speedup": loop_projection_s / batch_projection_s,
        "ce_step_seed_s": seed_s,
        "ce_step_batched_s": batched_s,
        "ce_step_speedup": seed_s / batched_s,
    }


def _bench_game_solve(
    config: CommunityConfig, *, backend: str | None = None
) -> dict[str, float]:
    """One cold game solve at preset scale, with work counters."""
    rng = np.random.default_rng(config.seed)
    community = build_community(config, rng=rng)
    prices = np.linspace(0.01, 0.05, community.horizon)

    def solve() -> None:
        SchedulingGame(
            community, prices,
            sellback_divisor=config.pricing.sellback_divisor,
            config=config.game, backend=backend,
        ).solve(rng=np.random.default_rng(3))

    before = PERF.snapshot()
    seconds = _time(solve)
    after = PERF.snapshot()
    return {
        "solve_s": seconds,
        "rounds": after.get("game.rounds", 0) - before.get("game.rounds", 0),
        "ce_evaluations": after.get("ce.evaluations", 0)
        - before.get("ce.evaluations", 0),
        "dp_cells": after.get("dp.cells", 0) - before.get("dp.cells", 0),
    }


def _bench_scenario(config: CommunityConfig, *, n_slots: int, workers: int) -> dict[str, object]:
    """Table-1-style scenario runs: cold vs cached, serial vs process pool."""
    logger = get_logger("bench")
    cold_cache = GameSolutionCache()
    cold_s = _time(
        lambda: run_long_term_scenario(
            config, detector="aware", n_slots=n_slots,
            calibration_trials=10, cache=cold_cache,
        )
    )

    # Same scenario with equilibrium warm-starting enabled: solves are
    # seeded from the nearest already-cached equilibrium of the run.
    # Warm-started results live in their own cache namespace (they are
    # *not* bitwise-identical to cold solves), so this timing measures
    # the opt-in fast path rather than a cache replay.
    warmstart_solver = SolverConfig(
        backend=config.solver.backend,
        warm_start=True,
        warm_start_max_distance=10.0,
        ce_warm_std_scale=0.25,
    )
    warmstart_config = config.with_updates(solver=warmstart_solver)
    warmstart_s = _time(
        lambda: run_long_term_scenario(
            warmstart_config, detector="aware", n_slots=n_slots,
            calibration_trials=10, cache=GameSolutionCache(),
        )
    )

    warm_cache = GameSolutionCache()
    run_long_term_scenario(
        config, detector="aware", n_slots=n_slots,
        calibration_trials=10, cache=warm_cache,
    )
    warm_s = _time(
        lambda: run_long_term_scenario(
            config, detector="aware", n_slots=n_slots,
            calibration_trials=10, cache=warm_cache,
        )
    )

    # Clear the process-global cache before each timing: forked workers
    # inherit the parent's cache, so without this the process run would
    # be measured warm against a cold serial run.
    seeds = (config.seed, config.seed + 1)
    global_game_cache().clear()
    serial_s = _time(
        lambda: run_aggregate_scenario(
            config, detector="aware", seeds=seeds, n_slots=n_slots,
            calibration_trials=10,
        )
    )
    pool = ParallelMap(backend="process", max_workers=workers)
    effective_workers = pool.effective_workers
    if effective_workers <= 1:
        # A one-worker process pool measures fork overhead, not
        # parallelism; a "speedup" derived from it is pure timing noise.
        logger.warning(
            "aggregate parallel bench skipped: only %d effective worker(s) "
            "available (requested %d, cpu_count=%s) — a single-worker "
            "speedup number would be noise",
            effective_workers, workers, os.cpu_count(),
        )
        parallel_s = None
        speedup = None
    else:
        global_game_cache().clear()
        parallel_s = _time(
            lambda: run_aggregate_scenario(
                config, detector="aware", seeds=seeds, n_slots=n_slots,
                calibration_trials=10, parallel=pool,
            )
        )
        speedup = serial_s / parallel_s
    return {
        "n_slots": n_slots,
        "scenario_cold_s": cold_s,
        "scenario_cold_warmstart_s": warmstart_s,
        "warmstart_speedup": cold_s / warmstart_s,
        "warmstart_max_distance": warmstart_solver.warm_start_max_distance,
        "warmstart_ce_std_scale": warmstart_solver.ce_warm_std_scale,
        "scenario_cached_s": warm_s,
        "cache_speedup": cold_s / warm_s,
        "cache_hit_rate": warm_cache.hit_rate,
        "cache_entries": warm_cache.size,
        "aggregate_serial_s": serial_s,
        "aggregate_process_s": parallel_s,
        "aggregate_speedup": speedup,
        "aggregate_workers_requested": workers,
        "aggregate_workers": effective_workers,
        "aggregate_seeds": len(seeds),
    }


def _numeric_leaves(
    section: object, prefix: str = ""
) -> dict[str, float]:
    """Flatten a bench entry section to dotted-path numeric leaves."""
    leaves: dict[str, float] = {}
    if isinstance(section, dict):
        for key, value in section.items():
            leaves.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(section, (int, float)) and not isinstance(section, bool):
        leaves[prefix[:-1]] = float(section)
    return leaves


def _entry_stamp(entry: dict[str, object]) -> str:
    """One-line provenance label for a bench entry."""
    env = entry.get("environment")
    env = env if isinstance(env, dict) else {}
    return (
        f"git={env.get('git_rev') or '?'} "
        f"backend={entry.get('backend', '?')} "
        f"preset={entry.get('preset', '?')} "
        f"at {env.get('timestamp', '?')}"
    )


def compare_latest_entries(path: str | Path, *, backend: str | None = None) -> int:
    """Log the latest bench entry against the previous one.

    Compares every shared numeric leaf of the timing sections and
    renders the change as a speedup factor (previous / latest for
    ``*_s`` timings, so >1 means the latest run is faster).  With
    ``backend``, only entries recorded for that backend are considered,
    so trajectories that interleave backends compare like with like.

    A short history is not a failure: a missing file or fewer than two
    (matching) entries logs what is there and returns 0, so a fresh
    clone's first ``repro-bench --compare`` never breaks a script or a
    CI gate.  Only an unreadable/corrupt trajectory file returns 1.
    """
    logger = get_logger("bench")
    target = Path(path)
    if not target.exists():
        logger.info(
            "no bench file at %s yet; nothing to compare (run repro-bench "
            "to record a first entry)",
            target,
        )
        return 0
    try:
        entries = json.loads(target.read_text()).get("entries", [])
    except json.JSONDecodeError as exc:
        logger.error("%s is not valid JSON: %s", target, exc)
        return 1
    if backend is not None:
        entries = [e for e in entries if e.get("backend") == backend]
    if len(entries) < 2:
        scope = f" for backend {backend!r}" if backend is not None else ""
        logger.info(
            "%s has %d entr%s%s; need two to compare — nothing to do yet",
            target, len(entries), "y" if len(entries) == 1 else "ies", scope,
        )
        return 0
    previous, latest = entries[-2], entries[-1]
    logger.info("latest:   %s", _entry_stamp(latest))
    logger.info("previous: %s", _entry_stamp(previous))
    sections = ("ce_step", "game_solve", "scenario", "global_cache")
    for section in sections:
        old = _numeric_leaves(previous.get(section, {}))
        new = _numeric_leaves(latest.get(section, {}))
        shared = [key for key in new if key in old]
        if shared:
            logger.info("-- %s --", section)
        for key in shared:
            line = f"  {key}: {old[key]:.5g} -> {new[key]:.5g}"
            if key.endswith("_s") and new[key] > 0:
                ratio = old[key] / new[key]
                line += f"  ({ratio:.2f}x {'faster' if ratio >= 1 else 'slower'})"
            logger.info("%s", line)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the CE/game/scenario hot paths and append to a "
        "BENCH_*.json perf trajectory.",
    )
    parser.add_argument("--preset", choices=sorted(PRESETS), default="bench")
    parser.add_argument("--slots", type=int, default=48)
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="process-pool width for the aggregate comparison",
    )
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend to bench (auto/reference/fused/...; recorded "
        "in the entry so trajectories are keyed by git rev + backend)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_hotpaths.json"),
        help="perf-trajectory file to append to",
    )
    parser.add_argument(
        "--skip-scenario", action="store_true",
        help="only run the CE and game-solve micro benches",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smoke preset, micro benches only "
        "(shorthand for --preset smoke --skip-scenario)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="compare the two most recent entries in --out (filtered by "
        "--backend when given) and exit without running any benches; "
        "a short history logs a note and exits 0",
    )
    args = parser.parse_args(argv)

    configure_logging()
    if args.compare:
        compare_backend = None
        if args.backend is not None:
            # Resolve aliases (e.g. "auto") to the recorded backend name.
            try:
                compare_backend = get_backend(args.backend).name
            except ValueError as exc:
                parser.error(str(exc))
        return compare_latest_entries(args.out, backend=compare_backend)

    if args.quick:
        args.preset = "smoke"
        args.skip_scenario = True
    config = PRESETS[args.preset]()
    try:
        backend_name = get_backend(args.backend).name
    except ValueError as exc:
        parser.error(str(exc))
    if args.backend is not None:
        config = config.with_updates(
            solver=replace(config.solver, backend=args.backend)
        )

    logger = get_logger("bench")

    logger.info("== CE battery step (%s preset, %s backend) ==",
                args.preset, backend_name)
    ce = _bench_ce_step(config, backend=args.backend)
    for name, value in ce.items():
        logger.info("  %s: %.5f", name, value)

    logger.info("== game solve ==")
    game = _bench_game_solve(config, backend=args.backend)
    for name, value in game.items():
        logger.info("  %s: %.5f", name, value)

    scenario: dict[str, object] = {}
    if not args.skip_scenario:
        logger.info("== scenario / aggregate ==")
        scenario = _bench_scenario(
            config, n_slots=args.slots, workers=args.workers
        )
        for name, value in scenario.items():
            rendered = f"{value:.5f}" if isinstance(value, float) else value
            logger.info("  %s: %s", name, rendered)

    environment = collect_environment()
    entry: dict[str, object] = {
        "environment": environment,
        # Trajectory key: entries are identified by the code revision
        # they measured plus the kernel backend they ran on.
        "key": f"{environment['git_rev'] or 'unknown'}+{backend_name}",
        "backend": backend_name,
        "preset": args.preset,
        "ce_step": ce,
        "game_solve": game,
        "scenario": scenario,
        "perf_counters": PERF.snapshot(),
        "global_cache": {
            "hits": global_game_cache().hits,
            "misses": global_game_cache().misses,
            "hit_rate": global_game_cache().hit_rate,
        },
    }
    write_bench_json(args.out, entry)
    logger.info("appended entry to %s", args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
