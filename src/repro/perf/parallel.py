"""Deterministic serial/process-pool execution of independent tasks.

``ParallelMap`` is the one abstraction the simulation layers use to fan
out embarrassingly parallel work (scenario seeds, sweep cells,
calibration chunks).  Two backends:

- ``"serial"`` — a plain list comprehension, bitwise-identical to the
  historical sequential loops;
- ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`;
  the callable and its items must be picklable (module-level functions).

Determinism contract
--------------------
Task functions must be *self-seeding*: every item carries everything the
task needs, including its own seed, so the result of ``map`` is a pure
function of the item list regardless of backend or worker count.
:func:`spawn_seeds` derives independent per-task seeds from one master
seed via :class:`numpy.random.SeedSequence` so callers never hand the
same stream to two tasks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["serial", "process"]


def spawn_seeds(master_seed: int, n: int) -> tuple[int, ...]:
    """Derive ``n`` statistically independent child seeds from one master.

    Uses ``SeedSequence.spawn`` so the children are decorrelated by
    construction; the mapping is deterministic in ``(master_seed, n)``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    children = np.random.SeedSequence(master_seed).spawn(n)
    return tuple(int(child.generate_state(1, dtype=np.uint64)[0]) for child in children)


@dataclass(frozen=True)
class ParallelMap:
    """Ordered map over independent items with a pluggable backend.

    Parameters
    ----------
    backend:
        ``"serial"`` (default) or ``"process"``.
    max_workers:
        Worker count for the process backend; defaults to the machine's
        CPU count.  Ignored by the serial backend.
    chunksize:
        Items per pickled work unit for the process backend; larger
        chunks amortize IPC for many small tasks.
    """

    backend: Backend = "serial"
    max_workers: int | None = None
    chunksize: int = 1

    def __post_init__(self) -> None:
        if self.backend not in ("serial", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")

    @property
    def effective_workers(self) -> int:
        """Workers that can actually run concurrently (1 for serial).

        Capped at the machine's CPU count: requesting a wider pool than
        there are cores adds processes but no parallelism, and perf
        numbers derived from the uncapped request would overstate what
        the run could possibly exploit.
        """
        if self.backend == "serial":
            return 1
        cpus = os.cpu_count() or 1
        if self.max_workers is None:
            return cpus
        return min(self.max_workers, cpus)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        The serial backend evaluates in order in the calling process; the
        process backend distributes items but still returns results in
        input order, so both backends produce identical lists whenever
        ``fn`` is a pure function of its item.
        """
        item_list: Sequence[T] = list(items)
        if self.backend == "serial" or len(item_list) <= 1:
            return [fn(item) for item in item_list]
        with ProcessPoolExecutor(max_workers=self.effective_workers) as pool:
            return list(pool.map(fn, item_list, chunksize=self.chunksize))


SERIAL_MAP = ParallelMap(backend="serial")
"""Shared default instance; semantically the historical sequential loop."""
