"""Performance layer: counters, deterministic parallel execution, bench I/O.

Three small, dependency-free building blocks the simulation stack shares:

- :data:`~repro.perf.counters.PERF` — process-global counters/timers the
  hot paths increment (CE evaluations, DP cells, game rounds, cache
  hits/misses);
- :class:`~repro.perf.parallel.ParallelMap` — serial / process-pool map
  with a determinism contract (self-seeding tasks, order-preserving);
- :func:`~repro.perf.bench.write_bench_json` — machine-readable perf
  trajectory records (``BENCH_*.json``) appended by the bench harness.
"""

from repro.perf.counters import PERF, BoundedHistogram, PerfRegistry
from repro.perf.parallel import SERIAL_MAP, ParallelMap, spawn_seeds

__all__ = [
    "BoundedHistogram",
    "PERF",
    "ParallelMap",
    "PerfRegistry",
    "SERIAL_MAP",
    "spawn_seeds",
]
