"""Command-line experiment runner.

Regenerates each of the paper's evaluation artifacts from the terminal:

    python -m repro fig3            # unaware prediction + PAR
    python -m repro fig4            # aware prediction + PAR
    python -m repro fig5            # zero-price attack impact
    python -m repro fig6            # observation-accuracy comparison
    python -m repro table1          # three-policy comparison
    python -m repro all             # everything above
    python -m repro sweep-matrix    # tariff x attack scenario matrix

and drives the streaming subsystem:

    python -m repro stream          # pump an event stream, print timeline
    python -m repro serve           # HTTP monitoring API over a stream

plus the static-analysis gate (see ``docs/STATIC_ANALYSIS.md``) and the
audit-trail inspector (see ``docs/OBSERVABILITY.md``):

    python -m repro lint            # == repro-lint src tests
    python -m repro trace FILE      # query an audit-trail JSONL file

and the multi-community fleet layer (see ``docs/FLEET.md``):

    python -m repro fleet serve     # sharded fleet aggregator service
    python -m repro fleet bench     # == repro-fleet-bench

Common options: ``--preset {smoke,bench,paper}``, ``--seed N``,
``--slots H`` (fig6/table1 horizon), ``--json PATH`` (dump scenario
results), ``--perf`` (print hot-path counters — CE evaluations, DP
cells, game rounds, cache hit rate — after the command), ``--bench-json
PATH`` (append the counters to a ``BENCH_*.json`` perf trajectory).

Matrix options (``docs/SCENARIOS.md``): ``--quick`` (2x2 grid, aware
detector only), ``--out PATH`` (JSON artifact), ``--workers N``
(process-parallel grid cells).

Stream options: ``--stream-source {synthetic,replay}``, ``--detector``,
``--days N`` / ``--until-day D``, ``--checkpoint-dir PATH`` (checkpoint
on completion; with ``--resume``, continue from it), ``--faults PLAN``
(seeded fault injection: builtin name, JSON file, or inline JSON; see
``docs/ROBUSTNESS.md``) with ``--fault-seed N`` and ``--retries N``,
``--format {ascii,json}``; ``serve`` adds ``--host``/``--port``.

Observability options (``docs/OBSERVABILITY.md``): ``--trace`` /
``--trace-out PATH`` (or the ``REPRO_TRACE`` environment variable)
export a Chrome-trace-event span timeline viewable in Perfetto;
``--audit PATH`` appends the detection audit trail to a JSONL file.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.attacks.pricing import ZeroPriceAttack
from repro.core.config import CommunityConfig
from repro.core.presets import bench_preset, paper_preset, smoke_preset
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.single_event import CommunityResponseSimulator
from repro.metrics.cost import LaborCostModel, normalized_labor_cost
from repro.metrics.errors import rmse
from repro.perf.counters import PERF
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.reporting.ascii import render_profile
from repro.reporting.tables import ComparisonRow, comparison_table
from repro.simulation.results import save_scenario
from repro.simulation.scenario import run_long_term_scenario

PRESETS = {
    "smoke": smoke_preset,
    "bench": bench_preset,
    "paper": paper_preset,
}


class _Environment:
    """Lazily built shared artifacts for the figure commands."""

    def __init__(self, config: CommunityConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.community = build_community(config, rng=rng)
        self.demand = baseline_demand_profile(config.time) * config.n_customers
        self.renewable = self.community.total_pv
        price_model = GuidelinePriceModel(
            config=config.pricing, n_customers=config.n_customers
        )
        self.history = generate_history(
            rng,
            n_customers=config.n_customers,
            pricing=config.pricing,
            solar=config.solar,
            mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
        )
        self.clean_prices = price_model.price(self.demand, self.renewable, rng=rng)
        self.unaware_prices = UnawarePricePredictor().fit(self.history).predict_day()
        self.aware_prices = (
            AwarePricePredictor()
            .fit(self.history)
            .predict_day(
                demand_forecast=self.demand, renewable_forecast=self.renewable
            )
        )
        self.truth_sim = CommunityResponseSimulator(
            self.community,
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
            tariff=config.tariff,
        )
        self.unaware_sim = CommunityResponseSimulator(
            self.community.without_net_metering(),
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
        )


def _cmd_fig3(env: _Environment) -> None:
    print(render_profile(env.clean_prices, label="received"))
    print(render_profile(env.unaware_prices, label="predicted"))
    rows = [
        ComparisonRow(
            "price RMSE (unaware)",
            None,
            rmse(env.clean_prices, env.unaware_prices),
        ),
        ComparisonRow(
            "Fig3b predicted PAR", 1.4700, env.unaware_sim.grid_par(env.unaware_prices)
        ),
    ]
    print(comparison_table(rows, title="Figure 3 — unaware prediction"))


def _cmd_fig4(env: _Environment) -> None:
    print(render_profile(env.clean_prices, label="received"))
    print(render_profile(env.aware_prices, label="predicted"))
    rows = [
        ComparisonRow(
            "price RMSE (aware)", None, rmse(env.clean_prices, env.aware_prices)
        ),
        ComparisonRow(
            "Fig4b predicted PAR", 1.3986, env.truth_sim.grid_par(env.aware_prices)
        ),
        ComparisonRow(
            "actual benign PAR", None, env.truth_sim.grid_par(env.clean_prices)
        ),
    ]
    print(comparison_table(rows, title="Figure 4 — aware prediction"))


def _cmd_fig5(env: _Environment) -> None:
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    attacked = env.truth_sim.response(attack.apply(env.clean_prices))
    print(render_profile(attacked.grid_demand, label="attacked"))
    print(
        render_profile(
            env.truth_sim.response(env.clean_prices).grid_demand, label="benign"
        )
    )
    par_value = float(attacked.grid_demand.max() / attacked.grid_demand.mean())
    rows = [ComparisonRow("Fig5b attacked PAR", 1.9037, par_value)]
    print(comparison_table(rows, title="Figure 5 — zero-price attack"))


def _cmd_fig6(env: _Environment, *, slots: int, json_dir: Path | None) -> None:
    rows = []
    paper = {"aware": 0.9514, "unaware": 0.6595}
    for kind in ("aware", "unaware"):
        result = run_long_term_scenario(env.config, detector=kind, n_slots=slots)
        rows.append(
            ComparisonRow(
                f"observation accuracy ({kind})",
                paper[kind],
                result.observation_accuracy,
            )
        )
        if json_dir is not None:
            save_scenario(result, json_dir / f"fig6_{kind}.json")
    print(comparison_table(rows, title="Figure 6 — observation accuracy"))


def _cmd_table1(env: _Environment, *, slots: int, json_dir: Path | None) -> None:
    paper = {"none": 1.6509, "unaware": 1.5422, "aware": 1.4112}
    labor = LaborCostModel(
        fixed_cost=env.config.detection.repair_fixed_cost,
        per_meter_cost=env.config.detection.repair_cost_per_meter,
    )
    results = {}
    rows = []
    for kind in ("none", "unaware", "aware"):
        result = run_long_term_scenario(env.config, detector=kind, n_slots=slots)
        results[kind] = result
        rows.append(ComparisonRow(f"PAR ({kind})", paper[kind], result.mean_par))
        if json_dir is not None:
            save_scenario(result, json_dir / f"table1_{kind}.json")
    unaware_cost = results["unaware"].labor_cost(labor)
    if unaware_cost > 0:
        rows.append(
            ComparisonRow(
                "normalized labor (aware)",
                1.0067,
                normalized_labor_cost(results["aware"].labor_cost(labor), unaware_cost),
            )
        )
    print(comparison_table(rows, title="Table 1 — detection comparison"))


def _cmd_sweep_matrix(config: CommunityConfig, args: argparse.Namespace) -> None:
    """Run the tariff x attack x PV scenario matrix (docs/SCENARIOS.md)."""
    import json as _json

    from repro.attacks import ATTACK_FAMILIES
    from repro.perf.parallel import ParallelMap
    from repro.simulation.sweep import render_matrix_table, sweep_matrix

    if args.quick:
        tariffs: tuple[str, ...] = ("flat", "nem3_spread")
        families: tuple[str, ...] = ("peak_increase", "meter_outage")
        detectors: tuple[Any, ...] = ("aware",)
    else:
        tariffs = ("flat", "nem3_spread", "tou", "monthly_netting")
        families = ATTACK_FAMILIES
        detectors = ("aware", "unaware", "none")
    parallel = (
        None
        if args.workers is None
        else ParallelMap(backend="process", max_workers=args.workers)
    )
    result = sweep_matrix(
        config,
        tariffs=tariffs,
        attack_families=families,
        detectors=detectors,
        n_slots=args.slots,
        parallel=parallel,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        _json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(render_matrix_table(result))
    print(f"matrix artifact written to {args.out} ({len(result.cells)} cells)")


def _parse_stream_faults(args: argparse.Namespace):
    """Resolve ``--faults``/``--fault-seed`` into a FaultPlan (or None)."""
    if args.faults is None:
        if args.fault_seed is not None:
            raise SystemExit("--fault-seed requires --faults")
        return None
    from repro.faults.plan import FaultPlanError, parse_fault_spec

    try:
        return parse_fault_spec(args.faults, seed=args.fault_seed)
    except FaultPlanError as exc:
        raise SystemExit(f"bad --faults spec: {exc}") from exc


def _build_stream_engine(config: CommunityConfig, args: argparse.Namespace):
    """Build (or resume) the engine the stream/serve commands drive."""
    from repro.core.config import RetryPolicy
    from repro.stream.checkpoint import resume_engine
    from repro.stream.pipeline import build_replay_engine, build_synthetic_engine

    from repro.obs.audit import AuditTrail

    faults = _parse_stream_faults(args)
    retry = None if args.retries is None else RetryPolicy(max_retries=args.retries)
    checkpoint_path = None
    if args.checkpoint_dir is not None:
        args.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        checkpoint_path = args.checkpoint_dir / f"stream-{args.stream_source}.json"
    if args.resume:
        if faults is not None:
            raise SystemExit(
                "--resume restores the checkpointed fault plan; "
                "--faults cannot be combined with it"
            )
        if checkpoint_path is None or not checkpoint_path.exists():
            raise SystemExit(
                "--resume needs --checkpoint-dir with an existing checkpoint "
                f"({'no directory given' if checkpoint_path is None else checkpoint_path})"
            )
        engine = resume_engine(checkpoint_path)
        if retry is not None:
            engine.retry = retry
        if args.audit is not None:
            engine.pipeline.audit = AuditTrail(args.audit)
            engine.pipeline.audit.backfill(engine.timeline)
        return engine, checkpoint_path
    if args.stream_source == "replay":
        engine = build_replay_engine(
            config,
            detector=args.detector,
            n_slots=args.days * config.time.slots_per_day,
            faults=faults,
            retry=retry,
        )
    else:
        engine = build_synthetic_engine(
            config,
            n_days=args.days,
            attack_days=(args.days // 3, 2 * args.days // 3),
            detector=args.detector,
            faults=faults,
            retry=retry,
        )
    if args.audit is not None:
        engine.pipeline.audit = AuditTrail(args.audit)
    return engine, checkpoint_path


def _cmd_stream(config: CommunityConfig, args: argparse.Namespace) -> None:
    import json as _json

    from repro.reporting.ascii import render_stream_timeline
    from repro.stream.checkpoint import save_checkpoint

    engine, checkpoint_path = _build_stream_engine(config, args)
    produced = engine.run(until_day=args.until_day)
    timeline = engine.timeline
    if args.format == "json":
        for det in timeline:
            print(_json.dumps(det.to_dict()))
    else:
        print(
            render_stream_timeline(
                timeline, slots_per_day=engine.pipeline.slots_per_day
            )
        )
        stats = engine.pipeline.detection_stats()
        print(
            f"slots {stats['slots_processed']}  flags {stats['flags_total']}  "
            f"repairs {stats['repairs']}  gaps {stats['gaps']}  "
            f"events {engine.events_processed} (+{len(produced)} this run)"
        )
        injector = engine.fault_injector
        if injector is not None:
            counts = ", ".join(
                f"{kind} {count}" for kind, count in sorted(injector.counts.items())
            )
            print(f"faults injected: {counts if counts else 'none fired'}")
    if checkpoint_path is not None:
        save_checkpoint(engine, checkpoint_path)
        print(f"checkpoint saved to {checkpoint_path}")
    if args.audit is not None and args.format != "json":
        print(f"audit trail appended to {args.audit}")


def _cmd_serve(config: CommunityConfig, args: argparse.Namespace) -> None:
    from repro.service.app import DetectionService, run_service

    engine, checkpoint_path = _build_stream_engine(config, args)
    service = DetectionService(engine, checkpoint_path=checkpoint_path)
    run_service(service, host=args.host, port=args.port)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint gate has its own option surface; hand over wholesale.
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # So does the audit-trail inspector.
        from repro.obs.cli import trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "fleet":
        # And the multi-community fleet layer.
        from repro.fleet.cli import fleet_main

        return fleet_main(argv[1:])
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="DAC'15 net-metering detection reproduction"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "command",
        choices=(
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "table1",
            "all",
            "sweep-matrix",
            "stream",
            "serve",
        ),
        help="which artifact to regenerate (or sweep-matrix/stream/serve)",
    )
    parser.add_argument("--preset", choices=sorted(PRESETS), default="bench")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--slots", type=int, default=48)
    parser.add_argument(
        "--json", type=Path, default=None, help="directory for JSON result dumps"
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="print hot-path perf counters after the command",
    )
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=None,
        help="append the run's perf counters to this BENCH_*.json file",
    )
    solver_opts = parser.add_argument_group("solver options")
    solver_opts.add_argument(
        "--backend",
        default=None,
        help="kernel backend for the game solver (auto/reference/fused/...; "
        "defaults to the REPRO_BACKEND environment variable, then auto)",
    )
    solver_opts.add_argument(
        "--warm-start",
        action="store_true",
        help="seed solves from the nearest cached equilibrium; faster on "
        "repeated runs but results live in a separate cache namespace",
    )
    stream_opts = parser.add_argument_group("stream/serve options")
    stream_opts.add_argument(
        "--stream-source",
        choices=("synthetic", "replay"),
        default="synthetic",
        help="event source: scripted synthetic stream or scenario replay",
    )
    stream_opts.add_argument(
        "--detector", choices=("aware", "unaware", "none"), default="aware"
    )
    stream_opts.add_argument(
        "--days", type=int, default=6, help="stream length in days"
    )
    stream_opts.add_argument(
        "--until-day", type=int, default=None, help="stop after this many full days"
    )
    stream_opts.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="save a resumable checkpoint here when the run ends",
    )
    stream_opts.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint in --checkpoint-dir",
    )
    stream_opts.add_argument(
        "--faults",
        default=None,
        help=(
            "fault-injection plan: a builtin name (none/drop/duplicate/"
            "reorder/delay/corrupt/stall/chaos), a JSON plan file, or an "
            "inline JSON object"
        ),
    )
    stream_opts.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="override the fault plan's RNG seed (requires --faults)",
    )
    stream_opts.add_argument(
        "--retries",
        type=int,
        default=None,
        help="max consecutive stalled polls before the run gives up",
    )
    stream_opts.add_argument("--format", choices=("ascii", "json"), default="ascii")
    stream_opts.add_argument("--host", default="127.0.0.1")
    stream_opts.add_argument("--port", type=int, default=8008)
    matrix_opts = parser.add_argument_group("sweep-matrix options")
    matrix_opts.add_argument(
        "--quick",
        action="store_true",
        help="sweep-matrix: 2x2 tariff x attack grid, aware detector only",
    )
    matrix_opts.add_argument(
        "--out",
        type=Path,
        default=Path("matrix.json"),
        help="sweep-matrix: JSON artifact output path",
    )
    matrix_opts.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep-matrix: spread grid cells over N worker processes",
    )
    obs_opts = parser.add_argument_group("observability options")
    obs_opts.add_argument(
        "--trace",
        action="store_true",
        help="record a hierarchical span trace of the run "
        "(also enabled by REPRO_TRACE=1 or --trace-out)",
    )
    obs_opts.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="Chrome-trace-event JSON output path "
        "(default trace-<command>.json; implies --trace)",
    )
    obs_opts.add_argument(
        "--audit",
        type=Path,
        default=None,
        help="append the stream's detection audit trail to this JSONL file",
    )
    args = parser.parse_args(argv)

    config = PRESETS[args.preset]()
    if args.seed is not None:
        config = config.with_updates(seed=args.seed)
    if args.backend is not None or args.warm_start:
        if args.backend is not None:
            from repro.kernels import get_backend

            try:
                get_backend(args.backend)
            except ValueError as exc:
                parser.error(str(exc))
        solver_changes: dict[str, Any] = {}
        if args.backend is not None:
            solver_changes["backend"] = args.backend
        if args.warm_start:
            solver_changes["warm_start"] = True
        config = config.with_updates(
            solver=replace(config.solver, **solver_changes)
        )
    if args.json is not None:
        args.json.mkdir(parents=True, exist_ok=True)

    trace_out = args.trace_out
    trace_enabled = (
        args.trace
        or trace_out is not None
        or os.environ.get("REPRO_TRACE", "") not in ("", "0")
    )
    if trace_enabled:
        from repro.obs.manifest import build_manifest
        from repro.obs.trace import TRACER

        if trace_out is None:
            trace_out = Path(f"trace-{args.command}.json")
        TRACER.enable(
            run_id=f"{args.command}-{args.preset}-seed{config.seed}",
            metadata=build_manifest(config, command=args.command),
        )

    if args.command == "sweep-matrix":
        _cmd_sweep_matrix(config, args)
        if args.perf:
            print()
            print(PERF.report())
        _finish_trace(trace_out)
        return 0

    if args.command in ("stream", "serve"):
        if args.days < 1:
            parser.error(f"--days must be >= 1, got {args.days}")
        if args.command == "stream":
            _cmd_stream(config, args)
        else:
            _cmd_serve(config, args)
        if args.perf:
            print()
            print(PERF.report())
        _finish_trace(trace_out)
        return 0

    env = _Environment(config)
    commands = {
        "fig3": lambda: _cmd_fig3(env),
        "fig4": lambda: _cmd_fig4(env),
        "fig5": lambda: _cmd_fig5(env),
        "fig6": lambda: _cmd_fig6(env, slots=args.slots, json_dir=args.json),
        "table1": lambda: _cmd_table1(env, slots=args.slots, json_dir=args.json),
    }
    if args.command == "all":
        for name, command in commands.items():
            print(f"\n===== {name} =====")
            command()
    else:
        commands[args.command]()

    if args.perf:
        print()
        print(PERF.report())
    if args.bench_json is not None:
        from repro.perf.bench import collect_environment, write_bench_json

        write_bench_json(
            args.bench_json,
            {
                "environment": collect_environment(),
                "command": args.command,
                "preset": args.preset,
                "perf_counters": PERF.snapshot(),
            },
        )
    _finish_trace(trace_out)
    return 0


def _finish_trace(trace_out: Path | None) -> None:
    """Export and disable the span tracer if this run enabled it."""
    from repro.obs.trace import TRACER

    if not TRACER.enabled or trace_out is None:
        return
    TRACER.write(trace_out)
    TRACER.disable()
    print(f"trace written to {trace_out}")


if __name__ == "__main__":
    sys.exit(main())
