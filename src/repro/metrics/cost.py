"""Labor-cost accounting for the repair action of the long-term detector.

Table 1 of the paper reports labor cost normalized to the net-metering-
*unaware* detector (1.0000 vs 1.0067 for the aware detector): the aware
detector catches slightly more attacks, so it dispatches repairs slightly
more often.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike


@dataclass(frozen=True)
class LaborCostModel:
    """Cost of a repair dispatch.

    A dispatch pays a fixed truck-roll cost plus a per-meter inspection and
    repair cost for every meter actually found hacked.
    """

    fixed_cost: float = 2.0
    per_meter_cost: float = 1.0

    def __post_init__(self) -> None:
        if self.fixed_cost < 0 or self.per_meter_cost < 0:
            raise ValueError("labor costs must be non-negative")

    def dispatch_cost(self, meters_repaired: int) -> float:
        """Cost of one dispatch repairing ``meters_repaired`` meters."""
        if meters_repaired < 0:
            raise ValueError(f"meters_repaired must be >= 0, got {meters_repaired}")
        return self.fixed_cost + self.per_meter_cost * meters_repaired

    def total_cost(self, repairs_per_dispatch: ArrayLike) -> float:
        """Total labor cost over a sequence of dispatches."""
        repairs = np.asarray(repairs_per_dispatch, dtype=float)
        if repairs.size == 0:
            return 0.0
        if np.any(repairs < 0):
            raise ValueError("repair counts must be non-negative")
        return float(repairs.size * self.fixed_cost + self.per_meter_cost * repairs.sum())


def normalized_labor_cost(cost: float, baseline_cost: float) -> float:
    """Labor cost normalized to a baseline detector's labor cost."""
    if baseline_cost <= 0:
        raise ValueError(f"baseline_cost must be > 0, got {baseline_cost}")
    if cost < 0:
        raise ValueError(f"cost must be >= 0, got {cost}")
    return cost / baseline_cost
