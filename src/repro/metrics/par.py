"""Peak-to-average ratio (PAR) metrics.

The paper uses PAR as the primary grid-stability indicator: pricing
cyberattacks concentrate community load into the manipulated cheap slots,
raising the peak relative to the mean.  All detection decisions compare the
PAR of the load scheduled under the *received* guideline price to the PAR
under the *predicted* price.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray


def par(load: ArrayLike) -> float:
    """Peak-to-average ratio of a load profile.

    Parameters
    ----------
    load:
        Non-negative energy load per slot, shape ``(H,)``.

    Returns
    -------
    float
        ``max(load) / mean(load)``.  Always >= 1 for non-negative input
        with a positive mean.

    Raises
    ------
    ValueError
        If the profile is empty, contains negatives/NaN, or has zero mean.
    """
    profile = np.asarray(load, dtype=float)
    if profile.ndim != 1 or profile.size == 0:
        raise ValueError(f"load must be a non-empty 1-D array, got shape {profile.shape}")
    if np.any(~np.isfinite(profile)):
        raise ValueError("load contains NaN or infinite values")
    if np.any(profile < 0):
        raise ValueError("load must be non-negative")
    mean = float(profile.mean())
    if mean <= 0.0:
        raise ValueError("load mean must be positive to define PAR")
    return float(profile.max()) / mean


def par_series(load: ArrayLike, window: int) -> NDArray[np.float64]:
    """Rolling PAR over consecutive non-overlapping windows.

    Useful for the multi-day (48 h) long-term scenarios: the PAR is reported
    per day rather than across the whole horizon.

    Parameters
    ----------
    load:
        Load per slot, shape ``(H,)`` with ``H`` divisible by ``window``.
    window:
        Window length in slots (e.g. 24 for daily PAR on an hourly grid).
    """
    profile = np.asarray(load, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if profile.ndim != 1 or profile.size == 0:
        raise ValueError("load must be a non-empty 1-D array")
    if profile.size % window != 0:
        raise ValueError(
            f"load length {profile.size} is not divisible by window {window}"
        )
    blocks = profile.reshape(-1, window)
    return np.array([par(block) for block in blocks])


def par_increase(received_par: float, predicted_par: float) -> float:
    """Absolute PAR increase used in the single-event detection rule.

    The paper reports an attack when
    ``par_increase(P_r, P_p) > delta_P``.
    """
    if not np.isfinite(received_par) or not np.isfinite(predicted_par):
        raise ValueError("PAR values must be finite")
    return float(received_par - predicted_par)


def relative_par_increase(received_par: float, baseline_par: float) -> float:
    """Relative PAR increase ``(P_r - P_b) / P_b``.

    Matches the percentage comparisons quoted in the paper's Section 5
    (e.g. the attack PAR 1.9037 is 36.11% above the aware-prediction PAR
    1.3986).
    """
    if baseline_par <= 0:
        raise ValueError(f"baseline_par must be > 0, got {baseline_par}")
    return (received_par - baseline_par) / baseline_par
