"""Evaluation metrics: PAR, detection accuracy, labor cost, forecast errors."""

from repro.metrics.accuracy import (
    ClassificationCounts,
    confusion_counts,
    detection_rates,
    observation_accuracy,
    per_meter_accuracy,
)
from repro.metrics.cost import LaborCostModel, normalized_labor_cost
from repro.metrics.errors import mae, mape, rmse, smape
from repro.metrics.par import (
    par,
    par_increase,
    par_series,
    relative_par_increase,
)

__all__ = [
    "ClassificationCounts",
    "LaborCostModel",
    "confusion_counts",
    "detection_rates",
    "mae",
    "mape",
    "normalized_labor_cost",
    "observation_accuracy",
    "par",
    "par_increase",
    "par_series",
    "per_meter_accuracy",
    "relative_par_increase",
    "rmse",
    "smape",
]
