"""Forecast-error metrics for the price and load predictors."""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike


def _validated(actual: ArrayLike, predicted: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.size == 0:
        raise ValueError("empty inputs")
    if np.any(~np.isfinite(a)) or np.any(~np.isfinite(p)):
        raise ValueError("inputs contain NaN or infinite values")
    return a, p


def rmse(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Root-mean-square error."""
    a, p = _validated(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def mae(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean absolute error."""
    a, p = _validated(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def mape(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean absolute percentage error (requires strictly nonzero actuals)."""
    a, p = _validated(actual, predicted)
    if np.any(a == 0):
        raise ValueError("mape undefined when actual contains zeros; use smape")
    return float(np.mean(np.abs((a - p) / a)))


def smape(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Symmetric MAPE in [0, 2]; robust to zeros in either series."""
    a, p = _validated(actual, predicted)
    denom = (np.abs(a) + np.abs(p)) / 2.0
    mask = denom > 0
    if not np.any(mask):
        return 0.0
    return float(np.mean(np.abs(a[mask] - p[mask]) / denom[mask]))
