"""Detection-accuracy metrics for the long-term monitoring scenario.

Figure 6 of the paper reports *observation accuracy*: how well the
single-event layer's per-slot observation (number of meters flagged as
hacked) matches the true number of hacked meters.  We expose both the
strict count-match accuracy and the per-meter classification accuracy;
the latter is the quantity the paper averages to 95.14% / 65.95%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike


@dataclass(frozen=True)
class ClassificationCounts:
    """Per-meter confusion counts accumulated over a monitoring run."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """Fraction of meter-slot pairs classified correctly."""
        if self.total == 0:
            raise ValueError("no observations accumulated")
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def true_positive_rate(self) -> float:
        """Detection rate d = TP / (TP + FN); NaN-free (raises on empty)."""
        positives = self.true_positives + self.false_negatives
        if positives == 0:
            raise ValueError("no positive (hacked) meter-slots observed")
        return self.true_positives / positives

    @property
    def false_positive_rate(self) -> float:
        """False-alarm rate f = FP / (FP + TN)."""
        negatives = self.false_positives + self.true_negatives
        if negatives == 0:
            raise ValueError("no negative (clean) meter-slots observed")
        return self.false_positives / negatives

    def merged(self, other: "ClassificationCounts") -> "ClassificationCounts":
        """Combine counts from two runs."""
        return ClassificationCounts(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            true_negatives=self.true_negatives + other.true_negatives,
            false_negatives=self.false_negatives + other.false_negatives,
        )


def confusion_counts(truth: ArrayLike, flagged: ArrayLike) -> ClassificationCounts:
    """Accumulate per-meter confusion counts.

    Parameters
    ----------
    truth:
        Boolean array, shape ``(slots, meters)`` (or 1-D): true hacked state.
    flagged:
        Boolean array of the same shape: detector flags.
    """
    t = np.asarray(truth, dtype=bool)
    f = np.asarray(flagged, dtype=bool)
    if t.shape != f.shape:
        raise ValueError(f"shape mismatch: truth {t.shape} vs flagged {f.shape}")
    if t.size == 0:
        raise ValueError("empty inputs")
    return ClassificationCounts(
        true_positives=int(np.sum(t & f)),
        false_positives=int(np.sum(~t & f)),
        true_negatives=int(np.sum(~t & ~f)),
        false_negatives=int(np.sum(t & ~f)),
    )


def per_meter_accuracy(truth: ArrayLike, flagged: ArrayLike) -> float:
    """Average per-meter classification accuracy (the Fig. 6 metric)."""
    return confusion_counts(truth, flagged).accuracy


def observation_accuracy(true_counts: ArrayLike, observed_counts: ArrayLike) -> float:
    """Fraction of slots whose observed hacked-meter count is exactly right."""
    s = np.asarray(true_counts, dtype=int)
    o = np.asarray(observed_counts, dtype=int)
    if s.shape != o.shape:
        raise ValueError(f"shape mismatch: {s.shape} vs {o.shape}")
    if s.size == 0:
        raise ValueError("empty inputs")
    return float(np.mean(s == o))


def detection_rates(truth: ArrayLike, flagged: ArrayLike) -> tuple[float, float]:
    """Return ``(true_positive_rate, false_positive_rate)``.

    Convenience wrapper used to fit the POMDP observation model
    ``Omega(o | s)`` from historical single-event detector output.
    """
    counts = confusion_counts(truth, flagged)
    return counts.true_positive_rate, counts.false_positive_rate
