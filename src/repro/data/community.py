"""Community builder: assembles archetype customers from the generators."""

from __future__ import annotations

import numpy as np

from repro.core.config import BatteryConfig, CommunityConfig
from repro.data.appliances import generate_tasks
from repro.data.pricing import household_base_load_profile
from repro.data.solar import generate_pv
from repro.scheduling.customer import Customer
from repro.scheduling.game import Community

DEFAULT_MAX_ARCHETYPES = 32
"""Archetype cap: communities larger than this are built as weighted
archetypes (identical instances share one best-response computation),
which keeps the paper's 500-customer game tractable."""


def build_community(
    config: CommunityConfig,
    *,
    rng: np.random.Generator | None = None,
    max_archetypes: int = DEFAULT_MAX_ARCHETYPES,
) -> Community:
    """Build a seeded community matching a :class:`CommunityConfig`.

    Customers are grouped into at most ``max_archetypes`` archetypes with
    near-equal multiplicities.  PV adoption assigns panels and batteries to
    the first ``pv_adoption`` fraction of archetypes (weighted by count);
    the remainder are plain consumers.
    """
    if max_archetypes < 1:
        raise ValueError(f"max_archetypes must be >= 1, got {max_archetypes}")
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    n_archetypes = min(config.n_customers, max_archetypes)
    counts = _split_counts(config.n_customers, n_archetypes)

    customers = []
    adopters_needed = round(config.pv_adoption * config.n_customers)
    adopters_assigned = 0
    lo, hi = config.appliances_per_customer
    base_profile = household_base_load_profile(config.time)
    for index, count in enumerate(counts):
        n_tasks = int(rng.integers(lo, hi + 1))
        tasks = generate_tasks(rng, config.time, n_tasks)
        base_scale = float(rng.uniform(0.75, 1.25))
        base_load = base_profile * base_scale * np.exp(
            rng.normal(0.0, 0.05, size=base_profile.shape)
        )
        adopt = adopters_assigned < adopters_needed
        if adopt:
            adopters_assigned += count
            peak = config.solar.peak_kw * float(rng.uniform(0.7, 1.3))
            pv = generate_pv(rng, config.time, config.solar, peak_kw=peak)
            battery = config.battery
        else:
            pv = np.zeros(config.time.horizon)
            battery = BatteryConfig(capacity_kwh=0.0, initial_kwh=0.0)
        customers.append(
            Customer(
                customer_id=index,
                tasks=tasks,
                battery=battery,
                pv=tuple(pv),
                base_load=tuple(base_load),
            )
        )
    return Community(customers=tuple(customers), counts=tuple(counts))


def _split_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` into ``parts`` near-equal positive integers."""
    if parts < 1 or total < parts:
        raise ValueError(f"cannot split {total} into {parts} positive parts")
    base = total // parts
    remainder = total % parts
    return [base + (1 if i < remainder else 0) for i in range(parts)]
