"""Synthetic appliance-fleet generator.

Templates mirror the deferrable household loads used throughout the smart
home scheduling literature (and the paper's refs. [6, 8]): wet appliances,
EV charging, water heating and similar tasks with an energy requirement, a
permitted window and a small set of discrete power levels.  All energies
are multiples of 0.25 kWh so the DP scheduler's discretization is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import TimeGrid
from repro.scheduling.appliance import ApplianceTask

ENERGY_QUANTUM = 0.25
"""All task energies and power levels are multiples of this (kWh / kW)."""


@dataclass(frozen=True)
class ApplianceTemplate:
    """Randomizable description of one appliance category.

    Hours are hour-of-day floats; the generator converts them to slots on
    the target :class:`~repro.core.config.TimeGrid` and jitters the window
    inside ``start_jitter_hours``.
    """

    name: str
    power_levels: tuple[float, ...]
    energy_range_kwh: tuple[float, float]
    earliest_hour: float
    latest_hour: float
    min_window_hours: float
    start_jitter_hours: float = 2.0

    def __post_init__(self) -> None:
        lo, hi = self.energy_range_kwh
        if not 0 < lo <= hi:
            raise ValueError(f"{self.name}: bad energy range ({lo}, {hi})")
        if not 0 <= self.earliest_hour < self.latest_hour <= 24:
            raise ValueError(
                f"{self.name}: bad window ({self.earliest_hour}, {self.latest_hour})"
            )
        if self.min_window_hours <= 0:
            raise ValueError(f"{self.name}: min_window_hours must be > 0")
        for p in self.power_levels:
            if abs(p / ENERGY_QUANTUM - round(p / ENERGY_QUANTUM)) > 1e-9:
                raise ValueError(
                    f"{self.name}: power level {p} not a multiple of {ENERGY_QUANTUM}"
                )
        nonzero = [p for p in self.power_levels if p > 0]
        if not nonzero:
            raise ValueError(f"{self.name}: needs at least one nonzero power level")
        smallest = min(nonzero)
        for p in nonzero:
            if abs(p / smallest - round(p / smallest)) > 1e-9:
                raise ValueError(
                    f"{self.name}: level {p} is not a multiple of the smallest "
                    f"level {smallest}; generated energies would be unreachable"
                )


APPLIANCE_CATALOG: tuple[ApplianceTemplate, ...] = (
    ApplianceTemplate(
        name="dishwasher",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(0.5, 1.0),
        earliest_hour=20.0,
        latest_hour=24.0,
        min_window_hours=3.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="washing_machine",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(0.5, 1.0),
        earliest_hour=9.0,
        latest_hour=15.0,
        min_window_hours=5.0,
    ),
    ApplianceTemplate(
        name="clothes_dryer",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(0.75, 1.5),
        earliest_hour=20.0,
        latest_hour=24.0,
        min_window_hours=3.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="ev_charger_evening",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(1.5, 2.5),
        earliest_hour=19.0,
        latest_hour=24.0,
        min_window_hours=5.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="ev_charger_overnight",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(1.5, 3.0),
        earliest_hour=0.0,
        latest_hour=7.0,
        min_window_hours=6.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="water_heater",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(0.75, 1.5),
        earliest_hour=6.0,
        latest_hour=14.0,
        min_window_hours=6.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="pool_pump",
        power_levels=(0.0, 0.25, 0.5),
        energy_range_kwh=(1.0, 2.0),
        earliest_hour=8.0,
        latest_hour=16.0,
        min_window_hours=8.0,
    ),
    ApplianceTemplate(
        name="hvac_precool",
        power_levels=(0.0, 0.5, 1.0),
        energy_range_kwh=(0.75, 1.5),
        earliest_hour=12.0,
        latest_hour=17.0,
        min_window_hours=6.0,
    ),
    ApplianceTemplate(
        name="freezer_cycle",
        power_levels=(0.0, 0.25, 0.5),
        energy_range_kwh=(0.5, 1.0),
        earliest_hour=0.0,
        latest_hour=10.0,
        min_window_hours=8.0,
        start_jitter_hours=1.0,
    ),
    ApplianceTemplate(
        name="robot_vacuum",
        power_levels=(0.0, 0.25, 0.5),
        energy_range_kwh=(0.25, 0.75),
        earliest_hour=9.0,
        latest_hour=15.0,
        min_window_hours=4.0,
    ),
)


def _quantize(value: float, quantum: float = ENERGY_QUANTUM) -> float:
    """Round a value to the given quantum grid."""
    return round(value / quantum) * quantum


def generate_tasks(
    rng: np.random.Generator,
    time: TimeGrid,
    n_tasks: int,
    *,
    catalog: tuple[ApplianceTemplate, ...] = APPLIANCE_CATALOG,
    day: int = 0,
) -> tuple[ApplianceTask, ...]:
    """Sample a feasible appliance fleet for one household-day.

    Templates are drawn without replacement first (one of each before any
    repeats), windows are jittered and clipped to the day, and energies are
    re-quantized and capped so every produced task passes
    :meth:`ApplianceTask.check_feasible`.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    if not catalog:
        raise ValueError("catalog must not be empty")
    indices: list[int] = []
    while len(indices) < n_tasks:
        fresh = rng.permutation(len(catalog)).tolist()
        indices.extend(fresh)
    indices = indices[:n_tasks]

    tasks = []
    for serial, index in enumerate(indices):
        template = catalog[index]
        jitter = rng.uniform(-template.start_jitter_hours, template.start_jitter_hours)
        start_hour = min(
            max(template.earliest_hour + jitter, 0.0),
            24.0 - template.min_window_hours,
        )
        end_hour = min(
            max(template.latest_hour + jitter, start_hour + template.min_window_hours),
            24.0,
        )
        start_slot = time.slot_of_hour(start_hour, day=day)
        # latest_hour is the exclusive end of the window: an end hour of
        # 18.0 permits the 17:00-18:00 slot but not the 18:00-19:00 one.
        end_slot = time.slot_of_hour(min(end_hour, 24.0) - 1e-9, day=day)
        end_slot = max(end_slot, start_slot)
        window_slots = end_slot - start_slot + 1

        # Quantize the energy to the smallest nonzero level's per-slot
        # energy: every catalog level is a multiple of it, so any such
        # multiple within the window capacity is exactly reachable.
        quantum = template.power_levels[1] * time.hours_per_slot
        energy = _quantize(rng.uniform(*template.energy_range_kwh), quantum)
        capacity = window_slots * template.power_levels[-1] * time.hours_per_slot
        max_energy = int(capacity / quantum) * quantum
        energy = max(quantum, min(energy, max(max_energy, quantum)))

        task = ApplianceTask(
            name=f"{template.name}_{serial}",
            power_levels=template.power_levels,
            energy_kwh=energy,
            earliest_start=start_slot,
            deadline=end_slot,
        )
        task.check_feasible(time.horizon, slot_hours=time.hours_per_slot)
        tasks.append(task)
    return tuple(tasks)
