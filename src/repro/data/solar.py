"""Synthetic PV generation.

Clear-sky output follows a sine bell between sunrise and sunset, scaled by
the panel's peak rating.  Cloud cover is a mean-reverting (AR(1))
attenuation process in [0, 1]; consecutive slots are correlated, matching
the way real irradiance deviates from the clear-sky envelope.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.core.config import SolarConfig, TimeGrid


def clear_sky_profile(time: TimeGrid, config: SolarConfig) -> NDArray[np.float64]:
    """Clear-sky generation fraction per slot over the whole horizon.

    Returns values in [0, 1]: zero outside daylight, a sine bell peaking
    midway between sunrise and sunset.
    """
    hours = np.array([time.hour_of_slot(s) for s in range(time.horizon)])
    # Evaluate the bell at the slot midpoint for fairness on coarse grids.
    hours = hours + time.hours_per_slot / 2.0
    daylight = config.sunset_hour - config.sunrise_hour
    phase = (hours - config.sunrise_hour) / daylight
    profile = np.where(
        (phase >= 0.0) & (phase <= 1.0),
        np.sin(np.pi * np.clip(phase, 0.0, 1.0)),
        0.0,
    )
    return profile


def generate_pv(
    rng: np.random.Generator,
    time: TimeGrid,
    config: SolarConfig,
    *,
    peak_kw: float | None = None,
) -> NDArray[np.float64]:
    """One stochastic PV generation trace (kWh per slot).

    Parameters
    ----------
    rng:
        Randomness source.
    time:
        Target grid; traces span the full horizon (all days).
    config:
        Solar model parameters.
    peak_kw:
        Overrides ``config.peak_kw`` (used to diversify archetypes).

    Returns
    -------
    Non-negative array of shape ``(horizon,)``.
    """
    peak = config.peak_kw if peak_kw is None else float(peak_kw)
    if peak < 0:
        raise ValueError(f"peak_kw must be >= 0, got {peak}")
    envelope = clear_sky_profile(time, config) * peak * time.hours_per_slot
    if peak == 0.0:  # repro: noqa[FLT001] exact zero short-circuits the no-PV case
        return np.zeros(time.horizon)
    attenuation = np.empty(time.horizon)
    level = 1.0 - abs(rng.normal(0.0, config.cloud_volatility))
    for h in range(time.horizon):
        shock = rng.normal(0.0, config.cloud_volatility)
        level = (
            config.cloud_reversion * 1.0
            + (1.0 - config.cloud_reversion) * level
            + shock
        )
        level = min(max(level, 0.0), 1.0)
        attenuation[h] = level
    return envelope * attenuation
