"""Synthetic data: appliance fleets, PV generation and guideline pricing.

The paper's customer setup follows its refs. [7, 8], whose exact appliance
parameters are not published; this package provides seeded generators that
produce the same *structure* (schedulable tasks with energy requirements,
deadline windows and discrete power levels; day-peaked stochastic PV;
quasi-periodic guideline prices driven by net community demand).  See
DESIGN.md for the substitution rationale.
"""

from repro.data.appliances import (
    APPLIANCE_CATALOG,
    ApplianceTemplate,
    generate_tasks,
)
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    PriceHistory,
    baseline_demand_profile,
    generate_history,
)
from repro.data.solar import clear_sky_profile, generate_pv
from repro.data.weather import DEFAULT_WEATHER, WeatherModel

__all__ = [
    "APPLIANCE_CATALOG",
    "ApplianceTemplate",
    "DEFAULT_WEATHER",
    "GuidelinePriceModel",
    "PriceHistory",
    "WeatherModel",
    "baseline_demand_profile",
    "build_community",
    "clear_sky_profile",
    "generate_history",
    "generate_pv",
    "generate_tasks",
]
