"""Day-to-day weather process.

One source of truth for the daily PV attenuation factor used by the
history generator, the scenario engine and the examples.  The factor is
Beta-distributed on [0, 1]: 1.0 is a perfectly clear day, 0 a blackout
overcast.  Its *variance* is a first-order quantity for the paper's
story — it is exactly the day-to-day swing that makes the midday price
gap unlearnable from price lags alone (Figure 3a's mismatch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class WeatherModel:
    """Beta-distributed daily clear-sky attenuation.

    Parameters
    ----------
    alpha, beta:
        Beta-distribution shape parameters.  The defaults (2, 2) give a
        symmetric, high-variance climate (mean 0.5, sd ~0.22) — cloudy
        and sunny days are both common, which is what stresses the
        price-lag-only predictor.
    """

    alpha: float = 2.0
    beta: float = 2.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError(
                f"shape parameters must be > 0, got ({self.alpha}, {self.beta})"
            )

    @property
    def mean(self) -> float:
        """Expected daily attenuation."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def std(self) -> float:
        """Day-to-day attenuation spread."""
        a, b = self.alpha, self.beta
        return float(np.sqrt(a * b / ((a + b) ** 2 * (a + b + 1))))

    def daily_factor(self, rng: np.random.Generator) -> float:
        """One day's attenuation factor in [0, 1]."""
        return float(np.clip(rng.beta(self.alpha, self.beta), 0.0, 1.0))

    def sample_days(self, rng: np.random.Generator, n_days: int) -> NDArray[np.float64]:
        """A sequence of independent daily factors."""
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        return np.clip(rng.beta(self.alpha, self.beta, size=n_days), 0.0, 1.0)

    def sunny_quantile(self, q: float = 0.9) -> float:
        """The attenuation of an unusually sunny day (used by the figure
        benchmarks, which evaluate on a clear day as the paper's plots do)."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        from scipy import stats

        return float(stats.beta.ppf(q, self.alpha, self.beta))


DEFAULT_WEATHER = WeatherModel()
"""The climate shared by the history generator and the scenario engine."""
