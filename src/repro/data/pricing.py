"""Synthetic guideline-price history.

The utility designs the guideline price from the anticipated *net* demand
of the community (Section 4 of the paper: "net metering changes the grid
energy demand, which is considered by the utility when designing the
guideline price").  We model

    p_h = base + slope * max(D_h - V_h, 0) / N + noise

where ``D`` is gross community demand, ``V`` community renewable
generation and ``N`` the number of customers.  Histories contain an
optional pre-net-metering era (``V = 0``) followed by a net-metering era;
a price-lag-only predictor trained on such a history systematically
misses the weather-dependent midday price gap, which is exactly the
mismatch Figure 3 of the paper illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.core.config import PricingConfig, SolarConfig, TimeGrid
from repro.data.solar import clear_sky_profile
from repro.data.weather import DEFAULT_WEATHER, WeatherModel


def baseline_demand_profile(time: TimeGrid) -> NDArray[np.float64]:
    """Per-customer gross demand shape (kWh per slot), one day tiled.

    A classic residential double-peak: a morning shoulder around 7-9 h and
    a dominant evening peak around 18-21 h over a nonzero base load.
    """
    hours = np.array(
        [time.hour_of_slot(s) + time.hours_per_slot / 2 for s in range(time.horizon)]
    )
    base = 0.60
    morning = 0.25 * np.exp(-0.5 * ((hours - 8.0) / 1.6) ** 2)
    evening = 0.60 * np.exp(-0.5 * ((hours - 19.5) / 2.8) ** 2)
    midday = 0.45 * np.exp(-0.5 * ((hours - 13.5) / 2.2) ** 2)
    return (base + morning + midday + evening) * time.hours_per_slot


def household_base_load_profile(time: TimeGrid) -> NDArray[np.float64]:
    """Per-customer non-schedulable consumption (kWh per slot), one day tiled.

    Refrigeration and standby form a flat floor; lighting and cooking add
    morning and evening bumps.  This is the portion of
    :func:`baseline_demand_profile` that the smart home controller cannot
    move; the deferrable appliances sit on top of it.
    """
    hours = np.array(
        [time.hour_of_slot(s) + time.hours_per_slot / 2 for s in range(time.horizon)]
    )
    floor = 0.42
    morning = 0.22 * np.exp(-0.5 * ((hours - 7.5) / 1.4) ** 2)
    evening = 0.55 * np.exp(-0.5 * ((hours - 19.0) / 2.0) ** 2)
    return (floor + morning + evening) * time.hours_per_slot


@dataclass(frozen=True)
class GuidelinePriceModel:
    """Maps community net demand to the utility's guideline price."""

    config: PricingConfig
    n_customers: int

    def __post_init__(self) -> None:
        if self.n_customers < 1:
            raise ValueError(f"n_customers must be >= 1, got {self.n_customers}")

    def price(
        self,
        demand: NDArray[np.float64],
        renewable: NDArray[np.float64],
        *,
        rng: np.random.Generator | None = None,
    ) -> NDArray[np.float64]:
        """Guideline price per slot for given gross demand and renewables.

        Noise is added only when ``rng`` is provided; prices are floored at
        one tenth of the base price (the utility never posts a zero price —
        a zero received price is the signature of the Fig. 5 attack).
        """
        d = np.asarray(demand, dtype=float)
        v = np.asarray(renewable, dtype=float)
        if d.shape != v.shape or d.ndim != 1:
            raise ValueError(f"demand/renewable shape mismatch: {d.shape} vs {v.shape}")
        if np.any(d < 0) or np.any(v < 0):
            raise ValueError("demand and renewable must be non-negative")
        net = np.maximum(d - v, 0.0) / self.n_customers
        p = self.config.base_price + self.config.demand_slope * net
        if rng is not None and self.config.noise_std > 0:
            p = p + rng.normal(0.0, self.config.noise_std, size=p.shape)
        return np.maximum(p, self.config.base_price * 0.1)


@dataclass(frozen=True)
class PriceHistory:
    """A multi-day record of prices, demand and renewable generation.

    Arrays are aligned per slot over ``n_days * slots_per_day`` entries.
    ``nm_active`` marks the slots belonging to the net-metering era.
    """

    prices: NDArray[np.float64]
    demand: NDArray[np.float64]
    renewable: NDArray[np.float64]
    nm_active: NDArray[np.bool_]
    slots_per_day: int

    def __post_init__(self) -> None:
        n = self.prices.shape[0]
        for name, arr in (
            ("demand", self.demand),
            ("renewable", self.renewable),
            ("nm_active", self.nm_active),
        ):
            if arr.shape != (n,):
                raise ValueError(f"{name} shape {arr.shape} != prices shape {(n,)}")
        if self.slots_per_day < 1 or n % self.slots_per_day != 0:
            raise ValueError(
                f"history length {n} not a multiple of slots_per_day {self.slots_per_day}"
            )

    @property
    def n_days(self) -> int:
        return self.prices.shape[0] // self.slots_per_day

    @property
    def net_demand(self) -> NDArray[np.float64]:
        """Community net demand ``D - V`` per slot (may be negative)."""
        return self.demand - self.renewable

    def day(self, index: int) -> "PriceHistory":
        """Single-day slice."""
        if not 0 <= index < self.n_days:
            raise IndexError(f"day {index} out of range [0, {self.n_days})")
        sl = slice(index * self.slots_per_day, (index + 1) * self.slots_per_day)
        return PriceHistory(
            prices=self.prices[sl],
            demand=self.demand[sl],
            renewable=self.renewable[sl],
            nm_active=self.nm_active[sl],
            slots_per_day=self.slots_per_day,
        )


def generate_history(
    rng: np.random.Generator,
    *,
    n_customers: int,
    pricing: PricingConfig,
    solar: SolarConfig,
    slots_per_day: int = 24,
    n_days_pre_nm: int = 15,
    n_days_nm: int = 15,
    mean_pv_per_customer_kw: float = 2.0,
    demand_noise: float = 0.05,
    weather: WeatherModel = DEFAULT_WEATHER,
) -> PriceHistory:
    """Generate a two-era guideline-price history.

    The first ``n_days_pre_nm`` days have no renewable generation; the
    remaining ``n_days_nm`` days include community PV output with
    day-to-day weather variation.  Demand shapes get multiplicative
    lognormal-ish noise per slot plus a per-day scale factor.
    """
    if n_days_pre_nm < 0 or n_days_nm < 0:
        raise ValueError("day counts must be >= 0")
    total_days = n_days_pre_nm + n_days_nm
    if total_days == 0:
        raise ValueError("history must contain at least one day")
    day_grid = TimeGrid(slots_per_day=slots_per_day, n_days=1)
    base_demand = baseline_demand_profile(day_grid) * n_customers
    envelope = clear_sky_profile(day_grid, solar)
    model = GuidelinePriceModel(config=pricing, n_customers=n_customers)

    prices, demand, renewable, nm_flags = [], [], [], []
    for day in range(total_days):
        in_nm_era = day >= n_days_pre_nm
        day_scale = rng.normal(1.0, 0.04)
        d = base_demand * max(day_scale, 0.5)
        d = d * np.exp(rng.normal(0.0, demand_noise, size=d.shape))
        if in_nm_era:
            # High-variance weather: the day-to-day PV swing is what makes
            # the midday price gap unpredictable from price lags alone.
            factor = weather.daily_factor(rng)
            v = envelope * mean_pv_per_customer_kw * n_customers * factor
            v = v * day_grid.hours_per_slot
        else:
            v = np.zeros_like(d)
        p = model.price(d, v, rng=rng)
        prices.append(p)
        demand.append(d)
        renewable.append(v)
        nm_flags.append(np.full(slots_per_day, in_nm_era))

    return PriceHistory(
        prices=np.concatenate(prices),
        demand=np.concatenate(demand),
        renewable=np.concatenate(renewable),
        nm_active=np.concatenate(nm_flags),
        slots_per_day=slots_per_day,
    )
