"""Stochastic meter-hacking process for the long-term scenario.

The POMDP's hidden state is the number of hacked smart meters.  This
module provides the ground-truth dynamics: at every slot each clean meter
is compromised independently with probability ``hack_probability``; a
compromised meter stays compromised (and keeps receiving manipulated
prices) until a repair dispatch fixes it.

Compromises belong to a *campaign*: one attacker manipulates the
guideline price one way (an attack with random window and strength drawn
from the process's ``attack_family``), and every meter it compromises
receives the same manipulated price — which is what makes the community
load pile into one window and the PAR climb as the campaign spreads
(Table 1's "No Detection" column).  A new campaign, with a freshly drawn
attack, starts after each repair sweep.

The family selects *what* each campaign installs (see
:mod:`repro.attacks.pricing`): the default ``"peak_increase"`` is the
historical cheap-window attack; ``"coordinated_ramp"`` installs the
multi-meter ramp; ``"telemetry_spoof"`` and ``"meter_outage"`` pair the
cheap-window manipulation with a dishonest (blended or clean) reading.
All families consume the RNG identically, so switching families never
perturbs the compromise dynamics themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.attacks.pricing import (
    CoordinatedRampAttack,
    MeterOutageAttack,
    PeakIncreaseAttack,
    PricingAttack,
    TelemetrySpoofAttack,
)
from repro.attacks.registry import attack_from_dict, attack_to_dict

ATTACK_FAMILIES: tuple[str, ...] = (
    "peak_increase",
    "coordinated_ramp",
    "telemetry_spoof",
    "meter_outage",
)


def _attack_to_dict(attack: PricingAttack | None) -> dict[str, Any] | None:
    if attack is None:
        return None
    return attack_to_dict(attack)


def _attack_from_dict(payload: dict[str, Any] | None) -> PricingAttack | None:
    if payload is None:
        return None
    return attack_from_dict(payload)


@dataclass(frozen=True)
class HackedMeter:
    """One compromised meter and the attack installed on it."""

    meter_id: int
    attack: PricingAttack
    hacked_at_slot: int


class MeterHackingProcess:
    """Ground-truth compromise dynamics over a fleet of monitored meters.

    Parameters
    ----------
    n_meters:
        Fleet size (the POMDP's ``N``).
    hack_probability:
        Per-slot, per-clean-meter compromise probability ``q``.
    slots_per_day:
        Used to place attack windows within the day.
    strength_range:
        Attack strengths are drawn uniformly from this interval; weaker
        attacks produce smaller PAR deviations and are harder to detect.
    window_hours:
        Attack window length range (in slots) for fresh compromises.
    window_hour_range:
        Hours of the day (start-inclusive, end-exclusive) attack windows
        may occupy.
    attack_family:
        Which attack kind campaigns install (one of
        :data:`ATTACK_FAMILIES`); every family draws the same window and
        strength from the RNG, so the compromise dynamics are identical
        across families.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        n_meters: int,
        hack_probability: float,
        *,
        slots_per_day: int = 24,
        strength_range: tuple[float, float] = (0.3, 0.65),
        window_hours: tuple[int, int] = (1, 2),
        window_hour_range: tuple[int, int] = (9, 21),
        attack_family: str = "peak_increase",
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_meters < 1:
            raise ValueError(f"n_meters must be >= 1, got {n_meters}")
        if not 0.0 <= hack_probability <= 1.0:
            raise ValueError(f"hack_probability must be in [0, 1], got {hack_probability}")
        lo, hi = strength_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise ValueError(f"strength_range must satisfy 0 <= lo <= hi <= 1, got {strength_range}")
        wlo, whi = window_hours
        if not 1 <= wlo <= whi <= slots_per_day:
            raise ValueError(
                f"window_hours must satisfy 1 <= lo <= hi <= {slots_per_day}, got {window_hours}"
            )
        plo, phi = window_hour_range
        if not 0 <= plo < phi <= slots_per_day:
            raise ValueError(
                f"window_hour_range must satisfy 0 <= lo < hi <= {slots_per_day}, "
                f"got {window_hour_range}"
            )
        if phi - plo < whi:
            raise ValueError(
                "window_hour_range too narrow for the widest attack window"
            )
        if attack_family not in ATTACK_FAMILIES:
            raise ValueError(
                f"attack_family must be one of {ATTACK_FAMILIES}, got {attack_family!r}"
            )
        self.attack_family = attack_family
        self.n_meters = n_meters
        self.hack_probability = hack_probability
        self.slots_per_day = slots_per_day
        self.strength_range = (float(lo), float(hi))
        self.window_hours = (int(wlo), int(whi))
        self.window_hour_range = (int(plo), int(phi))
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._hacked: dict[int, HackedMeter] = {}
        self._slot = 0
        self._campaign_attack: PricingAttack | None = None

    # ------------------------------------------------------------------
    @property
    def hacked_meters(self) -> tuple[HackedMeter, ...]:
        """Currently compromised meters, ordered by meter id."""
        return tuple(self._hacked[i] for i in sorted(self._hacked))

    @property
    def n_hacked(self) -> int:
        """The POMDP's true state ``s``."""
        return len(self._hacked)

    @property
    def hacked_mask(self) -> NDArray[np.bool_]:
        """Boolean compromise mask over the fleet."""
        mask = np.zeros(self.n_meters, dtype=bool)
        for meter_id in self._hacked:
            mask[meter_id] = True
        return mask

    @property
    def campaign_attack(self) -> PricingAttack | None:
        """The attack every current compromise installs (None before the
        first compromise of a campaign)."""
        return self._campaign_attack

    # ------------------------------------------------------------------
    def step(self) -> tuple[HackedMeter, ...]:
        """Advance one slot; returns the meters compromised this slot."""
        fresh = []
        for meter_id in range(self.n_meters):
            if meter_id in self._hacked:
                continue
            if self._rng.random() < self.hack_probability:
                if self._campaign_attack is None:
                    self._campaign_attack = self.draw_attack()
                meter = HackedMeter(
                    meter_id=meter_id,
                    attack=self._campaign_attack,
                    hacked_at_slot=self._slot,
                )
                self._hacked[meter_id] = meter
                fresh.append(meter)
        self._slot += 1
        return tuple(fresh)

    def repair_all(self) -> int:
        """Fix every compromised meter; returns how many were repaired.

        Ends the current campaign: the next compromise draws a fresh
        attack.
        """
        repaired = len(self._hacked)
        self._hacked.clear()
        self._campaign_attack = None
        return repaired

    def new_campaign(self) -> None:
        """Roll the campaign attack (e.g. at a day boundary).

        Guideline prices are daily vectors, so the attacker re-manipulates
        each new day's price.  Compromised meters stay compromised; they
        simply install the fresh manipulation.
        """
        if not self._hacked:
            self._campaign_attack = None
            return
        self._campaign_attack = self.draw_attack()
        self._hacked = {
            meter_id: HackedMeter(
                meter_id=meter.meter_id,
                attack=self._campaign_attack,
                hacked_at_slot=meter.hacked_at_slot,
            )
            for meter_id, meter in self._hacked.items()
        }

    def received_price(self, meter_id: int, prices: NDArray[np.float64]) -> NDArray[np.float64]:
        """The price vector meter ``meter_id`` receives (manipulated if hacked)."""
        if not 0 <= meter_id < self.n_meters:
            raise IndexError(f"meter_id {meter_id} out of range [0, {self.n_meters})")
        meter = self._hacked.get(meter_id)
        if meter is None:
            return np.asarray(prices, dtype=float).copy()
        return meter.attack.apply(prices)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable compromise state (campaign + hacked meters).

        The process's ``rng`` is deliberately *not* included: callers
        that checkpoint a whole simulation own the generator (it is
        shared with the detection layer) and serialize its bit-generator
        state themselves.
        """
        return {
            "slot": self._slot,
            "campaign_attack": _attack_to_dict(self._campaign_attack),
            "hacked": [
                {
                    "meter_id": meter.meter_id,
                    "attack": _attack_to_dict(meter.attack),
                    "hacked_at_slot": meter.hacked_at_slot,
                }
                for _, meter in sorted(self._hacked.items())
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore compromise state captured by :meth:`state_dict`."""
        self._slot = int(state["slot"])
        self._campaign_attack = _attack_from_dict(state["campaign_attack"])
        self._hacked = {}
        for entry in state["hacked"]:
            meter_id = int(entry["meter_id"])
            if not 0 <= meter_id < self.n_meters:
                raise ValueError(
                    f"hacked meter_id {meter_id} out of range [0, {self.n_meters})"
                )
            attack = _attack_from_dict(entry["attack"])
            if attack is None:
                raise ValueError(f"hacked meter {meter_id} has no attack")
            self._hacked[meter_id] = HackedMeter(
                meter_id=meter_id,
                attack=attack,
                hacked_at_slot=int(entry["hacked_at_slot"]),
            )

    # ------------------------------------------------------------------
    def draw_attack(self) -> PricingAttack:
        """Sample a fresh attack from the process's attack distribution.

        Windows land inside ``window_hour_range``: an attacker gains
        nothing by discounting hours when no deferrable load is awake to
        chase the fake price.  Every family consumes exactly three RNG
        draws (width, start, strength) in the same order, so the
        compromise dynamics never depend on the family.
        """
        width = int(self._rng.integers(self.window_hours[0], self.window_hours[1] + 1))
        lo, hi = self.window_hour_range
        start = int(self._rng.integers(lo, hi - width + 1))
        strength = float(self._rng.uniform(*self.strength_range))
        end = start + width - 1
        if self.attack_family == "coordinated_ramp":
            return CoordinatedRampAttack(
                start_slot=start, end_slot=end, intensity=strength
            )
        if self.attack_family == "telemetry_spoof":
            return TelemetrySpoofAttack(
                start_slot=start, end_slot=end, strength=strength
            )
        if self.attack_family == "meter_outage":
            return MeterOutageAttack(start_slot=start, end_slot=end, strength=strength)
        return PeakIncreaseAttack(start_slot=start, end_slot=end, strength=strength)
