"""Pricing cyberattack models and the stochastic meter-hacking process."""

from repro.attacks.hacking import HackedMeter, MeterHackingProcess
from repro.attacks.stealth import StealthPlan, plan_stealthy_attack
from repro.attacks.pricing import (
    BillIncreaseAttack,
    PeakIncreaseAttack,
    PricingAttack,
    ScalingAttack,
    ZeroPriceAttack,
)

__all__ = [
    "BillIncreaseAttack",
    "HackedMeter",
    "MeterHackingProcess",
    "PeakIncreaseAttack",
    "PricingAttack",
    "ScalingAttack",
    "StealthPlan",
    "ZeroPriceAttack",
    "plan_stealthy_attack",
]
