"""Pricing cyberattack models and the stochastic meter-hacking process."""

from repro.attacks.hacking import ATTACK_FAMILIES, HackedMeter, MeterHackingProcess
from repro.attacks.registry import (
    attack_from_dict,
    attack_kind,
    attack_kinds,
    attack_to_dict,
)
from repro.attacks.stealth import StealthPlan, plan_stealthy_attack
from repro.attacks.pricing import (
    BillIncreaseAttack,
    CoordinatedRampAttack,
    MeterOutageAttack,
    PeakIncreaseAttack,
    PricingAttack,
    ScalingAttack,
    TelemetrySpoofAttack,
    ZeroPriceAttack,
)

__all__ = [
    "ATTACK_FAMILIES",
    "BillIncreaseAttack",
    "CoordinatedRampAttack",
    "HackedMeter",
    "MeterHackingProcess",
    "MeterOutageAttack",
    "PeakIncreaseAttack",
    "PricingAttack",
    "ScalingAttack",
    "StealthPlan",
    "TelemetrySpoofAttack",
    "ZeroPriceAttack",
    "attack_from_dict",
    "attack_kind",
    "attack_kinds",
    "attack_to_dict",
    "plan_stealthy_attack",
]
