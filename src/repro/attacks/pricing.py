"""Guideline-price manipulation attacks (Section 4, and the paper's ref. [8]).

A pricing cyberattack tampers with the guideline-price vector a hacked
smart meter *receives*; the household's scheduler then chases the fake
prices.  Two canonical attacks from ref. [8] are modelled, plus the
zeroing attack the paper uses in Figure 5:

- :class:`ZeroPriceAttack` / :class:`ScalingAttack` (peak-increase family):
  make a window look artificially cheap so deferrable load piles into it.
- :class:`PeakIncreaseAttack`: the parameterized version — scale a window
  down by a strength factor (strength 1 == zeroing).
- :class:`BillIncreaseAttack`: inflate prices outside the victim's typical
  cheap window so the scheduler moves load to genuinely expensive slots.

Beyond price manipulation, an attack may also lie about itself: the
:meth:`PricingAttack.report` hook is the price vector the meter *tells*
the utility it received.  Honest attacks report the manipulated vector
(the detector sees exactly what the home responded to); the taxonomy's
telemetry attacks decouple the two:

- :class:`CoordinatedRampAttack`: a coordinated multi-meter ramp — the
  discount deepens linearly across the window, so a fleet of compromised
  meters drifts load toward the window's end in unison.  Intensity 0 is
  the identity (attacked trace ≡ clean trace).
- :class:`TelemetrySpoofAttack`: manipulates the price *and* spoofs the
  reading — the report is blended back toward the clean vector, hiding
  part of the manipulation from the PAR check.
- :class:`MeterOutageAttack`: the meter goes dark — the utility fills
  the gap with the posted (clean) price, so the report carries no trace
  of the manipulation at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray


def _validated_prices(prices: ArrayLike) -> NDArray[np.float64]:
    p = np.asarray(prices, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"prices must be a non-empty 1-D array, got shape {p.shape}")
    if np.any(~np.isfinite(p)) or np.any(p < 0):
        raise ValueError("prices must be finite and >= 0")
    return p


class PricingAttack(abc.ABC):
    """A deterministic transformation of a received guideline-price vector."""

    @abc.abstractmethod
    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        """Return the manipulated price vector (input is not modified)."""

    def report(
        self, clean: NDArray[np.float64], received: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        """The price vector the meter *reports* having received.

        Honest attacks return ``received`` itself (same object, not a
        copy) so the legacy detection path is bitwise-untouched; the
        telemetry family overrides this to hide the manipulation.
        """
        return received

    def window_mask(self, horizon: int) -> NDArray[np.bool_]:
        """Slots touched by the attack; default: all slots."""
        return np.ones(horizon, dtype=bool)


@dataclass(frozen=True)
class _WindowedAttack(PricingAttack):
    """Shared validation for attacks acting on a slot window."""

    start_slot: int
    end_slot: int

    def __post_init__(self) -> None:
        if self.start_slot < 0:
            raise ValueError(f"start_slot must be >= 0, got {self.start_slot}")
        if self.end_slot < self.start_slot:
            raise ValueError(
                f"end_slot {self.end_slot} before start_slot {self.start_slot}"
            )

    def window_mask(self, horizon: int) -> NDArray[np.bool_]:
        if self.end_slot >= horizon:
            raise ValueError(
                f"attack window [{self.start_slot}, {self.end_slot}] outside "
                f"horizon {horizon}"
            )
        mask = np.zeros(horizon, dtype=bool)
        mask[self.start_slot : self.end_slot + 1] = True
        return mask


@dataclass(frozen=True)
class ZeroPriceAttack(_WindowedAttack):
    """Set the price to zero inside a window (the Figure 5 attack).

    The paper zeroes 16:00-17:00; on an hourly grid that is
    ``ZeroPriceAttack(start_slot=16, end_slot=17)``.
    """

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        p[self.window_mask(p.size)] = 0.0
        return p


@dataclass(frozen=True)
class ScalingAttack(_WindowedAttack):
    """Multiply the price inside a window by a constant factor."""

    factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * self.factor
        return p


@dataclass(frozen=True)
class PeakIncreaseAttack(_WindowedAttack):
    """Strength-parameterized cheap-window attack.

    ``strength`` in [0, 1] interpolates between no manipulation (0) and
    full zeroing (1): the window price is scaled by ``1 - strength``.
    Variable-strength attacks are what the long-term scenario draws, so
    detection margins straddle the threshold realistically.
    """

    strength: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * (1.0 - self.strength)
        return p


@dataclass(frozen=True)
class BillIncreaseAttack(_WindowedAttack):
    """Inflate prices *outside* the window to herd load into it.

    Ref. [8]'s bill attack: the victim's scheduler flees the inflated
    slots, concentrating consumption where the real price is high.
    """

    inflation: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inflation < 1.0:
            raise ValueError(f"inflation must be >= 1, got {self.inflation}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[~mask] = p[~mask] * self.inflation
        return p


@dataclass(frozen=True)
class CoordinatedRampAttack(_WindowedAttack):
    """Coordinated multi-meter ramp: the discount deepens across the window.

    Slot ``k`` of the window (0-based, width ``w``) is scaled by
    ``1 - intensity * (k + 1) / w``: the window's first slot gets the
    shallowest discount, its last the full ``intensity``.  Every
    compromised meter in a campaign installs the same ramp, so the fleet
    chases the window's end together — a slow pile-up rather than the
    peak-increase family's cliff.  ``intensity=0`` is exactly the
    identity transformation.
    """

    intensity: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        if self.intensity == 0.0:  # repro: noqa[FLT001] exact: inert attack is the identity
            return p
        mask = self.window_mask(p.size)
        width = int(mask.sum())
        ramp = self.intensity * np.arange(1, width + 1, dtype=float) / width
        p[mask] = p[mask] * (1.0 - ramp)
        return p


@dataclass(frozen=True)
class TelemetrySpoofAttack(_WindowedAttack):
    """Manipulate the price and spoof the reading the utility receives.

    The home responds to the peak-increase manipulation (``strength``),
    but the compromised meter reports a reading blended back toward the
    clean vector: ``report = received + blend * (clean - received)``.
    ``blend=0`` is an honest report; ``blend=1`` reports the clean price
    (indistinguishable from a benign meter at the PAR check), while the
    realized grid still carries the manipulated response.
    """

    strength: float = 0.6
    blend: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")
        if not 0.0 <= self.blend <= 1.0:
            raise ValueError(f"blend must be in [0, 1], got {self.blend}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * (1.0 - self.strength)
        return p

    def report(
        self, clean: NDArray[np.float64], received: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        if self.blend == 0.0:  # repro: noqa[FLT001] exact: honest report shares the array
            return received
        return received + self.blend * (clean - received)


@dataclass(frozen=True)
class MeterOutageAttack(_WindowedAttack):
    """Knock the meter offline while its home chases manipulated prices.

    The household scheduler still receives the peak-increase manipulation
    (``strength``), but the meter reports nothing; the utility fills the
    gap with the posted guideline price, so the report *is* the clean
    vector and the single-event check sees a benign meter.  Only the
    realized grid (and the long-term belief, through other meters'
    observations) betrays the attack.
    """

    strength: float = 0.6

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * (1.0 - self.strength)
        return p

    def report(
        self, clean: NDArray[np.float64], received: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        return clean.copy()
