"""Guideline-price manipulation attacks (Section 4, and the paper's ref. [8]).

A pricing cyberattack tampers with the guideline-price vector a hacked
smart meter *receives*; the household's scheduler then chases the fake
prices.  Two canonical attacks from ref. [8] are modelled, plus the
zeroing attack the paper uses in Figure 5:

- :class:`ZeroPriceAttack` / :class:`ScalingAttack` (peak-increase family):
  make a window look artificially cheap so deferrable load piles into it.
- :class:`PeakIncreaseAttack`: the parameterized version — scale a window
  down by a strength factor (strength 1 == zeroing).
- :class:`BillIncreaseAttack`: inflate prices outside the victim's typical
  cheap window so the scheduler moves load to genuinely expensive slots.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray


def _validated_prices(prices: ArrayLike) -> NDArray[np.float64]:
    p = np.asarray(prices, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"prices must be a non-empty 1-D array, got shape {p.shape}")
    if np.any(~np.isfinite(p)) or np.any(p < 0):
        raise ValueError("prices must be finite and >= 0")
    return p


class PricingAttack(abc.ABC):
    """A deterministic transformation of a received guideline-price vector."""

    @abc.abstractmethod
    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        """Return the manipulated price vector (input is not modified)."""

    def window_mask(self, horizon: int) -> NDArray[np.bool_]:
        """Slots touched by the attack; default: all slots."""
        return np.ones(horizon, dtype=bool)


@dataclass(frozen=True)
class _WindowedAttack(PricingAttack):
    """Shared validation for attacks acting on a slot window."""

    start_slot: int
    end_slot: int

    def __post_init__(self) -> None:
        if self.start_slot < 0:
            raise ValueError(f"start_slot must be >= 0, got {self.start_slot}")
        if self.end_slot < self.start_slot:
            raise ValueError(
                f"end_slot {self.end_slot} before start_slot {self.start_slot}"
            )

    def window_mask(self, horizon: int) -> NDArray[np.bool_]:
        if self.end_slot >= horizon:
            raise ValueError(
                f"attack window [{self.start_slot}, {self.end_slot}] outside "
                f"horizon {horizon}"
            )
        mask = np.zeros(horizon, dtype=bool)
        mask[self.start_slot : self.end_slot + 1] = True
        return mask


@dataclass(frozen=True)
class ZeroPriceAttack(_WindowedAttack):
    """Set the price to zero inside a window (the Figure 5 attack).

    The paper zeroes 16:00-17:00; on an hourly grid that is
    ``ZeroPriceAttack(start_slot=16, end_slot=17)``.
    """

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        p[self.window_mask(p.size)] = 0.0
        return p


@dataclass(frozen=True)
class ScalingAttack(_WindowedAttack):
    """Multiply the price inside a window by a constant factor."""

    factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * self.factor
        return p


@dataclass(frozen=True)
class PeakIncreaseAttack(_WindowedAttack):
    """Strength-parameterized cheap-window attack.

    ``strength`` in [0, 1] interpolates between no manipulation (0) and
    full zeroing (1): the window price is scaled by ``1 - strength``.
    Variable-strength attacks are what the long-term scenario draws, so
    detection margins straddle the threshold realistically.
    """

    strength: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.strength <= 1.0:
            raise ValueError(f"strength must be in [0, 1], got {self.strength}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[mask] = p[mask] * (1.0 - self.strength)
        return p


@dataclass(frozen=True)
class BillIncreaseAttack(_WindowedAttack):
    """Inflate prices *outside* the window to herd load into it.

    Ref. [8]'s bill attack: the victim's scheduler flees the inflated
    slots, concentrating consumption where the real price is high.
    """

    inflation: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.inflation < 1.0:
            raise ValueError(f"inflation must be >= 1, got {self.inflation}")

    def apply(self, prices: ArrayLike) -> NDArray[np.float64]:
        p = _validated_prices(prices).copy()
        mask = self.window_mask(p.size)
        p[~mask] = p[~mask] * self.inflation
        return p
