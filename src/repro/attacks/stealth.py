"""Detection-aware (stealthy) attack planning.

A natural extension of the paper's threat model: an attacker who knows
the detector's PAR threshold ``delta_P`` picks the strongest manipulation
whose induced PAR increase stays *below* it.  The planner sweeps the
attack family against the community response simulator and returns the
maximum-damage undetectable attack — quantifying the residual exposure
that remains even with a perfectly calibrated detector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.attacks.pricing import PeakIncreaseAttack
from repro.billing.realtime import RealTimePriceModel
from repro.detection.single_event import CommunityResponseSimulator


@dataclass(frozen=True)
class StealthPlan:
    """The best undetectable attack found, with its damage accounting."""

    attack: PeakIncreaseAttack | None
    margin: float
    bill_damage: float
    evaluated: int

    @property
    def found(self) -> bool:
        return self.attack is not None


def plan_stealthy_attack(
    simulator: CommunityResponseSimulator,
    clean_prices: NDArray[np.float64],
    *,
    threshold: float,
    price_model: RealTimePriceModel,
    strengths: NDArray[np.float64] | None = None,
    window_starts: NDArray[np.int_] | None = None,
    window_width: int = 2,
    safety_margin: float = 0.0,
) -> StealthPlan:
    """Find the maximum-bill-damage attack whose PAR margin stays hidden.

    Parameters
    ----------
    simulator:
        The community response model the attacker (pessimistically)
        assumes the detector uses.
    clean_prices:
        The genuine guideline-price vector being manipulated.
    threshold:
        The detector's ``delta_P``.
    price_model:
        Real-time billing model used to score damage (relative bill
        increase of the manipulated response).
    strengths, window_starts, window_width:
        The attack family swept; defaults cover strengths 0.1-0.9 and all
        windows of ``window_width`` slots.
    safety_margin:
        Extra headroom the attacker keeps below the threshold (to survive
        detector measurement noise).

    Returns
    -------
    The best plan; ``plan.found`` is False when every candidate would be
    detected.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if safety_margin < 0:
        raise ValueError(f"safety_margin must be >= 0, got {safety_margin}")
    prices = np.asarray(clean_prices, dtype=float)
    horizon = prices.size
    if strengths is None:
        strengths = np.linspace(0.1, 0.9, 9)
    if window_starts is None:
        window_starts = np.arange(0, horizon - window_width + 1, 2)

    benign = simulator.response(prices)
    benign_par = float(benign.grid_demand.max() / benign.grid_demand.mean())
    benign_bill = float(
        (price_model.price(benign.grid_demand) * benign.grid_demand).sum()
    )
    if benign_bill <= 0:
        raise ValueError("benign bill must be positive to score damage")

    best_attack: PeakIncreaseAttack | None = None
    best_margin = 0.0
    best_damage = 0.0
    evaluated = 0
    for start in np.asarray(window_starts, dtype=int):
        for strength in np.asarray(strengths, dtype=float):
            attack = PeakIncreaseAttack(
                start_slot=int(start),
                end_slot=int(start) + window_width - 1,
                strength=float(strength),
            )
            response = simulator.response(attack.apply(prices))
            evaluated += 1
            margin = (
                float(response.grid_demand.max() / response.grid_demand.mean())
                - benign_par
            )
            if margin > threshold - safety_margin:
                continue  # would be detected
            bill = float(
                (price_model.price(response.grid_demand) * response.grid_demand).sum()
            )
            damage = (bill - benign_bill) / benign_bill
            if damage > best_damage:
                best_damage = damage
                best_margin = margin
                best_attack = attack
    return StealthPlan(
        attack=best_attack,
        margin=best_margin,
        bill_damage=best_damage,
        evaluated=evaluated,
    )
