"""Kind-tagged serialization registry for pricing attacks.

Checkpoints, stream events and scripted scenarios all need to carry an
attack across a process boundary.  Attacks are frozen dataclasses, so a
flat ``{"kind": <tag>, **fields}`` payload round-trips them exactly;
this module owns the tag → class mapping.

Back-compat: checkpoints written before the taxonomy carried kind-less
``{start_slot, end_slot, strength}`` payloads (the only attack the
hacking process drew then was :class:`PeakIncreaseAttack`).
:func:`attack_from_dict` still accepts those.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.attacks.pricing import (
    BillIncreaseAttack,
    CoordinatedRampAttack,
    MeterOutageAttack,
    PeakIncreaseAttack,
    PricingAttack,
    ScalingAttack,
    TelemetrySpoofAttack,
    ZeroPriceAttack,
)

_ATTACK_KINDS: dict[str, type[PricingAttack]] = {
    "zero_price": ZeroPriceAttack,
    "scaling": ScalingAttack,
    "peak_increase": PeakIncreaseAttack,
    "bill_increase": BillIncreaseAttack,
    "coordinated_ramp": CoordinatedRampAttack,
    "telemetry_spoof": TelemetrySpoofAttack,
    "meter_outage": MeterOutageAttack,
}

_KIND_BY_CLASS = {cls: kind for kind, cls in _ATTACK_KINDS.items()}


def attack_kinds() -> list[str]:
    """Registered attack kind tags, sorted."""
    return sorted(_ATTACK_KINDS)


def attack_kind(attack: PricingAttack) -> str:
    """The registry tag of an attack instance."""
    kind = _KIND_BY_CLASS.get(type(attack))
    if kind is None:
        raise TypeError(
            f"unregistered attack class: {type(attack).__name__} "
            f"(known: {attack_kinds()})"
        )
    return kind


def attack_to_dict(attack: PricingAttack) -> dict[str, Any]:
    """Flat JSON payload: the kind tag plus every dataclass field."""
    payload: dict[str, Any] = {"kind": attack_kind(attack)}
    for field in dataclasses.fields(attack):  # type: ignore[arg-type]
        payload[field.name] = getattr(attack, field.name)
    return payload


def attack_from_dict(payload: dict[str, Any]) -> PricingAttack:
    """Rebuild an attack from its payload (kind-less == peak_increase)."""
    data = dict(payload)
    kind = data.pop("kind", "peak_increase")
    cls = _ATTACK_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown attack kind {kind!r} (expected one of {attack_kinds()})"
        )
    names = {field.name for field in dataclasses.fields(cls)}  # type: ignore[arg-type]
    extra = set(data) - names
    if extra:
        raise ValueError(f"unknown fields for attack kind {kind!r}: {sorted(extra)}")
    return cls(**data)
