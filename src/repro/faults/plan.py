"""Fault plans: the declarative configuration of a chaos run.

A :class:`FaultPlan` says *which* faults a
:class:`~repro.faults.injector.FaultInjector` may introduce and *how
often*, plus the seed every fault decision is drawn from.  Plans are
immutable, validated, JSON-round-trippable (they ride inside stream
checkpoints so a resumed chaos run keeps misbehaving identically), and
addressable by name: :data:`BUILTIN_PLANS` holds one canonical plan per
fault family plus a mixed ``chaos`` plan, and :func:`parse_fault_spec`
accepts a builtin name, a JSON file path, or an inline JSON object —
the same grammar the CLI's ``--faults`` flag and the service's
``POST /faults`` endpoint speak.

Degradation semantics per fault family are documented in
``docs/ROBUSTNESS.md``: ``duplicate`` and ``stall`` are absorbed
bitwise; ``reorder`` is absorbed bitwise unless a repair dispatch lands
inside the reordered window; ``drop``, ``corrupt`` and ``delay`` degrade
to explicit gap markers in the detection timeline.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any


class FaultPlanError(ValueError):
    """Raised when a fault plan is constructed or parsed inconsistently."""


_PROB_FIELDS = (
    "drop_prob",
    "duplicate_prob",
    "reorder_prob",
    "delay_prob",
    "corrupt_prob",
    "stall_prob",
)


@dataclass(frozen=True)
class FaultPlan:
    """Per-event fault probabilities and the seed of the fault RNG.

    Parameters
    ----------
    seed:
        Root of the ``numpy.random.SeedSequence`` every fault decision
        is spawned from; identical seed means identical fault pattern.
    drop_prob:
        Chance a meter reading is lost in transit (degrades to a gap
        marker for its slot).
    duplicate_prob:
        Chance a meter reading is delivered twice (the replica is
        deduplicated bitwise).
    reorder_prob:
        Chance a meter reading swaps places with the following reading.
    delay_prob / max_delay:
        Chance a meter reading is held back 1..``max_delay`` deliveries
        (late arrivals past their day's flush degrade to gaps).
    corrupt_prob:
        Chance one cell of a reading's price matrix is corrupted to a
        non-finite or negative value (rejected by validation; degrades
        to a gap marker).
    stall_prob / max_stall:
        Chance a price update stalls the feed for 1..``max_stall`` empty
        polls before arriving (absorbed by the engine's retry policy).
    """

    seed: int = 0
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    delay_prob: float = 0.0
    max_delay: int = 3
    corrupt_prob: float = 0.0
    stall_prob: float = 0.0
    max_stall: int = 3

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultPlanError(f"seed must be >= 0, got {self.seed}")
        for name in _PROB_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {value}")
        if self.max_delay < 1:
            raise FaultPlanError(f"max_delay must be >= 1, got {self.max_delay}")
        if self.max_stall < 1:
            raise FaultPlanError(f"max_stall must be >= 1, got {self.max_stall}")

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True when no fault can ever fire (every probability is zero)."""
        return all(getattr(self, name) <= 0.0 for name in _PROB_FIELDS)

    @property
    def is_lossless(self) -> bool:
        """True when recovery to the clean timeline is guaranteed bitwise.

        Only ``duplicate`` and ``stall`` faults qualify unconditionally:
        duplicates are deduplicated before any RNG draw and stalls only
        cost engine retries.  ``reorder`` is bitwise-recoverable too
        *unless* a repair dispatch fires inside the reordered window
        (the held reading was generated before the repair landed), so it
        is excluded here; ``drop``/``corrupt``/``delay`` degrade to gap
        markers by design.
        """
        return (
            self.drop_prob <= 0.0
            and self.corrupt_prob <= 0.0
            and self.delay_prob <= 0.0
            and self.reorder_prob <= 0.0
        )

    def with_updates(self, **changes: Any) -> "FaultPlan":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (rides inside checkpoints)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan field(s) {', '.join(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        try:
            return cls(
                seed=int(payload.get("seed", 0)),
                drop_prob=float(payload.get("drop_prob", 0.0)),
                duplicate_prob=float(payload.get("duplicate_prob", 0.0)),
                reorder_prob=float(payload.get("reorder_prob", 0.0)),
                delay_prob=float(payload.get("delay_prob", 0.0)),
                max_delay=int(payload.get("max_delay", 3)),
                corrupt_prob=float(payload.get("corrupt_prob", 0.0)),
                stall_prob=float(payload.get("stall_prob", 0.0)),
                max_stall=int(payload.get("max_stall", 3)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FaultPlanError):
                raise
            raise FaultPlanError(f"bad fault-plan payload: {exc}") from exc


BUILTIN_PLANS: dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "drop": FaultPlan(drop_prob=0.15),
    "duplicate": FaultPlan(duplicate_prob=0.2),
    "reorder": FaultPlan(reorder_prob=0.2),
    "delay": FaultPlan(delay_prob=0.15, max_delay=3),
    "corrupt": FaultPlan(corrupt_prob=0.15),
    "stall": FaultPlan(stall_prob=0.25, max_stall=3),
    "chaos": FaultPlan(
        drop_prob=0.06,
        duplicate_prob=0.08,
        reorder_prob=0.08,
        delay_prob=0.06,
        max_delay=2,
        corrupt_prob=0.06,
        stall_prob=0.10,
        max_stall=2,
    ),
}
"""One canonical plan per fault family plus the mixed ``chaos`` plan."""


def builtin_plan(name: str, *, seed: int | None = None) -> FaultPlan:
    """Look up a built-in plan by name, optionally re-seeding it."""
    try:
        plan = BUILTIN_PLANS[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown builtin fault plan {name!r} "
            f"(expected one of {sorted(BUILTIN_PLANS)})"
        ) from None
    return plan if seed is None else plan.with_updates(seed=seed)


def parse_fault_spec(spec: str, *, seed: int | None = None) -> FaultPlan:
    """Parse the CLI/service fault-plan grammar.

    ``spec`` is either a builtin plan name (``chaos``), the path of a
    JSON file holding a plan object, or an inline JSON object string
    (``'{"drop_prob": 0.2}'``).  ``seed`` overrides the plan's seed when
    given.
    """
    text = spec.strip()
    if not text:
        raise FaultPlanError("empty fault-plan spec")
    if text in BUILTIN_PLANS:
        return builtin_plan(text, seed=seed)
    if text.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"inline fault plan is not valid JSON: {exc}") from exc
    else:
        path = Path(text)
        if not path.exists():
            raise FaultPlanError(
                f"fault-plan spec {spec!r} is neither a builtin name "
                f"({sorted(BUILTIN_PLANS)}), an existing JSON file, nor inline JSON"
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault-plan file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FaultPlanError("a fault plan must be a JSON object")
    plan = FaultPlan.from_dict(payload)
    return plan if seed is None else plan.with_updates(seed=seed)
