"""Seeded, plan-driven fault injection over any event source.

:class:`FaultInjector` wraps an :class:`~repro.stream.source.EventSource`
and perturbs its event stream according to a
:class:`~repro.faults.plan.FaultPlan`: meter readings can be dropped,
duplicated, reordered, delayed or field-corrupted, and price updates can
stall the feed for a few polls.  Day boundaries are never faulted — they
are the pipeline's flush points, and real telemetry busses deliver
framing control messages reliably.

Determinism contract: every fault decision flows through two RNGs
spawned off one ``numpy.random.SeedSequence(plan.seed)`` (decision
stream and corruption stream), exactly five decision uniforms are drawn
per meter reading regardless of outcomes, and ``state_dict`` captures
both bit-generator states plus every buffered event.  A chaos run is
therefore exactly reproducible from its seed, and checkpoint/resume
under injected faults stays bitwise identical — the chaos suite in
``tests/test_stream_chaos.py`` asserts both.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.faults.plan import FaultPlan
from repro.perf.counters import PERF
from repro.stream.events import (
    AttackOccurrence,
    DayBoundary,
    MeterReading,
    PriceUpdate,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.stream.source import EventSource


class FaultInjector:
    """Fault-injecting adapter satisfying the ``EventSource`` protocol.

    Parameters
    ----------
    source:
        The clean feed to perturb (replay, synthetic, or another
        adapter).
    plan:
        Which faults may fire, how often, and under which seed.
    """

    def __init__(self, source: EventSource, plan: FaultPlan) -> None:
        self.source = source
        self.plan = plan
        decide_seq, corrupt_seq = np.random.SeedSequence(plan.seed).spawn(2)
        self._decide_rng = np.random.default_rng(decide_seq)
        self._corrupt_rng = np.random.default_rng(corrupt_seq)
        self._stall_remaining = 0
        self._release: list[StreamEvent] = []
        self._delayed: list[tuple[int, StreamEvent]] = []
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once the inner source is dry and every buffer is empty."""
        inner = bool(getattr(self.source, "exhausted", False))
        return (
            inner
            and not self._release
            and not self._delayed
            and self._stall_remaining == 0
        )

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        PERF.add(f"stream.faults.{kind}")

    # ------------------------------------------------------------------
    def next_event(self) -> StreamEvent | None:
        """One perturbed event, or ``None`` while the feed is stalled."""
        if self._stall_remaining > 0:
            self._stall_remaining -= 1
            return None
        while True:
            if self._release:
                event = self._release.pop(0)
            else:
                pulled = self.source.next_event()
                if pulled is None:
                    if not self._delayed:
                        return None
                    # Source dry: flush stragglers in hold order.
                    _, event = self._delayed.pop(0)
                else:
                    verdict = self._mutate(pulled)
                    if verdict is None:
                        if self._release:
                            # Stall began: the held-back event waits in
                            # _release and this poll is the first empty one.
                            return None
                        continue  # dropped or delayed: pull the next event
                    event = verdict
            self._age_delayed()
            return event

    def _age_delayed(self) -> None:
        """One delivery happened: mature every held-back event by a tick."""
        if not self._delayed:
            return
        matured: list[StreamEvent] = []
        rest: list[tuple[int, StreamEvent]] = []
        for ticks, event in self._delayed:
            if ticks <= 1:
                matured.append(event)
            else:
                rest.append((ticks - 1, event))
        self._delayed = rest
        self._release.extend(matured)

    def _mutate(self, event: StreamEvent) -> StreamEvent | None:
        """Apply at most one fault; ``None`` means nothing to deliver now.

        Invariant on entry: ``_release`` is empty (the pump loop drains
        it before pulling), so queueing into it preserves stream order.
        """
        plan = self.plan
        if isinstance(event, (DayBoundary, AttackOccurrence)):
            # Boundaries and ground-truth occurrence announcements pass
            # through untouched: neither is a wire reading.
            return event
        if isinstance(event, PriceUpdate):
            if plan.stall_prob > 0.0 and self._decide_rng.random() < plan.stall_prob:
                ticks = int(self._decide_rng.integers(1, plan.max_stall + 1))
                # This call's None is the first stalled poll.
                self._stall_remaining = ticks - 1
                self._release.insert(0, event)
                self._count("stall")
                return None
            return event
        # Meter reading: one uniform per fault family, drawn in one
        # block so the decision stream advances identically whatever
        # the outcomes.
        draws = self._decide_rng.random(5)
        if draws[0] < plan.drop_prob:
            self._count("drop")
            return None
        if draws[1] < plan.corrupt_prob:
            return self._corrupt(event)
        if draws[2] < plan.duplicate_prob:
            self._count("duplicate")
            self._release.append(event)
            return event
        if draws[3] < plan.reorder_prob:
            return self._reorder(event)
        if draws[4] < plan.delay_prob:
            ticks = int(self._decide_rng.integers(1, plan.max_delay + 1))
            self._delayed.append((ticks, event))
            self._count("delay")
            return None
        return event

    def _reorder(self, event: MeterReading) -> StreamEvent:
        """Swap this reading with the next event when that is a reading.

        The pulled follower bypasses its own fault draw (no cascades);
        a non-reading follower cancels the swap so readings never cross
        price updates or day boundaries.
        """
        nxt = self.source.next_event()
        if nxt is None:
            return event
        if isinstance(nxt, MeterReading):
            self._count("reorder")
            self._release.append(event)
            return nxt
        self._release.append(nxt)
        return event

    def _corrupt(self, reading: MeterReading) -> MeterReading:
        """Corrupt one cell of the price matrix to a detectable value."""
        rng = self._corrupt_rng
        received = reading.received.copy()
        row = int(rng.integers(received.shape[0]))
        col = int(rng.integers(received.shape[1]))
        mode = int(rng.integers(3))
        if mode == 0:
            received[row, col] = np.nan
        elif mode == 1:
            received[row, col] = np.inf
        else:
            received[row, col] = -1.0 - abs(received[row, col])
        self._count("corrupt")
        return MeterReading(
            slot=reading.slot,
            received=received,
            truth=reading.truth,
            actual=reading.actual,
        )

    # ------------------------------------------------------------------
    def apply_repair(self) -> int:
        """Repair feedback passes through to the wrapped source."""
        return self.source.apply_repair()

    def state_dict(self) -> dict[str, Any]:
        """Resumable state: inner source, buffers, counters, RNG states."""
        return {
            "kind": "faults",
            "plan": self.plan.to_dict(),
            "source": self.source.state_dict(),
            "stall_remaining": self._stall_remaining,
            "release": [event_to_dict(event) for event in self._release],
            "delayed": [
                [ticks, event_to_dict(event)] for ticks, event in self._delayed
            ],
            "counts": dict(self.counts),
            "decide_rng": self._decide_rng.bit_generator.state,
            "corrupt_rng": self._corrupt_rng.bit_generator.state,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state.get("kind") != "faults":
            raise ValueError(f"not a fault-injector state: {state.get('kind')!r}")
        plan = FaultPlan.from_dict(state["plan"])
        if plan != self.plan:
            raise ValueError(
                "checkpointed fault plan differs from the injector's plan; "
                "rebuild the engine from the checkpoint's build spec"
            )
        self.source.load_state(state["source"])
        self._stall_remaining = int(state["stall_remaining"])
        self._release = [event_from_dict(payload) for payload in state["release"]]
        self._delayed = [
            (int(ticks), event_from_dict(payload))
            for ticks, payload in state["delayed"]
        ]
        self.counts = {str(k): int(v) for k, v in state["counts"].items()}
        self._decide_rng.bit_generator.state = state["decide_rng"]
        self._corrupt_rng.bit_generator.state = state["corrupt_rng"]
