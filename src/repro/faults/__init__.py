"""Deterministic fault injection for the streaming detection stack.

The paper's monitoring loop is only as trustworthy as its ability to
keep producing observations when telemetry misbehaves.  This package
provides the misbehaviour: a seeded, plan-driven
:class:`~repro.faults.injector.FaultInjector` that wraps any event
source and drops, duplicates, reorders, delays or corrupts meter
readings, stalls price updates, plus helpers that damage checkpoint
files the way crashes and bad disks do.  Every fault is drawn from a
``numpy.random.SeedSequence``-spawned RNG, so a chaos run is exactly
reproducible and checkpoint/resume under injected faults stays bitwise
identical.

- :mod:`repro.faults.plan` — :class:`FaultPlan`, builtin plans, and the
  CLI/service plan grammar.
- :mod:`repro.faults.injector` — the event-stream fault injector.
- :mod:`repro.faults.chaos` — deterministic checkpoint-file corruption.

The robustness machinery that *absorbs* these faults (retry policies,
gap-tolerant pipelines) lives in :mod:`repro.stream`; the taxonomy and
degradation semantics are documented in ``docs/ROBUSTNESS.md``.
"""

from repro.faults.chaos import bitflip_file, truncate_file
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BUILTIN_PLANS,
    FaultPlan,
    FaultPlanError,
    builtin_plan,
    parse_fault_spec,
)

__all__ = [
    "BUILTIN_PLANS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "bitflip_file",
    "builtin_plan",
    "parse_fault_spec",
    "truncate_file",
]
