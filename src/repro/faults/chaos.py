"""Deterministic corruption of on-disk artifacts (chaos-test support).

The chaos suite does not only perturb live event streams — it also
damages checkpoint files the way crashes and bad disks do (truncation,
bit flips) and asserts that the checkpoint loader fails *loudly* with
:class:`~repro.stream.checkpoint.CheckpointError` instead of resuming
from torn state.  Both helpers are deterministic: truncation is a pure
function of the fraction, and the bit flip draws its offset from a
caller-provided ``numpy.random.Generator``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np


def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> Path:
    """Truncate a file to the leading ``keep_fraction`` of its bytes.

    Models a crash mid-write (without the atomic-rename protection the
    checkpoint writer uses).  ``keep_fraction`` must be in ``[0, 1)`` —
    keeping everything would not be a fault.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def bitflip_file(
    path: str | Path,
    rng: np.random.Generator,
    *,
    lo: int = 0,
    hi: int | None = None,
) -> Path:
    """Flip one random bit of a file within the byte range ``[lo, hi)``.

    Models silent media corruption.  The offset and bit index are drawn
    from ``rng``, so a seeded generator makes the damage reproducible.
    ``hi`` defaults to the file size; the range is clamped to it.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot bit-flip empty file {path}")
    if lo < 0:
        raise ValueError(f"lo must be >= 0, got {lo}")
    end = len(data) if hi is None else min(hi, len(data))
    if lo >= end:
        raise ValueError(f"empty flip range [{lo}, {end}) for {path}")
    offset = int(rng.integers(lo, end))
    bit = int(rng.integers(8))
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return path
