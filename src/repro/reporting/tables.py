"""Paper-vs-measured comparison tables.

The benchmark harness and the CLI print the same fixed-width rows the
paper's Table 1 uses, annotated with the deviation from the published
number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ComparisonRow:
    """One reproduced quantity."""

    label: str
    paper: float | None
    measured: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.measured):
            raise ValueError(f"{self.label}: measured value must be finite")
        if self.paper is not None and not np.isfinite(self.paper):
            raise ValueError(f"{self.label}: paper value must be finite")

    @property
    def deviation(self) -> float | None:
        """Relative deviation from the paper's number (None if unpublished
        or the paper value is zero)."""
        if self.paper is None or self.paper == 0:
            return None
        return (self.measured - self.paper) / self.paper


def comparison_table(rows: list[ComparisonRow], *, title: str = "") -> str:
    """Render paper-vs-measured rows as a fixed-width table."""
    if not rows:
        raise ValueError("need at least one row")
    label_width = max(len(row.label) for row in rows)
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'quantity':<{label_width}}  {'paper':>10}  {'measured':>10}  {'dev.':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        paper = f"{row.paper:10.4f}" if row.paper is not None else f"{'--':>10}"
        deviation = (
            f"{row.deviation * 100:+7.1f}%" if row.deviation is not None else f"{'--':>8}"
        )
        lines.append(
            f"{row.label:<{label_width}}  {paper}  {row.measured:10.4f}  {deviation}"
        )
    return "\n".join(lines)


def fixed_table(
    header: list[str],
    rows: list[list[str]],
) -> str:
    """Minimal fixed-width table for arbitrary string content."""
    if not rows:
        raise ValueError("need at least one row")
    if any(len(row) != len(header) for row in rows):
        raise ValueError("every row must match the header width")
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(f"{cell:>{width}}" for cell, width in zip(cells, widths))

    lines = [fmt(header), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
