"""Golden-master digests of the paper's evaluation artifacts.

A golden digest file pins every number a bench preset produces for the
fig3–fig6/table1 pipeline — headline scalars verbatim (floats survive
the JSON round trip exactly via ``repr`` shortest-round-trip) and the
big arrays as SHA-256 digests of their raw bytes.  The committed
fixtures under ``tests/golden/`` turn silent behaviour drift anywhere in
the stack (pricing, prediction, game solving, detection, streaming
replay) into a loud diff.

Regenerate after an *intentional* change with ``make refresh-golden``
(or ``python scripts/refresh_golden.py --preset smoke``); the diff test
in ``tests/test_golden_master.py`` compares the committed fixture
against a fresh run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.core.config import CommunityConfig, config_to_dict
from repro.metrics.errors import rmse
from repro.simulation.scenario import ScenarioResult, run_long_term_scenario

GOLDEN_FORMAT = "repro-golden-digests"
GOLDEN_VERSION = 1


def _sha256(array: NDArray[Any]) -> str:
    """Content digest of an array's raw bytes (C order)."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _scenario_digest(result: ScenarioResult) -> dict[str, Any]:
    return {
        "mean_par": result.mean_par,
        "observation_accuracy": result.observation_accuracy,
        "n_repairs": result.n_repairs,
        "truth_sha256": _sha256(result.truth),
        "flags_sha256": _sha256(result.flags),
        "observations_sha256": _sha256(result.observations),
        "repairs_sha256": _sha256(result.repairs),
        "realized_grid_sha256": _sha256(result.realized_grid),
    }


def compute_golden_digests(
    config: CommunityConfig, *, n_slots: int = 48
) -> dict[str, Any]:
    """Run the full evaluation pipeline and digest every artifact.

    Covers the prediction figures (fig3/fig4 RMSE and predicted PAR),
    the attack-impact figure (fig5), and one long-term scenario per
    detector kind (fig6/table1: accuracy, PAR, repair counts, plus
    array digests).
    """
    from repro.attacks.pricing import ZeroPriceAttack
    from repro.cli import _Environment

    env = _Environment(config)
    attack = ZeroPriceAttack(start_slot=16, end_slot=17)
    attacked = env.truth_sim.response(attack.apply(env.clean_prices))
    attacked_par = float(attacked.grid_demand.max() / attacked.grid_demand.mean())
    scenarios: dict[str, Any] = {}
    for kind in ("none", "unaware", "aware"):
        result = run_long_term_scenario(config, detector=kind, n_slots=n_slots)
        scenarios[kind] = _scenario_digest(result)
    return {
        "format": GOLDEN_FORMAT,
        "version": GOLDEN_VERSION,
        "n_slots": n_slots,
        "config_sha256": hashlib.sha256(
            json.dumps(config_to_dict(config), sort_keys=True).encode("utf-8")
        ).hexdigest(),
        "fig3": {
            "unaware_rmse": rmse(env.clean_prices, env.unaware_prices),
            "predicted_par": env.unaware_sim.grid_par(env.unaware_prices),
        },
        "fig4": {
            "aware_rmse": rmse(env.clean_prices, env.aware_prices),
            "predicted_par": env.truth_sim.grid_par(env.aware_prices),
            "benign_par": env.truth_sim.grid_par(env.clean_prices),
        },
        "fig5": {"attacked_par": attacked_par},
        "scenarios": scenarios,
    }


MATRIX_GOLDEN_TARIFFS = ("flat", "nem3_spread")
MATRIX_GOLDEN_FAMILIES = ("peak_increase", "meter_outage")
MATRIX_GOLDEN_DETECTORS = ("aware", "unaware", "none")


def compute_matrix_digests(
    config: CommunityConfig, *, n_slots: int = 48
) -> dict[str, Any]:
    """Run the pinned golden scenario-matrix grid and return its artifact.

    The grid is a small tariff × attack corner of the full matrix
    (``docs/SCENARIOS.md``), run at the same horizon as the scenario
    digests in :func:`compute_golden_digests`.  Its ``("flat",
    "peak_increase")`` cells are therefore bitwise the Table 1 runs
    already pinned by the preset fixtures — ``tests/test_matrix_golden.py``
    cross-checks the two files against each other.
    """
    from repro.simulation.sweep import sweep_matrix

    result = sweep_matrix(
        config,
        tariffs=MATRIX_GOLDEN_TARIFFS,
        attack_families=MATRIX_GOLDEN_FAMILIES,
        detectors=MATRIX_GOLDEN_DETECTORS,
        n_slots=n_slots,
    )
    return result.to_dict()


def write_golden_digests(digests: dict[str, Any], path: str | Path) -> Path:
    """Persist a digest document (stable key order, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(digests, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_golden_digests(path: str | Path) -> dict[str, Any]:
    """Read and validate a committed digest fixture."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != GOLDEN_FORMAT:
        raise ValueError(f"not a golden digest file: {path}")
    if payload.get("version") != GOLDEN_VERSION:
        raise ValueError(
            f"unsupported golden digest version {payload.get('version')!r} "
            f"(expected {GOLDEN_VERSION})"
        )
    return payload


def diff_digests(
    expected: dict[str, Any], actual: dict[str, Any], *, prefix: str = ""
) -> list[str]:
    """Human-readable list of leaf-level differences (empty == match)."""
    diffs: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        label = f"{prefix}{key}"
        if key not in expected:
            diffs.append(f"{label}: unexpected new entry {actual[key]!r}")
            continue
        if key not in actual:
            diffs.append(f"{label}: missing (expected {expected[key]!r})")
            continue
        exp, act = expected[key], actual[key]
        if isinstance(exp, dict) and isinstance(act, dict):
            diffs.extend(diff_digests(exp, act, prefix=f"{label}."))
        elif exp != act:
            diffs.append(f"{label}: expected {exp!r}, got {act!r}")
    return diffs
