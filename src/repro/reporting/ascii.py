"""ASCII renderings of daily profiles for terminal-first workflows.

The reproduction environment has no plotting stack, so the examples and
the CLI render load/price profiles as unicode sparklines and horizontal
bar charts — enough to eyeball the midday price gap of Figure 3 or the
attack spike of Figure 5 directly in the terminal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np
from numpy.typing import ArrayLike

if TYPE_CHECKING:
    from repro.stream.pipeline import SlotDetection

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: ArrayLike) -> str:
    """One-line unicode sparkline of a numeric series."""
    data = np.asarray(values, dtype=float)
    if data.ndim != 1 or data.size == 0:
        raise ValueError(f"values must be a non-empty 1-D array, got {data.shape}")
    if np.any(~np.isfinite(data)):
        raise ValueError("values must be finite")
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _BLOCKS[0] * data.size
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def render_profile(
    values: ArrayLike,
    *,
    label: str = "",
    width: int = 48,
) -> str:
    """Sparkline with range annotation, e.g. for a 24-slot load profile."""
    data = np.asarray(values, dtype=float)
    line = sparkline(data)
    if data.size > width:
        # Downsample by averaging consecutive chunks.
        chunks = np.array_split(data, width)
        line = sparkline(np.array([chunk.mean() for chunk in chunks]))
    prefix = f"{label:>12} " if label else ""
    return f"{prefix}{line}  [{data.min():.3g}, {data.max():.3g}]"


def render_stream_timeline(
    timeline: "Sequence[SlotDetection]",
    *,
    slots_per_day: int,
) -> str:
    """Day-by-day strip chart of a streaming detection timeline.

    One row per day: a glyph per slot (``.`` = no flags, digits = flag
    count, ``R`` = repair dispatched that slot, ``_`` = gap marker — the
    slot's reading was lost or unusable), followed by the day's repair
    count and closing belief mean.  Takes any sequence of
    :class:`~repro.stream.pipeline.SlotDetection`.
    """
    if slots_per_day < 1:
        raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
    if not timeline:
        return "(empty timeline)"
    rows = []
    by_day: dict[int, list] = {}
    for det in timeline:
        by_day.setdefault(det.day, []).append(det)
    for day in sorted(by_day):
        dets = by_day[day]
        glyphs = []
        for det in dets:
            if getattr(det, "gap", False):
                glyphs.append("_")
            elif det.repaired:
                glyphs.append("R")
            elif det.observation == 0:
                glyphs.append(".")
            else:
                glyphs.append(str(min(det.observation, 9)))
        repairs = sum(1 for det in dets if det.repaired)
        belief = dets[-1].belief_mean
        belief_txt = "  belief  n/a" if belief is None else f"  belief {belief:5.2f}"
        rows.append(
            f"day {day:3d} |{''.join(glyphs):<{slots_per_day}}| "
            f"repairs {repairs}{belief_txt}"
        )
    return "\n".join(rows)


def bar_chart(
    labels: list[str],
    values: ArrayLike,
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label."""
    data = np.asarray(values, dtype=float)
    if len(labels) != data.size:
        raise ValueError(f"{len(labels)} labels for {data.size} values")
    if data.size == 0:
        raise ValueError("empty chart")
    if np.any(~np.isfinite(data)) or np.any(data < 0):
        raise ValueError("bar values must be finite and >= 0")
    peak = float(data.max())
    label_width = max(len(label) for label in labels)
    rows = []
    for label, value in zip(labels, data):
        length = 0 if peak == 0 else int(round(value / peak * width))
        rows.append(
            f"{label:>{label_width}} |{'█' * length:<{width}}| {value:.4g}{unit}"
        )
    return "\n".join(rows)
