"""Terminal reporting: ASCII profiles and paper-vs-measured tables."""

from repro.reporting.ascii import bar_chart, render_profile, sparkline
from repro.reporting.tables import ComparisonRow, comparison_table, fixed_table

__all__ = [
    "ComparisonRow",
    "bar_chart",
    "comparison_table",
    "fixed_table",
    "render_profile",
    "sparkline",
]
