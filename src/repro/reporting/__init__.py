"""Terminal reporting: ASCII profiles, paper-vs-measured tables, and
golden-master digests of the evaluation artifacts."""

from repro.reporting.ascii import bar_chart, render_profile, sparkline
from repro.reporting.golden import (
    compute_golden_digests,
    diff_digests,
    load_golden_digests,
    write_golden_digests,
)
from repro.reporting.tables import ComparisonRow, comparison_table, fixed_table

__all__ = [
    "ComparisonRow",
    "bar_chart",
    "comparison_table",
    "compute_golden_digests",
    "diff_digests",
    "fixed_table",
    "load_golden_digests",
    "render_profile",
    "sparkline",
    "write_golden_digests",
]
