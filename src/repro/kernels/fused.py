"""Fused numpy backend: fewer temporaries, same bits.

Three observations let the hot kernels shed most of their allocation
and ufunc-dispatch overhead without changing a single output bit:

- **Clamp**: the CE sampler clips populations to ``[0, capacity]``
  before projection, so the reachability bounds ``max(0, prev - d)`` /
  ``min(capacity, prev + c)`` reduce to ``prev - d`` / ``prev + c``
  (clamping a value already inside ``[0, capacity]`` against the
  un-truncated bound gives the identical result), and the NaN sweep is
  a no-op on finite input.  Each forward step is four ``out=`` ufunc
  calls into two reused buffers.
- **Cost**: ``np.diff`` is plain subtraction, so the trading array can
  be built directly into a preallocated buffer, and the buy/sell
  branches reuse the community-total buffer.  Operand order matches the
  reference exactly (IEEE addition/multiplication are commutative, but
  association order is preserved anyway).
- **DP**: the per-level masked update is kept verbatim (a min/argmin
  rewrite could flip the sign of zero on exact ties); the win is the
  batched variant, which runs the identical update elementwise over a
  leading game axis — one ufunc dispatch per (slot, level) for the
  whole batch instead of per game.

Preconditions (guaranteed by the in-pipeline callers, asserted nowhere
for speed): ``clamp_decisions`` requires finite rows already clipped to
``[0, capacity]``; ``battery_costs`` requires finite inputs.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    BoolArray,
    FloatArray,
    Int16Array,
    IntArray,
)
from repro.kernels.reference import ReferenceBackend

_INF = np.inf


class FusedBackend:
    """Buffer-reusing numpy kernels, bitwise-equal to the reference."""

    name = "fused"

    def __init__(self) -> None:
        self._reference = ReferenceBackend()

    def clamp_decisions(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        capacity: float,
        max_charge: float,
        max_discharge: float,
    ) -> FloatArray:
        d = np.asarray(decisions, dtype=float)
        b = np.empty(d.shape[:-1] + (d.shape[-1] + 1,))
        b[..., 0] = initial
        b[..., 1:] = d
        bound = np.empty(b.shape[:-1])
        for h in range(1, b.shape[-1]):
            prev = b[..., h - 1]
            np.subtract(prev, max_discharge, out=bound)
            np.maximum(b[..., h], bound, out=b[..., h])
            np.add(prev, max_charge, out=bound)
            np.minimum(b[..., h], bound, out=b[..., h])
        return b[..., 1:]

    def battery_costs(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        load: FloatArray,
        pv: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        sellback_divisor: float,
        multiplicity: int,
    ) -> FloatArray:
        d = np.asarray(decisions, dtype=float)
        # y = (load + diff(full)) - pv, built in place.
        y = np.empty_like(d)
        np.subtract(d[..., 0], initial, out=y[..., 0])
        np.subtract(d[..., 1:], d[..., :-1], out=y[..., 1:])
        np.add(load, y, out=y)
        np.subtract(y, pv, out=y)
        # total = max(others + multiplicity * y, 0)
        total = np.multiply(y, multiplicity, out=np.empty_like(d))
        np.add(others, total, out=total)
        np.maximum(total, 0.0, out=total)
        # buy = (p * total) * y; sell = ((p / W) * total) * y
        buy = np.multiply(prices, total, out=np.empty_like(d))
        np.multiply(buy, y, out=buy)
        np.multiply(prices / sellback_divisor, total, out=total)
        np.multiply(total, y, out=total)
        cost = np.where(y >= 0, buy, total)
        return np.asarray(cost.sum(axis=-1), dtype=float)

    def dp_backward(
        self,
        cost_table: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        return self._reference.dp_backward(cost_table, level_units, n_states, mask)

    def dp_backward_batch(
        self,
        cost_tables: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        n_games, horizon, _ = cost_tables.shape
        value = np.full((n_games, n_states), _INF)
        value[:, 0] = 0.0
        choices = np.zeros((n_games, horizon, n_states), dtype=np.int16)
        candidate = np.empty((n_games, n_states))
        for h in range(horizon - 1, -1, -1):
            if not mask[h]:
                choices[:, h, :] = 0
                continue
            best = np.full((n_games, n_states), _INF)
            best_choice = np.zeros((n_games, n_states), dtype=np.int16)
            for j, du in enumerate(level_units):
                cost_j = cost_tables[:, h, j][:, None]
                if du == 0:
                    np.add(value, cost_j, out=candidate)
                else:
                    candidate.fill(_INF)
                    if du < n_states:
                        np.add(value[:, :-du], cost_j, out=candidate[:, du:])
                improved = candidate < best
                best[improved] = candidate[improved]
                best_choice[improved] = j
            value, best = best, value
            choices[:, h, :] = best_choice
        return value, choices
