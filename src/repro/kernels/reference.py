"""Reference numpy backend: the historical op sequences, verbatim.

Every kernel here reproduces — operation for operation — the code paths
the golden-master digests were recorded against
(:func:`repro.netmetering.battery.clamp_trajectory_batch`,
:meth:`repro.optimization.battery.BatteryProblem.cost_batch` and the
backward loop of :func:`repro.scheduling.dp.schedule_appliance_table`).
Accelerated backends are validated bitwise against this one.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import (
    BoolArray,
    FloatArray,
    Int16Array,
    IntArray,
    prepend_initial,
)

_INF = np.inf


class ReferenceBackend:
    """Plain numpy kernels matching the seed implementation bit for bit."""

    name = "reference"

    def clamp_decisions(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        capacity: float,
        max_charge: float,
        max_discharge: float,
    ) -> FloatArray:
        b = prepend_initial(np.asarray(decisions, dtype=float), initial)
        b = np.nan_to_num(b, nan=initial, posinf=capacity, neginf=0.0)
        b[..., 0] = initial
        for h in range(1, b.shape[-1]):
            prev = b[..., h - 1]
            lo = np.maximum(0.0, prev - max_discharge)
            hi = np.minimum(capacity, prev + max_charge)
            b[..., h] = np.minimum(np.maximum(b[..., h], lo), hi)
        return b[..., 1:]

    def battery_costs(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        load: FloatArray,
        pv: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        sellback_divisor: float,
        multiplicity: int,
    ) -> FloatArray:
        full = prepend_initial(np.asarray(decisions, dtype=float), initial)
        y = load + np.diff(full, axis=-1) - pv
        total = np.maximum(others + multiplicity * y, 0.0)
        cost = np.where(
            y >= 0,
            prices * total * y,
            (prices / sellback_divisor) * total * y,
        )
        return np.asarray(cost.sum(axis=-1), dtype=float)

    def dp_backward(
        self,
        cost_table: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        horizon = cost_table.shape[0]
        value = np.full(n_states, _INF)
        value[0] = 0.0
        choice = np.zeros((horizon, n_states), dtype=np.int16)
        for h in range(horizon - 1, -1, -1):
            if not mask[h]:
                choice[h, :] = 0
                continue
            best = np.full(n_states, _INF)
            best_choice = np.zeros(n_states, dtype=np.int16)
            for j, du in enumerate(level_units):
                cost_j = cost_table[h, j]
                if not np.isfinite(cost_j):
                    continue
                if du == 0:
                    candidate = value + cost_j
                else:
                    candidate = np.full(n_states, _INF)
                    candidate[du:] = value[:-du] + cost_j if du < n_states else _INF
                improved = candidate < best
                best[improved] = candidate[improved]
                best_choice[improved] = j
            value = best
            choice[h, :] = best_choice
        return value, choice

    def dp_backward_batch(
        self,
        cost_tables: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        n_games, horizon, _ = cost_tables.shape
        values = np.empty((n_games, n_states))
        choices = np.empty((n_games, horizon, n_states), dtype=np.int16)
        for g in range(n_games):
            values[g], choices[g] = self.dp_backward(
                cost_tables[g], level_units, n_states, mask
            )
        return values, choices
