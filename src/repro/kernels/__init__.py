"""Pluggable kernel backends for the scheduling-game hot paths.

Backends register themselves in a process-wide registry; the solver
layers resolve one through :func:`get_backend`.  Resolution order for
the default (``None`` or ``"auto"``):

1. the ``REPRO_BACKEND`` environment variable, when set;
2. the fastest registered accelerated backend (``numba`` when
   importable, else the ``fused`` numpy variant).

Every registered backend is bitwise-identical to ``reference`` on
pipeline inputs (see :mod:`repro.kernels.base`), so backend choice never
changes results — only wall-clock time.  Registering a new backend:

    from repro.kernels import register_backend
    register_backend(MyBackend())

after which it is selectable by name everywhere (``--backend``,
``REPRO_BACKEND``, :class:`repro.core.config.SolverConfig`) and is
automatically picked up by the equivalence test suite.
"""

from __future__ import annotations

import os

from repro.kernels.base import KernelBackend
from repro.kernels.fused import FusedBackend
from repro.kernels.numba_backend import NUMBA_AVAILABLE
from repro.kernels.reference import ReferenceBackend

__all__ = [
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]

ENV_VAR = "REPRO_BACKEND"

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Add (or replace) a backend in the process-wide registry."""
    _REGISTRY[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration-ordered."""
    return tuple(_REGISTRY)


def _auto_backend() -> KernelBackend:
    if "numba" in _REGISTRY:
        return _REGISTRY["numba"]
    return _REGISTRY["fused"]


def get_backend(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend by name.

    ``None`` and ``"auto"`` defer to ``REPRO_BACKEND`` and then to
    auto-detection; an already-constructed backend passes through, so
    call sites can accept either form.
    """
    if name is not None and not isinstance(name, str):
        return name
    if name is None or name == "auto":
        env = os.environ.get(ENV_VAR)
        if env and env != "auto":
            name = env
        else:
            return _auto_backend()
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {sorted(_REGISTRY)}"
        )
    return backend


register_backend(ReferenceBackend())
register_backend(FusedBackend())
if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    from repro.kernels.numba_backend import NumbaBackend

    register_backend(NumbaBackend())
