"""Optional numba JIT backend (registered only when numba is importable).

The kernels are straight scalar-loop transcriptions of the reference op
order, compiled with numba's default IEEE-strict settings (``fastmath``
off, so no FMA contraction or reassociation) — which is what makes the
bitwise contract of :mod:`repro.kernels.base` attainable.  The hosting
container does not ship numba; the backend exists for environments that
do, and the parametrized equivalence suite validates it automatically
wherever it registers.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.kernels.base import (
    BoolArray,
    FloatArray,
    Int16Array,
    IntArray,
)
from repro.kernels.reference import ReferenceBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

NUMBA_AVAILABLE = numba is not None


def _jit(func: Callable[..., Any]) -> Callable[..., Any]:  # pragma: no cover
    assert numba is not None
    return numba.njit(cache=True)(func)


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @_jit
    def _clamp_kernel(
        b: FloatArray, capacity: float, max_charge: float, max_discharge: float
    ) -> None:
        n, width = b.shape
        for i in range(n):
            for h in range(1, width):
                prev = b[i, h - 1]
                lo = max(0.0, prev - max_discharge)
                hi = min(capacity, prev + max_charge)
                b[i, h] = min(max(b[i, h], lo), hi)

    @_jit
    def _cost_kernel(
        d: FloatArray,
        initial: float,
        load: FloatArray,
        pv: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        sell_prices: FloatArray,
        multiplicity: float,
        out: FloatArray,
    ) -> None:
        # Per-slot costs only; the row reduction happens in numpy so the
        # pairwise summation order matches the reference bit for bit.
        n, horizon = d.shape
        for i in range(n):
            prev = initial
            for h in range(horizon):
                y = (load[h] + (d[i, h] - prev)) - pv[h]
                prev = d[i, h]
                total = max(others[h] + multiplicity * y, 0.0)
                if y >= 0:
                    out[i, h] = (prices[h] * total) * y
                else:
                    out[i, h] = (sell_prices[h] * total) * y


class NumbaBackend:
    """JIT-compiled kernels; DP falls back to the reference loops."""

    name = "numba"

    def __init__(self) -> None:  # pragma: no cover - needs numba
        if not NUMBA_AVAILABLE:
            raise RuntimeError("numba is not installed")
        self._reference = ReferenceBackend()

    def clamp_decisions(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        capacity: float,
        max_charge: float,
        max_discharge: float,
    ) -> FloatArray:  # pragma: no cover - needs numba
        d = np.asarray(decisions, dtype=float)
        flat = d.reshape(-1, d.shape[-1])
        b = np.empty((flat.shape[0], flat.shape[1] + 1))
        b[:, 0] = initial
        b[:, 1:] = flat
        _clamp_kernel(b, capacity, max_charge, max_discharge)
        return b[:, 1:].reshape(d.shape)

    def battery_costs(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        load: FloatArray,
        pv: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        sellback_divisor: float,
        multiplicity: int,
    ) -> FloatArray:  # pragma: no cover - needs numba
        d = np.asarray(decisions, dtype=float)
        # The scalar kernel needs per-row (H,) parameters; fall back to
        # the reference for broadcast (grouped) parameter shapes.
        params = (load, pv, others, prices)
        if any(np.asarray(p).ndim != 1 for p in params):
            return self._reference.battery_costs(
                decisions,
                initial=initial,
                load=load,
                pv=pv,
                others=others,
                prices=prices,
                sellback_divisor=sellback_divisor,
                multiplicity=multiplicity,
            )
        flat = d.reshape(-1, d.shape[-1])
        cost = np.empty_like(flat)
        _cost_kernel(
            flat,
            float(initial),
            np.asarray(load, dtype=float),
            np.asarray(pv, dtype=float),
            np.asarray(others, dtype=float),
            np.asarray(prices, dtype=float),
            np.asarray(prices, dtype=float) / sellback_divisor,
            float(multiplicity),
            cost,
        )
        return np.asarray(cost.sum(axis=-1).reshape(d.shape[:-1]), dtype=float)

    def dp_backward(
        self,
        cost_table: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:  # pragma: no cover - needs numba
        return self._reference.dp_backward(cost_table, level_units, n_states, mask)

    def dp_backward_batch(
        self,
        cost_tables: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:  # pragma: no cover - needs numba
        return self._reference.dp_backward_batch(
            cost_tables, level_units, n_states, mask
        )
