"""Kernel backend protocol for the hot numerical paths.

The scheduling game spends essentially all of its time in three array
kernels: projecting cross-entropy battery populations onto the feasible
trajectory set, scoring those populations under the quadratic
net-metering tariff, and the backward dynamic program over appliance
power levels.  This module defines the :class:`KernelBackend` protocol
those kernels are routed through, so alternative implementations (a
fused numpy variant, an optional numba JIT, a future C extension) can be
swapped in via configuration without touching the solver logic.

Bitwise contract
----------------
Every registered backend MUST be bitwise-identical to the reference
backend on the inputs the pipeline produces (finite, box-clipped CE
populations; finite DP cost tables).  The golden-master digests pin the
reference behaviour; the backend equivalence suite
(``tests/test_kernels.py``) enforces the contract for each registered
backend.  A backend that cannot guarantee bit equality (e.g. one built
on FMA-contracting compilers) must not register itself.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int_]
Int16Array = NDArray[np.int16]
BoolArray = NDArray[np.bool_]


@runtime_checkable
class KernelBackend(Protocol):
    """Array kernels behind the batched game solver.

    Shapes use ``H`` for the horizon, ``S`` for the number of DP energy
    states, ``L`` for the number of appliance power levels and a leading
    batch axis of arbitrary size (CE population, population x games, or
    games).
    """

    name: str

    def clamp_decisions(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        capacity: float,
        max_charge: float,
        max_discharge: float,
    ) -> FloatArray:
        """Project battery decision tails onto the reachable set.

        ``decisions`` has shape ``(..., H)``: trajectory tails
        ``(b^2, ..., b^{H+1})`` with the initial charge ``b^1`` pinned to
        ``initial``.  Rows must be finite and (for accelerated backends)
        already clipped to ``[0, capacity]`` — exactly what the CE
        sampler produces.  Returns the projected tails, same shape.
        """
        ...

    def battery_costs(
        self,
        decisions: FloatArray,
        *,
        initial: float,
        load: FloatArray,
        pv: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        sellback_divisor: float,
        multiplicity: int,
    ) -> FloatArray:
        """Customer cost of each battery decision under Eqn. (2).

        ``decisions`` has shape ``(..., H)``; ``load``, ``pv``,
        ``others`` and ``prices`` must broadcast against it.  Returns the
        per-row total cost with the last axis summed out.
        """
        ...

    def dp_backward(
        self,
        cost_table: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        """Backward value recursion of the appliance DP.

        ``cost_table`` has shape ``(H, L)``; returns ``(value, choice)``
        with ``value`` of shape ``(S,)`` (minimal cost to consume exactly
        ``r`` units from slot 0 on) and ``choice`` of shape ``(H, S)``
        (level index chosen at each slot/state).
        """
        ...

    def dp_backward_batch(
        self,
        cost_tables: FloatArray,
        level_units: IntArray,
        n_states: int,
        mask: BoolArray,
    ) -> tuple[FloatArray, Int16Array]:
        """Batched :meth:`dp_backward` over a leading game axis.

        ``cost_tables`` has shape ``(G, H, L)``; returns ``(values,
        choices)`` of shapes ``(G, S)`` and ``(G, H, S)``, row ``g``
        bitwise-identical to ``dp_backward(cost_tables[g], ...)``.
        """
        ...


def prepend_initial(decisions: FloatArray, initial: float) -> FloatArray:
    """Full trajectories ``(b^1, ..., b^{H+1})`` from decision tails."""
    b0 = np.full(decisions.shape[:-1] + (1,), initial)
    return np.concatenate([b0, decisions], axis=-1)
