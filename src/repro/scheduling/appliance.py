"""Appliance task model (Section 2.1 of the paper).

An appliance task ``m`` must consume exactly ``E_m`` kWh, choosing one of a
discrete set of power levels ``X_m`` (kW) in every slot of its permitted
window ``[alpha_m, beta_m]`` and zero outside it.  Slots are assumed to be
one hour long, so a power level of ``x`` kW consumes ``x`` kWh in a slot;
a different slot duration is handled by the scheduler via a multiplicative
factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray


class InfeasibleTaskError(ValueError):
    """Raised when a task cannot meet its energy requirement in its window."""


def _unit_of(values: tuple[float, ...], *, tol: float = 1e-9) -> float:
    """Greatest common divisor of a tuple of non-negative floats.

    Used to discretize energy for the DP scheduler.  Values must be
    (approximately) integer multiples of some unit >= ``tol``.
    """
    unit = 0.0
    for v in values:
        if v < 0:
            raise ValueError(f"negative value {v}")
        if v < tol:
            continue
        if unit == 0.0:  # repro: noqa[FLT001] exact: 0.0 is the "unset" sentinel
            unit = v
        else:
            # Float GCD via math.gcd on a scaled-integer representation.
            scale = 10**6
            a = round(unit * scale)
            b = round(v * scale)
            unit = math.gcd(a, b) / scale
    if unit == 0.0:  # repro: noqa[FLT001] exact: sentinel still unset
        raise ValueError("all values are zero; no unit defined")
    return unit


@dataclass(frozen=True)
class ApplianceTask:
    """A schedulable household task.

    Parameters
    ----------
    name:
        Human-readable appliance label (e.g. ``"dishwasher"``).
    power_levels:
        Allowed power levels in kW.  Must contain 0 (the appliance can
        idle inside its window) and be strictly increasing.
    energy_kwh:
        Required total energy consumption ``E_m``.
    earliest_start:
        First slot (inclusive) in which the appliance may run, ``alpha_m``.
    deadline:
        Last slot (inclusive) by which the task must finish, ``beta_m``.
    """

    name: str
    power_levels: tuple[float, ...]
    energy_kwh: float
    earliest_start: int
    deadline: int

    def __post_init__(self) -> None:
        levels = tuple(float(p) for p in self.power_levels)
        object.__setattr__(self, "power_levels", levels)
        if len(levels) < 2:
            raise ValueError(f"{self.name}: need at least two power levels (incl. 0)")
        if levels[0] != 0.0:  # repro: noqa[FLT001] exact: spec requires literal 0
            raise ValueError(f"{self.name}: power_levels must start with 0")
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError(f"{self.name}: power_levels must be strictly increasing")
        if self.energy_kwh <= 0:
            raise ValueError(f"{self.name}: energy_kwh must be > 0, got {self.energy_kwh}")
        if self.earliest_start < 0:
            raise ValueError(f"{self.name}: earliest_start must be >= 0")
        if self.deadline < self.earliest_start:
            raise ValueError(
                f"{self.name}: deadline {self.deadline} before "
                f"earliest_start {self.earliest_start}"
            )

    @property
    def max_power(self) -> float:
        """Largest selectable power level in kW."""
        return self.power_levels[-1]

    @property
    def window_slots(self) -> int:
        """Number of slots in the permitted window (inclusive bounds)."""
        return self.deadline - self.earliest_start + 1

    def window_mask(self, horizon: int) -> NDArray[np.bool_]:
        """Boolean mask of length ``horizon``: True inside the window."""
        if self.deadline >= horizon:
            raise InfeasibleTaskError(
                f"{self.name}: deadline {self.deadline} outside horizon {horizon}"
            )
        mask = np.zeros(horizon, dtype=bool)
        mask[self.earliest_start : self.deadline + 1] = True
        return mask

    def energy_unit(self, *, slot_hours: float = 1.0) -> float:
        """Discretization unit (kWh) shared by all levels and ``E_m``."""
        per_slot_energies = tuple(p * slot_hours for p in self.power_levels)
        return _unit_of(per_slot_energies + (self.energy_kwh,))

    def check_feasible(self, horizon: int, *, slot_hours: float = 1.0) -> None:
        """Raise :class:`InfeasibleTaskError` if the requirement is unreachable.

        Checks the capacity bound (window x max power) and the
        discretization bound (``E_m`` must be a multiple of the unit).
        """
        if self.deadline >= horizon:
            raise InfeasibleTaskError(
                f"{self.name}: deadline {self.deadline} outside horizon {horizon}"
            )
        capacity = self.window_slots * self.max_power * slot_hours
        if self.energy_kwh > capacity + 1e-9:
            raise InfeasibleTaskError(
                f"{self.name}: requires {self.energy_kwh} kWh but window capacity "
                f"is only {capacity} kWh"
            )
        unit = self.energy_unit(slot_hours=slot_hours)
        ratio = self.energy_kwh / unit
        if abs(ratio - round(ratio)) > 1e-6:
            raise InfeasibleTaskError(
                f"{self.name}: energy {self.energy_kwh} is not a multiple of the "
                f"discretization unit {unit}"
            )


@dataclass(frozen=True)
class ApplianceSchedule:
    """A realized per-slot power assignment for one task."""

    task: ApplianceTask
    power: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "power", tuple(float(p) for p in self.power))

    @property
    def load(self) -> NDArray[np.float64]:
        """Per-slot power draw as an array (kW)."""
        return np.asarray(self.power, dtype=float)

    def energy(self, *, slot_hours: float = 1.0) -> float:
        """Total energy consumed by the schedule in kWh."""
        return float(np.sum(self.load) * slot_hours)

    def validate(self, *, slot_hours: float = 1.0, tol: float = 1e-6) -> None:
        """Raise ``ValueError`` if the schedule violates the task constraints."""
        horizon = len(self.power)
        mask = self.task.window_mask(horizon)
        levels = set(self.task.power_levels)
        for h, p in enumerate(self.power):
            if not mask[h] and p != 0.0:  # repro: noqa[FLT001] exact: off means 0.0
                raise ValueError(
                    f"{self.task.name}: nonzero power {p} outside window at slot {h}"
                )
            if min(abs(p - lv) for lv in levels) > tol:
                raise ValueError(
                    f"{self.task.name}: power {p} at slot {h} is not an allowed level"
                )
        if abs(self.energy(slot_hours=slot_hours) - self.task.energy_kwh) > tol:
            raise ValueError(
                f"{self.task.name}: schedule energy {self.energy(slot_hours=slot_hours)} "
                f"!= requirement {self.task.energy_kwh}"
            )
