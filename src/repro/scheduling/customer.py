"""Customer model: an appliance fleet plus a PV panel and a battery.

A :class:`Customer` is the static description (tasks, battery spec, PV
forecast); a :class:`CustomerState` is one strategy profile in the game —
an appliance schedule per task plus a battery trajectory — from which the
load, trading and cost follow deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import BatteryConfig
from repro.netmetering.trading import trading_amounts
from repro.scheduling.appliance import ApplianceSchedule, ApplianceTask


@dataclass(frozen=True)
class Customer:
    """Static description of one household (or household archetype).

    Parameters
    ----------
    customer_id:
        Stable identifier within the community.
    tasks:
        The appliance tasks to be scheduled each horizon.
    battery:
        Battery capacity/rate spec; a zero-capacity spec models a customer
        without storage.
    pv:
        Forecast PV generation per slot in kWh, shape ``(H,)``.  All-zero
        for customers without panels.
    base_load:
        Non-schedulable consumption per slot in kWh (refrigeration,
        lighting, cooking at fixed times).  Empty tuple means all-zero.
    """

    customer_id: int
    tasks: tuple[ApplianceTask, ...]
    battery: BatteryConfig
    pv: tuple[float, ...]
    base_load: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        object.__setattr__(self, "pv", tuple(float(v) for v in self.pv))
        if self.customer_id < 0:
            raise ValueError(f"customer_id must be >= 0, got {self.customer_id}")
        if not self.tasks:
            raise ValueError(f"customer {self.customer_id}: needs at least one task")
        if any(v < 0 for v in self.pv):
            raise ValueError(f"customer {self.customer_id}: PV generation must be >= 0")
        horizon = len(self.pv)
        if not self.base_load:
            object.__setattr__(self, "base_load", tuple(0.0 for _ in range(horizon)))
        else:
            object.__setattr__(
                self, "base_load", tuple(float(v) for v in self.base_load)
            )
        if len(self.base_load) != horizon:
            raise ValueError(
                f"customer {self.customer_id}: base_load length "
                f"{len(self.base_load)} != horizon {horizon}"
            )
        if any(v < 0 for v in self.base_load):
            raise ValueError(f"customer {self.customer_id}: base_load must be >= 0")
        for task in self.tasks:
            task.check_feasible(horizon)

    @property
    def horizon(self) -> int:
        return len(self.pv)

    @property
    def pv_array(self) -> NDArray[np.float64]:
        return np.asarray(self.pv, dtype=float)

    @property
    def base_load_array(self) -> NDArray[np.float64]:
        return np.asarray(self.base_load, dtype=float)

    @property
    def total_task_energy(self) -> float:
        """Total appliance energy requirement in kWh."""
        return sum(task.energy_kwh for task in self.tasks)

    @property
    def has_net_metering(self) -> bool:
        """True when the customer can generate or store energy."""
        return self.battery.capacity_kwh > 0 or any(v > 0 for v in self.pv)

    def without_net_metering(self) -> "Customer":
        """A copy with PV and battery removed (the unaware-prediction model)."""
        return replace(
            self,
            battery=BatteryConfig(capacity_kwh=0.0, initial_kwh=0.0),
            pv=tuple(0.0 for _ in self.pv),
        )


@dataclass(frozen=True)
class CustomerState:
    """One strategy profile for a customer.

    ``battery_decision`` is the trajectory tail ``(b^2, ..., b^{H+1})``;
    the initial charge comes from the customer's battery spec.
    """

    customer: Customer
    schedules: tuple[ApplianceSchedule, ...]
    battery_decision: tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedules", tuple(self.schedules))
        object.__setattr__(
            self, "battery_decision", tuple(float(v) for v in self.battery_decision)
        )
        if len(self.schedules) != len(self.customer.tasks):
            raise ValueError(
                f"customer {self.customer.customer_id}: {len(self.schedules)} schedules "
                f"for {len(self.customer.tasks)} tasks"
            )
        if len(self.battery_decision) != self.customer.horizon:
            raise ValueError(
                f"customer {self.customer.customer_id}: battery decision length "
                f"{len(self.battery_decision)} != horizon {self.customer.horizon}"
            )

    @property
    def load(self) -> NDArray[np.float64]:
        """Household consumption per slot ``l_n^h`` in kWh.

        The sum of the non-schedulable base load and every appliance
        schedule (hourly slots: kW power levels are kWh per slot).
        """
        total = self.customer.base_load_array.copy()
        for schedule in self.schedules:
            total += schedule.load
        return total

    @property
    def battery_trajectory(self) -> NDArray[np.float64]:
        """Full trajectory ``(b^1, ..., b^{H+1})`` including initial charge."""
        return np.concatenate(
            ([self.customer.battery.initial_kwh], np.asarray(self.battery_decision))
        )

    @property
    def trading(self) -> NDArray[np.float64]:
        """Grid trading amounts ``y_n^h`` implied by Eqn. (1)."""
        return trading_amounts(self.load, self.customer.pv_array, self.battery_trajectory)

    def with_schedule(self, task_index: int, schedule: ApplianceSchedule) -> "CustomerState":
        """Replace one appliance schedule."""
        if not 0 <= task_index < len(self.schedules):
            raise IndexError(f"task_index {task_index} out of range")
        schedules = list(self.schedules)
        schedules[task_index] = schedule
        return replace(self, schedules=tuple(schedules))

    def with_battery(self, decision: ArrayLike) -> "CustomerState":
        """Replace the battery decision vector."""
        return replace(self, battery_decision=tuple(np.asarray(decision, dtype=float)))
