"""Lockstep batched solver for independent scheduling games.

The detection pipeline repeatedly solves the *same community* under
*different guideline-price vectors* with the *same solver seed*: the
calibration Monte-Carlo checks ~30 attacked prices against one day, the
scenario loop simulates every meter's received price, and sweeps scan
whole price grids.  Algorithm 1 is Gauss-Seidel within one game — each
customer best-responds against totals already updated this round — so
customers cannot be batched inside a round without changing results.
Independent *games*, however, march through identical control flow:
per-customer CE seeds are fixed functions of customer identity, and the
round-order generator draws the same permutations for every game sharing
a seed.  This module therefore advances ``G`` games in lockstep, fusing
every array operation across a leading game axis while keeping all
accept/reject decisions per game.

Bitwise contract: ``solve_games(community, [p1, ..., pG], ...)[g]`` is
identical — every schedule, battery trajectory, round count and residual
— to ``SchedulingGame(community, pg, ...).solve(rng=default_rng(seed))``.
The batched reductions used (row-wise ``sum``/``mean``/``std``/
``argsort`` and elementwise broadcasting) are exact per-row matches of
their one-game counterparts; ``tests/test_batched_game.py`` enforces the
contract end to end.

Population layout: CE populations are ``(games, K, H)`` (population x
games x slots collapsed onto kernels as ``(games * K, H)``); DP tables
are ``(games, H, levels)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import GameConfig
from repro.kernels import KernelBackend, get_backend
from repro.netmetering.cost import NetMeteringCostModel
from repro.obs.trace import TRACER
from repro.perf.counters import PERF
from repro.scheduling.appliance import ApplianceSchedule, ApplianceTask
from repro.scheduling.customer import Customer, CustomerState
from repro.scheduling.dp import schedule_appliance_tables
from repro.scheduling.game import Community, GameResult
from repro.tariffs.model import TariffCostModel, tariff_cost_terms

if TYPE_CHECKING:
    from repro.tariffs.base import Tariff

FloatArray = NDArray[np.float64]

_CE_STD_FLOOR = 1e-3
"""Must match :class:`repro.optimization.cross_entropy.CrossEntropyOptimizer`."""


def _cost_per_slot(
    trading: FloatArray,
    others: FloatArray,
    prices: FloatArray,
    sellback_divisor: float,
    multiplicity: int,
) -> FloatArray:
    """Row-batched :meth:`NetMeteringCostModel.customer_cost_per_slot`."""
    total = np.maximum(others + multiplicity * trading, 0.0)
    return np.asarray(
        np.where(
            trading >= 0,
            prices * total * trading,
            (prices / sellback_divisor) * total * trading,
        )
    )


def _marginal_tables(
    base_trading: FloatArray,
    others: FloatArray,
    levels: FloatArray,
    prices: FloatArray,
    sellback_divisor: float,
    multiplicity: int,
    slot_hours: float,
) -> FloatArray:
    """Row-batched :meth:`NetMeteringCostModel.marginal_cost_table`."""
    lv = np.asarray(levels, dtype=float) * slot_hours
    base_cost = _cost_per_slot(
        base_trading, others, prices, sellback_divisor, multiplicity
    )
    y_new = base_trading[:, :, None] + lv[None, None, :]
    p = prices[:, :, None]
    total = np.maximum(others[:, :, None] + multiplicity * y_new, 0.0)
    cost_new = np.where(
        y_new >= 0,
        p * total * y_new,
        (p / sellback_divisor) * total * y_new,
    )
    return np.asarray(cost_new - base_cost[:, :, None])


def _tariff_cost_per_slot(
    trading: FloatArray,
    others: FloatArray,
    buy: FloatArray,
    sell: FloatArray,
    export_cap: float | None,
    paper_literal: bool,
    multiplicity: int,
) -> FloatArray:
    """Row-batched :meth:`TariffCostModel.customer_cost_per_slot`."""
    return np.asarray(
        tariff_cost_terms(
            trading,
            others,
            buy_rates=buy,
            sell_rates=sell,
            export_cap_kwh=export_cap,
            paper_literal=paper_literal,
            multiplicity=multiplicity,
        )
    )


def _tariff_marginal_tables(
    base_trading: FloatArray,
    others: FloatArray,
    levels: FloatArray,
    buy: FloatArray,
    sell: FloatArray,
    export_cap: float | None,
    paper_literal: bool,
    multiplicity: int,
    slot_hours: float,
) -> FloatArray:
    """Row-batched :meth:`TariffCostModel.marginal_cost_table`."""
    lv = np.asarray(levels, dtype=float) * slot_hours
    base_cost = _tariff_cost_per_slot(
        base_trading, others, buy, sell, export_cap, paper_literal, multiplicity
    )
    y_new = base_trading[:, :, None] + lv[None, None, :]
    cost_new = tariff_cost_terms(
        y_new,
        others[:, :, None],
        buy_rates=buy[:, :, None],
        sell_rates=sell[:, :, None],
        export_cap_kwh=export_cap,
        paper_literal=paper_literal,
        multiplicity=multiplicity,
    )
    return np.asarray(cost_new - base_cost[:, :, None])


class _LockstepState:
    """Strategy arrays for one archetype across all games in the batch."""

    def __init__(self, customer: Customer, n_games: int) -> None:
        self.customer = customer
        horizon = customer.horizon
        self.power = np.zeros((n_games, len(customer.tasks), horizon))
        self.battery = np.zeros((n_games, horizon))

    def loads(self, rows: NDArray[np.int_]) -> FloatArray:
        """Per-game household load, mirroring ``CustomerState.load``."""
        total = np.broadcast_to(
            self.customer.base_load_array, (rows.size, self.customer.horizon)
        ).copy()
        for t in range(len(self.customer.tasks)):
            total += self.power[rows, t, :]
        return total

    def tradings(self, rows: NDArray[np.int_]) -> FloatArray:
        """Per-game trading amounts, mirroring ``CustomerState.trading``."""
        load = self.loads(rows)
        b0 = np.full(
            (rows.size, 1), self.customer.battery.initial_kwh
        )
        full = np.concatenate([b0, self.battery[rows]], axis=1)
        return np.asarray(
            load + np.diff(full, axis=1) - self.customer.pv_array
        )

    def state_for(self, game: int) -> CustomerState:
        """Materialize one game's strategy as a ``CustomerState``."""
        schedules = tuple(
            ApplianceSchedule(task=task, power=tuple(self.power[game, t]))
            for t, task in enumerate(self.customer.tasks)
        )
        return CustomerState(
            customer=self.customer,
            schedules=schedules,
            battery_decision=tuple(self.battery[game]),
        )


class LockstepGameSolver:
    """Solve ``G`` independent games over one community in lockstep.

    See the module docstring for the batching argument; construction
    mirrors :class:`~repro.scheduling.game.SchedulingGame` per game.
    """

    def __init__(
        self,
        community: Community,
        price_vectors: Sequence[ArrayLike],
        *,
        sellback_divisor: float = 2.0,
        config: GameConfig | None = None,
        backend: KernelBackend | str | None = None,
        tariff: "Tariff | None" = None,
    ) -> None:
        if not price_vectors:
            raise ValueError("need at least one price vector")
        self.community = community
        self.config = config if config is not None else GameConfig()
        self.backend = get_backend(backend)
        self.slot_hours = 1.0
        self.sellback_divisor = float(sellback_divisor)
        self.tariff = tariff
        horizon = community.horizon
        prices = np.stack(
            [np.asarray(p, dtype=float) for p in price_vectors]
        )
        if prices.shape != (len(price_vectors), horizon):
            raise ValueError(
                f"price vectors must each have shape ({horizon},), "
                f"got stacked shape {prices.shape}"
            )
        # Per-game cost models run the same validation as the one-game
        # solver (finite, non-negative prices) and keep the scalar paths
        # available for acceptance bookkeeping.
        if tariff is None:
            self.cost_models: list[NetMeteringCostModel | TariffCostModel] = [
                NetMeteringCostModel(
                    prices=tuple(p), sellback_divisor=self.sellback_divisor
                )
                for p in prices
            ]
        else:
            self.cost_models = [
                tariff.cost_model(p, sellback_divisor=self.sellback_divisor)
                for p in prices
            ]
        first = self.cost_models[0]
        if isinstance(first, NetMeteringCostModel) and not first.paper_literal:
            # Flat net metering (with or without an explicit tariff):
            # keep the scalar-divisor formulas and the kernel battery
            # fast path.  The tariff may pin its own divisor, so take
            # it from the built model rather than the argument.
            self.sellback_divisor = float(first.sellback_divisor)
            self._tariff_rates: tuple[FloatArray, FloatArray] | None = None
            self._export_cap: float | None = None
            self._paper_literal = False
        else:
            # Generalized path: stack per-game rate rows once; every
            # costing site then shares the same pure-numpy formula the
            # one-game TariffCostModel evaluates row by row.
            models = [
                m
                if isinstance(m, TariffCostModel)
                else TariffCostModel.from_net_metering(m)
                for m in self.cost_models
            ]
            self._tariff_rates = (
                np.stack([m.price_array for m in models]),
                np.stack([m.sell_array for m in models]),
            )
            self._export_cap = models[0].export_cap_kwh
            self._paper_literal = models[0].paper_literal
        # The import-side rates drive the greedy warm start (identical
        # to the guideline prices when no tariff reshapes them).
        self.greedy_prices = np.stack(
            [m.price_array for m in self.cost_models]
        )
        self.prices = prices
        self.n_games = prices.shape[0]
        self._jitter_tables: dict[tuple[int, int], FloatArray] = {}
        self._level_arrays: dict[tuple[int, int], FloatArray] = {}
        self._slot_index = np.arange(horizon)

    # ------------------------------------------------------------------
    # Cached static tables (identical to SchedulingGame._task_tables)
    # ------------------------------------------------------------------
    def _task_tables(
        self, customer: Customer, index: int
    ) -> tuple[FloatArray, FloatArray]:
        key = (customer.customer_id, index)
        jitter = self._jitter_tables.get(key)
        if jitter is None:
            task = customer.tasks[index]
            levels = np.asarray(task.power_levels)
            jitter_rng = np.random.default_rng(
                (customer.customer_id * 1_000_003 + index) % (2**32)
            )
            jitter = jitter_rng.uniform(
                0.0, 1e-6, size=(self.community.horizon, levels.size)
            )
            self._jitter_tables[key] = jitter
            self._level_arrays[key] = levels
        return jitter, self._level_arrays[key]

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def _initial_states(
        self, warm_starts: Sequence[GameResult | None]
    ) -> list[_LockstepState]:
        cold = np.array(
            [g for g in range(self.n_games) if warm_starts[g] is None], dtype=int
        )
        states = []
        for a, customer in enumerate(self.community.customers):
            state = _LockstepState(customer, self.n_games)
            if cold.size:
                for t, task in enumerate(customer.tasks):
                    levels = np.asarray(task.power_levels)
                    tables = (
                        self.greedy_prices[cold][:, :, None]
                        * levels[None, None, :]
                        * self.slot_hours
                    )
                    schedules, _ = schedule_appliance_tables(
                        task,
                        tables,
                        slot_hours=self.slot_hours,
                        backend=self.backend,
                    )
                    for i, g in enumerate(cold):
                        state.power[g, t, :] = schedules[i].load
                state.battery[cold] = customer.battery.initial_kwh
            for g in range(self.n_games):
                warm = warm_starts[g]
                if warm is None:
                    continue
                warm_state = warm.states[a]
                for t in range(len(customer.tasks)):
                    state.power[g, t, :] = warm_state.schedules[t].load
                state.battery[g] = np.asarray(
                    warm_state.battery_decision, dtype=float
                )
            states.append(state)
        return states

    # ------------------------------------------------------------------
    # Batched CE battery step
    # ------------------------------------------------------------------
    def _ce_battery(
        self,
        customer: Customer,
        load: FloatArray,
        others: FloatArray,
        prices: FloatArray,
        x0: FloatArray,
        multiplicity: int,
        std_scales: FloatArray,
        tariff_rates: tuple[FloatArray, FloatArray] | None,
    ) -> tuple[FloatArray, FloatArray]:
        """Batched CE over battery trajectories; one game per row.

        Mirrors :meth:`CrossEntropyOptimizer.minimize` exactly per row;
        each game draws from its own freshly seeded generator (the same
        per-customer deterministic seed the one-game path uses), so the
        draw streams are identical to ``G`` sequential optimizations.
        Returns ``(best_x, best_f)``.
        """
        spec = customer.battery
        cfg = self.config
        n_games, horizon = x0.shape
        backend = self.backend
        lower = np.zeros(horizon)
        upper = np.full(horizon, spec.capacity_kwh)
        span = upper - lower
        pv = customer.pv_array
        max_charge = spec.max_charge_kw * self.slot_hours
        max_discharge = spec.max_discharge_kw * self.slot_hours

        def project(decisions: FloatArray) -> FloatArray:
            flat = decisions.reshape(-1, horizon)
            out = backend.clamp_decisions(
                flat,
                initial=spec.initial_kwh,
                capacity=spec.capacity_kwh,
                max_charge=max_charge,
                max_discharge=max_discharge,
            )
            return np.asarray(out.reshape(decisions.shape))

        def score(decisions: FloatArray, rows: NDArray[np.int_]) -> FloatArray:
            grouped = decisions.ndim == 3
            expand = (lambda v: v[:, None, :]) if grouped else (lambda v: v)
            if tariff_rates is None:
                return backend.battery_costs(
                    decisions,
                    initial=spec.initial_kwh,
                    load=expand(load[rows]),
                    pv=pv,
                    others=expand(others[rows]),
                    prices=expand(prices[rows]),
                    sellback_divisor=self.sellback_divisor,
                    multiplicity=multiplicity,
                )
            # Generalized tariffs score through the same pure-numpy
            # formula the one-game TariffCostModel.battery_costs uses —
            # identical on every kernel backend by construction.
            buy_rows, sell_rows = tariff_rates
            start = np.full(decisions.shape[:-1] + (1,), spec.initial_kwh)
            trajectory = np.concatenate([start, decisions], axis=-1)
            trading = expand(load[rows]) + np.diff(trajectory, axis=-1) - pv
            cost = tariff_cost_terms(
                trading,
                expand(others[rows]),
                buy_rates=expand(buy_rows[rows]),
                sell_rates=expand(sell_rows[rows]),
                export_cap_kwh=self._export_cap,
                paper_literal=self._paper_literal,
                multiplicity=multiplicity,
            )
            return np.asarray(cost.sum(axis=-1))

        mean = np.clip(x0, lower, upper)
        std = np.maximum(span / 4.0 * std_scales[:, None], _CE_STD_FLOOR)
        all_rows = np.arange(n_games)
        start = project(mean.copy())
        start_scores = score(start, all_rows)
        best_x = start.copy()
        best_f = np.where(np.isfinite(start_scores), start_scores, np.inf)

        rngs = [
            # Lockstep contract: every game replays the standalone
            # per-customer CE stream bit-for-bit.
            np.random.default_rng(customer.customer_id + 7919)  # repro: noqa[SEED003]
            for _ in range(n_games)
        ]
        n_iterations = np.zeros(n_games, dtype=int)
        alive = all_rows
        span_id = TRACER.begin(
            "ce.minimize",
            category="optimization",
            parent_id=TRACER.current_span_id,
            dimension=horizon,
            n_samples=cfg.ce_samples,
            games=n_games,
        )
        for _ in range(cfg.ce_iterations):
            if not alive.size:
                break
            samples = np.empty((alive.size, cfg.ce_samples, horizon))
            for i, g in enumerate(alive):
                samples[i] = rngs[g].normal(
                    mean[g], std[g], size=(cfg.ce_samples, horizon)
                )
            np.clip(samples, lower, upper, out=samples)
            samples = project(samples)
            scores = score(samples, alive)
            PERF.add("ce.evaluations", cfg.ce_samples * alive.size)
            scores = np.where(np.isfinite(scores), scores, np.inf)

            elite_idx = np.argsort(scores, axis=1)[:, : cfg.ce_elites]
            elites = np.take_along_axis(samples, elite_idx[:, :, None], axis=1)
            first = elite_idx[:, 0]
            first_scores = scores[np.arange(alive.size), first]
            for i, g in enumerate(alive):
                if first_scores[i] < best_f[g]:
                    best_f[g] = float(first_scores[i])
                    best_x[g] = samples[i, first[i]].copy()
            n_iterations[alive] += 1

            new_mean = elites.mean(axis=1)
            new_std = elites.std(axis=1)
            mean[alive] = cfg.ce_smoothing * new_mean + (1 - cfg.ce_smoothing) * mean[alive]
            std[alive] = cfg.ce_smoothing * new_std + (1 - cfg.ce_smoothing) * std[alive]
            done = np.all(std[alive] < _CE_STD_FLOOR, axis=1)
            alive = alive[~done]
        TRACER.end(span_id)
        for n in n_iterations:
            PERF.observe("ce.iterations", int(n))
        if not np.all(np.isfinite(best_f)):
            raise RuntimeError(
                "cross-entropy optimization never found a finite objective value"
            )
        return best_x, best_f

    # ------------------------------------------------------------------
    # Batched best response
    # ------------------------------------------------------------------
    def _schedule_costs(
        self, tables: FloatArray, levels: FloatArray, power: FloatArray
    ) -> FloatArray:
        """Batched ``SchedulingGame._schedule_cost``: per-game sequential sum."""
        idx = np.searchsorted(levels, power.reshape(-1)).reshape(power.shape)
        picked = np.take_along_axis(tables, idx[:, :, None], axis=2)[:, :, 0]
        costs = np.empty(power.shape[0])
        for i in range(power.shape[0]):
            total = 0.0
            for value in picked[i].tolist():
                total += value
            costs[i] = total
        return costs

    def _best_response(
        self,
        state: _LockstepState,
        rows: NDArray[np.int_],
        others: FloatArray,
        *,
        multiplicity: int,
        hysteresis_scale: float,
        ce_std_scales: FloatArray,
    ) -> None:
        """One batched inner-loop pass; updates ``state`` rows in place."""
        threshold_rate = self.config.hysteresis * hysteresis_scale
        customer = state.customer
        prices = self.prices[rows]
        if self._tariff_rates is None:
            rate_rows = None
        else:
            rate_rows = (
                self._tariff_rates[0][rows],
                self._tariff_rates[1][rows],
            )

        def costs_per_slot(trading: FloatArray) -> FloatArray:
            if rate_rows is None:
                return _cost_per_slot(
                    trading, others, prices, self.sellback_divisor, multiplicity
                )
            return _tariff_cost_per_slot(
                trading,
                others,
                rate_rows[0],
                rate_rows[1],
                self._export_cap,
                self._paper_literal,
                multiplicity,
            )

        for _ in range(self.config.inner_iterations):
            trading = state.tradings(rows)
            per_slot = costs_per_slot(trading)
            reference = np.abs(per_slot.sum(axis=1)) + 1e-9
            threshold = threshold_rate * reference
            for index, task in enumerate(customer.tasks):
                jitter, levels = self._task_tables(customer, index)
                trading = state.tradings(rows)
                base_trading = (
                    trading - state.power[rows, index, :] * self.slot_hours
                )
                if rate_rows is None:
                    tables = _marginal_tables(
                        base_trading,
                        others,
                        levels,
                        prices,
                        self.sellback_divisor,
                        multiplicity,
                        self.slot_hours,
                    )
                else:
                    tables = _tariff_marginal_tables(
                        base_trading,
                        others,
                        levels,
                        rate_rows[0],
                        rate_rows[1],
                        self._export_cap,
                        self._paper_literal,
                        multiplicity,
                        self.slot_hours,
                    )
                tables = tables + jitter[None, :, :]
                tables[:, :, 0] = 0.0  # idling stays exactly free
                schedules, optimal_costs = schedule_appliance_tables(
                    task, tables, slot_hours=self.slot_hours, backend=self.backend
                )
                current_costs = self._schedule_costs(
                    tables, levels, state.power[rows, index, :]
                )
                improvements = current_costs - optimal_costs
                for i, g in enumerate(rows):
                    if improvements[i] > threshold[i]:
                        state.power[g, index, :] = schedules[i].load
            if customer.battery.capacity_kwh > 0:
                load = state.loads(rows)
                x0 = state.battery[rows]
                best_x, best_f = self._ce_battery(
                    customer,
                    load,
                    others,
                    prices,
                    x0,
                    multiplicity,
                    ce_std_scales,
                    rate_rows,
                )
                current_trading = state.tradings(rows)
                current_costs = costs_per_slot(current_trading).sum(axis=1)
                improvements = current_costs - best_f
                for i, g in enumerate(rows):
                    if improvements[i] > threshold[i]:
                        state.battery[g] = best_x[i]

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------
    def solve(
        self,
        *,
        seed: int = 0,
        warm_starts: Sequence[GameResult | None] | None = None,
        ce_std_scale: float = 1.0,
    ) -> list[GameResult]:
        """Run Algorithm 1 for every game of the batch.

        ``warm_starts[g]``, when given, replaces game ``g``'s greedy
        initial states (exactly like ``SchedulingGame.solve``'s
        ``warm_start``) and applies ``ce_std_scale`` to that game's CE
        sampling density.
        """
        n_games = self.n_games
        if warm_starts is None:
            warm_starts = [None] * n_games
        if len(warm_starts) != n_games:
            raise ValueError(
                f"{len(warm_starts)} warm starts for {n_games} games"
            )
        for warm in warm_starts:
            if warm is not None and len(warm.states) != len(
                self.community.customers
            ):
                raise ValueError(
                    f"warm start has {len(warm.states)} archetype states "
                    f"for {len(self.community.customers)} archetypes"
                )
        ce_scales = np.array(
            [ce_std_scale if w is not None else 1.0 for w in warm_starts]
        )

        states = self._initial_states(warm_starts)
        counts = self.community.counts
        tradings = [
            s.tradings(np.arange(n_games)) for s in states
        ]
        total = np.zeros((n_games, self.community.horizon))
        for y, count in zip(tradings, counts):
            total += count * y

        rngs = [np.random.default_rng(seed) for _ in range(n_games)]  # repro: noqa[SEED003] lockstep contract: identical per-game streams by design
        residuals: list[list[float]] = [[] for _ in range(n_games)]
        rounds = np.zeros(n_games, dtype=int)
        converged = np.zeros(n_games, dtype=bool)
        active = np.arange(n_games)

        for round_no in range(1, self.config.max_rounds + 1):
            if not active.size:
                break
            orders = [rngs[g].permutation(len(states)) for g in active]
            order = orders[0]
            for other in orders[1:]:
                if not np.array_equal(order, other):
                    raise AssertionError(
                        "lockstep games disagree on round order; "
                        "all games must share one solver seed"
                    )
            max_delta = np.zeros(active.size)
            with TRACER.span(
                "game.round", round=round_no, games=int(active.size)
            ):
                for index in order:
                    state, count = states[index], counts[index]
                    old_trading = tradings[index][active]
                    others = total[active] - count * old_trading
                    with TRACER.span(
                        "game.customer",
                        customer=int(index),
                        multiplicity=int(count),
                    ):
                        self._best_response(
                            state,
                            active,
                            others,
                            multiplicity=count,
                            hysteresis_scale=float(round_no),
                            ce_std_scales=ce_scales[active],
                        )
                    new_trading = state.tradings(active)
                    delta = np.max(np.abs(new_trading - old_trading), axis=1)
                    max_delta = np.maximum(max_delta, delta)
                    total[active] = total[active] + count * (
                        new_trading - old_trading
                    )
                    tradings[index][active] = new_trading
            for i, g in enumerate(active):
                residuals[g].append(float(max_delta[i]))
                rounds[g] = round_no
            done = max_delta < self.config.convergence_tol
            converged[active[done]] = True
            active = active[~done]

        results = []
        for g in range(n_games):
            PERF.add("game.solves")
            PERF.add("game.rounds", int(rounds[g]))
            PERF.observe("game.rounds", int(rounds[g]))
            results.append(
                GameResult(
                    states=tuple(s.state_for(g) for s in states),
                    counts=counts,
                    rounds=int(rounds[g]),
                    converged=bool(converged[g]),
                    residuals=tuple(residuals[g]),
                )
            )
        return results


def solve_games(
    community: Community,
    price_vectors: Sequence[ArrayLike],
    *,
    sellback_divisor: float = 2.0,
    config: GameConfig | None = None,
    seed: int = 0,
    backend: KernelBackend | str | None = None,
    warm_starts: Sequence[GameResult | None] | None = None,
    ce_std_scale: float = 1.0,
    tariff: "Tariff | None" = None,
) -> list[GameResult]:
    """Solve independent games over one community in a lockstep batch.

    Entry ``g`` of the result is bitwise-identical to::

        SchedulingGame(
            community, price_vectors[g],
            sellback_divisor=sellback_divisor, config=config,
            tariff=tariff,
        ).solve(
            rng=np.random.default_rng(seed),
            warm_start=warm_starts[g],
            ce_std_scale=ce_std_scale if warm_starts[g] else 1.0,
        )

    while sharing every array operation across the batch.
    """
    solver = LockstepGameSolver(
        community,
        price_vectors,
        sellback_divisor=sellback_divisor,
        config=config,
        backend=backend,
        tariff=tariff,
    )
    return solver.solve(
        seed=seed, warm_starts=warm_starts, ce_std_scale=ce_std_scale
    )
