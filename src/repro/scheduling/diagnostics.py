"""Equilibrium diagnostics for the scheduling game.

The iterative best-response loop terminates at an approximate
equilibrium; these diagnostics quantify *how* approximate:

- :func:`nash_gap` — the largest cost improvement any single customer
  could still realize by unilaterally re-optimizing (the epsilon of the
  epsilon-Nash equilibrium);
- :func:`cost_breakdown` — per-archetype realized costs, for inspecting
  who pays what at the fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GameConfig
from repro.scheduling.game import GameResult, SchedulingGame


@dataclass(frozen=True)
class NashGapReport:
    """Unilateral-improvement audit of a game outcome."""

    per_customer_gap: tuple[float, ...]
    per_customer_cost: tuple[float, ...]

    @property
    def max_gap(self) -> float:
        """The equilibrium's epsilon: the largest remaining improvement."""
        return max(self.per_customer_gap)

    @property
    def max_relative_gap(self) -> float:
        """Largest improvement as a fraction of that customer's cost."""
        gaps = []
        for gap, cost in zip(self.per_customer_gap, self.per_customer_cost):
            denominator = max(abs(cost), 1e-9)
            gaps.append(gap / denominator)
        return max(gaps)


def nash_gap(
    game: SchedulingGame,
    result: GameResult,
    *,
    rng: np.random.Generator | None = None,
) -> NashGapReport:
    """Measure the epsilon of an (approximate) equilibrium.

    For each archetype, one more full best-response pass is computed from
    the fixed point; the cost decrease it achieves is that customer's
    remaining incentive to deviate.  A true Nash equilibrium has zero gap
    everywhere; the annealed-hysteresis loop targets gaps below the
    hysteresis fraction of each customer's bill.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    total = result.community_trading
    gaps = []
    costs = []
    for state, count in zip(result.states, result.counts):
        others = total - count * state.trading
        current_cost = float(
            game.cost_model.customer_cost_per_slot(
                state.trading, others, multiplicity=count
            ).sum()
        )
        improved = game.best_response(
            state, others, rng, multiplicity=count, hysteresis_scale=0.0
        )
        improved_cost = float(
            game.cost_model.customer_cost_per_slot(
                improved.trading, others, multiplicity=count
            ).sum()
        )
        gaps.append(max(current_cost - improved_cost, 0.0))
        costs.append(current_cost)
    return NashGapReport(
        per_customer_gap=tuple(gaps), per_customer_cost=tuple(costs)
    )


def cost_breakdown(
    game: SchedulingGame,
    result: GameResult,
) -> tuple[float, ...]:
    """Realized per-instance cost of each archetype at the fixed point."""
    total = result.community_trading
    costs = []
    for state, count in zip(result.states, result.counts):
        others = total - count * state.trading
        costs.append(
            float(
                game.cost_model.customer_cost_per_slot(
                    state.trading, others, multiplicity=count
                ).sum()
            )
        )
    return tuple(costs)


def equilibrium_quality(
    game: SchedulingGame,
    result: GameResult,
    *,
    config: GameConfig | None = None,
) -> bool:
    """True when every customer's remaining gap is within the hysteresis
    budget the loop was run with."""
    config = config if config is not None else game.config
    report = nash_gap(game, result)
    budget = config.hysteresis * config.max_rounds
    for gap, cost in zip(report.per_customer_gap, report.per_customer_cost):
        if gap > budget * max(abs(cost), 1e-9) + 1e-6:
            return False
    return True
