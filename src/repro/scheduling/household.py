"""Single-household response simulation (externality-free view).

A lightweight counterpart to the community game: one household schedules
its appliances against posted prices with the DP scheduler and, when it
owns net-metering hardware, shifts storage with the cross-entropy
optimizer.  Useful for per-home what-if studies and the examples; the
detection layer uses the community-scale simulator instead
(:class:`repro.detection.single_event.CommunityResponseSimulator`), whose
quadratic externality smooths responses.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import GameConfig
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.battery import BatteryOptimizer, BatteryProblem
from repro.scheduling.customer import Customer
from repro.scheduling.dp import schedule_appliance_table


class HouseholdResponseSimulator:
    """Deterministic household responses to a posted price vector.

    The household faces the posted prices directly (no community
    externality): appliance slot costs are ``price * power`` and battery
    arbitrage trades against the posted prices.  Responses are memoized
    by the price vector's bytes.
    """

    def __init__(
        self,
        customer: Customer,
        *,
        sellback_divisor: float = 2.0,
        ce_seed: int = 0,
        game_config: GameConfig | None = None,
    ) -> None:
        self.customer = customer
        self.sellback_divisor = sellback_divisor
        self._config = game_config if game_config is not None else GameConfig()
        self._ce_seed = ce_seed
        self._cache: dict[bytes, NDArray[np.float64]] = {}

    def load_response(self, prices: ArrayLike) -> NDArray[np.float64]:
        """Household consumption per slot under the posted prices (kWh)."""
        p = np.asarray(prices, dtype=float)
        if p.shape != (self.customer.horizon,):
            raise ValueError(
                f"prices must have shape ({self.customer.horizon},), got {p.shape}"
            )
        key = np.round(p, 9).tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            return cached.copy()
        load = self.customer.base_load_array.copy()
        for task in self.customer.tasks:
            levels = np.asarray(task.power_levels)
            table = p[:, None] * levels[None, :]
            schedule, _ = schedule_appliance_table(task, table)
            load += schedule.load
        self._cache[key] = load
        return load.copy()

    def net_response(self, prices: ArrayLike) -> NDArray[np.float64]:
        """Net grid position per slot: load minus PV, with battery shifts."""
        p = np.asarray(prices, dtype=float)
        load = self.load_response(p)
        if not self.customer.has_net_metering:
            return load
        key = b"net:" + np.round(p, 9).tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            return cached.copy()
        cost_model = NetMeteringCostModel(
            prices=tuple(np.maximum(p, 0.0)),
            sellback_divisor=self.sellback_divisor,
        )
        problem = BatteryProblem(
            load=tuple(load),
            pv=self.customer.pv,
            others_trading=tuple(np.zeros(self.customer.horizon)),
            spec=self.customer.battery,
            cost_model=cost_model,
        )
        optimizer = BatteryOptimizer(
            n_samples=self._config.ce_samples,
            n_elites=self._config.ce_elites,
            n_iterations=self._config.ce_iterations,
            smoothing=self._config.ce_smoothing,
        )
        result = optimizer.optimize(problem, rng=np.random.default_rng(self._ce_seed))
        net = problem.trading(result.x)
        self._cache[key] = net
        return net.copy()
