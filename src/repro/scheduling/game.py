"""The net-metering-aware energy consumption scheduling game (Section 3.1).

Every customer minimizes their own monetary cost (Problem **P1**) given
everyone else's trading totals; the solution concept is the iterative
best-response loop of Algorithm 1:

- outer loop: cycle over customers until the community trading vector
  stops changing;
- per customer, inner loop: alternate the dynamic-programming appliance
  scheduler (power levels ``x_m^h`` with the battery fixed) and the
  cross-entropy battery optimizer (trajectory ``b_n^h`` with appliances
  fixed).

Communities are described as weighted *archetypes*: ``counts[a]`` identical
instances share the strategy of ``customers[a]``.  Instances of the same
archetype best-respond against the whole community minus one instance,
exactly as independent players would, but the fixed point is computed once
per archetype — this is what makes the paper's 500-customer community
tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import GameConfig
from repro.kernels import KernelBackend, get_backend
from repro.netmetering.cost import NetMeteringCostModel

if TYPE_CHECKING:
    from repro.tariffs.base import CostModel, Tariff
from repro.obs.trace import TRACER
from repro.optimization.battery import BatteryOptimizer, BatteryProblem
from repro.perf.counters import PERF
from repro.scheduling.customer import Customer, CustomerState
from repro.scheduling.dp import schedule_appliance_table


@dataclass(frozen=True)
class Community:
    """A weighted collection of customer archetypes."""

    customers: tuple[Customer, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "customers", tuple(self.customers))
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if not self.customers:
            raise ValueError("community must have at least one customer archetype")
        if len(self.counts) != len(self.customers):
            raise ValueError(
                f"{len(self.counts)} counts for {len(self.customers)} archetypes"
            )
        if any(c < 1 for c in self.counts):
            raise ValueError("archetype counts must be >= 1")
        horizons = {c.horizon for c in self.customers}
        if len(horizons) != 1:
            raise ValueError(f"customers disagree on horizon: {sorted(horizons)}")

    @property
    def horizon(self) -> int:
        return self.customers[0].horizon

    @property
    def n_customers(self) -> int:
        return sum(self.counts)

    @property
    def total_pv(self) -> NDArray[np.float64]:
        """Community renewable generation ``Theta_h`` per slot."""
        total = np.zeros(self.horizon)
        for customer, count in zip(self.customers, self.counts):
            total += count * customer.pv_array
        return total

    def without_net_metering(self) -> "Community":
        """The same community with PV and batteries stripped."""
        return Community(
            customers=tuple(c.without_net_metering() for c in self.customers),
            counts=self.counts,
        )


@dataclass(frozen=True)
class GameResult:
    """Converged (or truncated) outcome of the scheduling game."""

    states: tuple[CustomerState, ...]
    counts: tuple[int, ...]
    rounds: int
    converged: bool
    residuals: tuple[float, ...] = field(default=())

    @property
    def horizon(self) -> int:
        return self.states[0].customer.horizon

    @property
    def community_load(self) -> NDArray[np.float64]:
        """Total consumption ``L_h = sum_n l_n^h`` per slot."""
        total = np.zeros(self.horizon)
        for state, count in zip(self.states, self.counts):
            total += count * state.load
        return total

    @property
    def community_trading(self) -> NDArray[np.float64]:
        """Total grid trading ``Y_h = sum_n y_n^h`` per slot."""
        total = np.zeros(self.horizon)
        for state, count in zip(self.states, self.counts):
            total += count * state.trading
        return total

    @property
    def grid_demand(self) -> NDArray[np.float64]:
        """Energy purchased from the utility per slot (clamped at zero)."""
        return np.maximum(self.community_trading, 0.0)


class SchedulingGame:
    """Iterative best-response solver for one guideline-price vector."""

    def __init__(
        self,
        community: Community,
        prices: ArrayLike,
        *,
        sellback_divisor: float = 2.0,
        config: GameConfig | None = None,
        backend: KernelBackend | str | None = None,
        tariff: "Tariff | None" = None,
    ) -> None:
        prices_arr = np.asarray(prices, dtype=float)
        if prices_arr.shape != (community.horizon,):
            raise ValueError(
                f"prices must have shape ({community.horizon},), got {prices_arr.shape}"
            )
        self.community = community
        self.config = config if config is not None else GameConfig()
        self.backend = get_backend(backend)
        # Hourly slots: a kW power level consumes that many kWh per slot,
        # which keeps appliance loads, PV and trading in the same unit.
        self.slot_hours = 1.0
        self.tariff = tariff
        # The cost hook: with no tariff, the paper's flat net-metering
        # model is built exactly as before (bitwise-identical results);
        # a tariff supplies its own model through the same duck-typed
        # surface.
        if tariff is None:
            self.cost_model: CostModel = NetMeteringCostModel(
                prices=tuple(prices_arr), sellback_divisor=sellback_divisor
            )
        else:
            self.cost_model = tariff.cost_model(
                prices_arr, sellback_divisor=sellback_divisor
            )
        self._battery_optimizer = BatteryOptimizer(
            n_samples=self.config.ce_samples,
            n_elites=self.config.ce_elites,
            n_iterations=self.config.ce_iterations,
            smoothing=self.config.ce_smoothing,
            backend=self.backend,
        )
        # Per-(customer, task) tables that are pure functions of static
        # identity: the DP tie-break jitter (a fresh seeded generator
        # reproduces the same table every call, so caching it is exact)
        # and the power-level array used for vectorized schedule costing.
        self._jitter_tables: dict[tuple[int, int], NDArray[np.float64]] = {}
        self._level_arrays: dict[tuple[int, int], NDArray[np.float64]] = {}
        self._slot_index = np.arange(community.horizon)

    def _task_tables(
        self, customer: Customer, index: int
    ) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
        """Cached (jitter table, power-level array) for one task."""
        key = (customer.customer_id, index)
        jitter = self._jitter_tables.get(key)
        if jitter is None:
            task = customer.tasks[index]
            levels = np.asarray(task.power_levels)
            jitter_rng = np.random.default_rng(
                (customer.customer_id * 1_000_003 + index) % (2**32)
            )
            jitter = jitter_rng.uniform(
                0.0, 1e-6, size=(self.community.horizon, levels.size)
            )
            self._jitter_tables[key] = jitter
            self._level_arrays[key] = levels
        return jitter, self._level_arrays[key]

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initial_state(self, customer: Customer) -> CustomerState:
        """Greedy warm start: price-only scheduling, idle battery."""
        horizon = customer.horizon
        prices = self.cost_model.price_array
        schedules = []
        for task in customer.tasks:
            levels = np.asarray(task.power_levels)
            table = prices[:, None] * levels[None, :] * self.slot_hours
            schedule, _ = schedule_appliance_table(
                task, table, slot_hours=self.slot_hours
            )
            schedules.append(schedule)
        decision = np.full(horizon, customer.battery.initial_kwh)
        return CustomerState(
            customer=customer,
            schedules=tuple(schedules),
            battery_decision=tuple(decision),
        )

    # ------------------------------------------------------------------
    # Best response
    # ------------------------------------------------------------------
    def best_response(
        self,
        state: CustomerState,
        others_trading: NDArray[np.float64],
        rng: np.random.Generator,
        *,
        multiplicity: int = 1,
        hysteresis_scale: float = 1.0,
        ce_std_scale: float = 1.0,
    ) -> CustomerState:
        """One inner-loop pass of Algorithm 1 for a single customer.

        Alternates DP appliance scheduling (battery fixed) and CE battery
        optimization (appliances fixed) ``config.inner_iterations`` times.

        ``others_trading`` must exclude all ``multiplicity`` instances of
        the archetype; the herd move of identical instances is priced
        inside the marginal tables (see
        :meth:`NetMeteringCostModel.marginal_cost_table`).

        ``hysteresis_scale`` anneals the acceptance threshold: the outer
        loop raises it round by round, so best-response cycling between
        near-equal strategies dies out and the dynamics terminate at an
        epsilon-equilibrium (the scheduling game has no exact potential,
        so plain best response may cycle forever).
        """
        threshold_rate = self.config.hysteresis * hysteresis_scale
        customer = state.customer
        for _ in range(self.config.inner_iterations):
            # The acceptance threshold is a fraction of the customer's
            # whole daily bill: relative-to-move thresholds fail when a
            # move's own marginal cost is near zero (flat cost valleys
            # created by battery arbitrage), which is exactly where
            # best-response cycling lives.
            reference = abs(
                float(
                    self.cost_model.customer_cost_per_slot(
                        state.trading, others_trading, multiplicity=multiplicity
                    ).sum()
                )
            ) + 1e-9
            threshold = threshold_rate * reference
            # Line 4: appliance schedules via DP, one task at a time.
            for index, task in enumerate(customer.tasks):
                # Deterministic per-(customer, task) jitter breaks cost
                # ties: a zero-price attack makes whole windows exactly
                # free, and without it every customer's DP would herd into
                # the same slot of the window.
                jitter, levels = self._task_tables(customer, index)
                base_trading = state.trading - state.schedules[index].load * self.slot_hours
                table = self.cost_model.marginal_cost_table(
                    base_trading,
                    others_trading,
                    levels,
                    multiplicity=multiplicity,
                    slot_hours=self.slot_hours,
                )
                table = table + jitter
                table[:, 0] = 0.0  # idling stays exactly free
                schedule, diagnostics = schedule_appliance_table(
                    task, table, slot_hours=self.slot_hours, backend=self.backend
                )
                current_cost = self._schedule_cost(
                    table, levels, state.schedules[index]
                )
                improvement = current_cost - diagnostics.optimal_cost
                if improvement > threshold:
                    state = state.with_schedule(index, schedule)
            # Line 5: battery trajectory via cross-entropy optimization.
            if customer.battery.capacity_kwh > 0:
                problem = BatteryProblem(
                    load=tuple(state.load),
                    pv=customer.pv,
                    others_trading=tuple(others_trading),
                    spec=customer.battery,
                    cost_model=self.cost_model,
                    slot_hours=self.slot_hours,
                    multiplicity=multiplicity,
                )
                # A per-customer deterministic seed makes the CE step a
                # function of its inputs, so the best-response map has
                # fixed points the outer loop can actually reach.
                ce_rng = np.random.default_rng(customer.customer_id + 7919)  # repro: noqa[SEED003] fixed-point contract: the CE step must replay the same stream each inner iteration
                result = self._battery_optimizer.optimize(
                    problem,
                    x0=np.asarray(state.battery_decision),
                    rng=ce_rng,
                    std_scale=ce_std_scale,
                )
                current_cost = problem.cost(np.asarray(state.battery_decision))
                # Accept only clear improvements: chasing CE sampling noise
                # keeps the outer loop from converging.
                improvement = current_cost - result.fun
                if improvement > threshold:
                    state = state.with_battery(result.x)
        return state

    def _schedule_cost(
        self,
        table: NDArray[np.float64],
        levels: NDArray[np.float64],
        schedule,
    ) -> float:
        """Cost of an existing schedule under a fresh marginal table.

        ``levels`` is the task's (strictly increasing) power-level array;
        schedule powers are exact members of it, so ``searchsorted``
        recovers each slot's level index without rebuilding a dict.  The
        gathered entries are summed sequentially to reproduce the exact
        rounding of the historical per-slot accumulation loop.
        """
        idx = np.searchsorted(levels, schedule.load)
        picked = table[self._slot_index, idx]
        total = 0.0
        for value in picked.tolist():
            total += value
        return total

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------
    def solve(
        self,
        *,
        rng: np.random.Generator | None = None,
        warm_start: GameResult | None = None,
        ce_std_scale: float = 1.0,
    ) -> GameResult:
        """Run Algorithm 1 to (approximate) convergence.

        ``warm_start`` replaces the greedy initial states with a previous
        :class:`GameResult` for the same community (e.g. the nearest
        cached equilibrium under a similar price vector), typically
        cutting rounds-to-convergence sharply; ``ce_std_scale`` then
        narrows the CE sampling density around the warm trajectories.
        Both default to the historical cold start.
        """
        rng = rng if rng is not None else np.random.default_rng(0)
        if warm_start is not None:
            if len(warm_start.states) != len(self.community.customers):
                raise ValueError(
                    f"warm start has {len(warm_start.states)} archetype states "
                    f"for {len(self.community.customers)} archetypes"
                )
            states = list(warm_start.states)
        else:
            states = [self.initial_state(c) for c in self.community.customers]
        counts = self.community.counts
        tradings = [s.trading for s in states]
        total = np.zeros(self.community.horizon)
        for y, count in zip(tradings, counts):
            total += count * y

        residuals: list[float] = []
        converged = False
        rounds = 0
        for rounds in range(1, self.config.max_rounds + 1):
            max_delta = 0.0
            order = rng.permutation(len(states))
            with TRACER.span("game.round", round=rounds):
                for index in order:
                    state, count = states[index], counts[index]
                    others = total - count * tradings[index]
                    with TRACER.span(
                        "game.customer", customer=int(index), multiplicity=int(count)
                    ):
                        new_state = self.best_response(
                            state,
                            others,
                            rng,
                            multiplicity=count,
                            hysteresis_scale=float(rounds),
                            ce_std_scale=ce_std_scale,
                        )
                    new_trading = new_state.trading
                    delta = float(np.max(np.abs(new_trading - tradings[index])))
                    max_delta = max(max_delta, delta)
                    total = total + count * (new_trading - tradings[index])
                    states[index] = new_state
                    tradings[index] = new_trading
            residuals.append(max_delta)
            if max_delta < self.config.convergence_tol:
                converged = True
                break

        PERF.add("game.solves")
        PERF.add("game.rounds", rounds)
        PERF.observe("game.rounds", rounds)
        return GameResult(
            states=tuple(states),
            counts=counts,
            rounds=rounds,
            converged=converged,
            residuals=tuple(residuals),
        )
