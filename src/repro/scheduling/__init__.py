"""Smart home scheduling: appliance tasks, DP scheduler and the community game."""

from repro.scheduling.appliance import (
    ApplianceSchedule,
    ApplianceTask,
    InfeasibleTaskError,
)
from repro.scheduling.customer import Customer, CustomerState
from repro.scheduling.dp import schedule_appliance, schedule_appliance_table
from repro.scheduling.game import (
    Community,
    GameResult,
    SchedulingGame,
)
from repro.scheduling.diagnostics import (
    NashGapReport,
    cost_breakdown,
    equilibrium_quality,
    nash_gap,
)
from repro.scheduling.household import HouseholdResponseSimulator

__all__ = [
    "ApplianceSchedule",
    "ApplianceTask",
    "Community",
    "Customer",
    "CustomerState",
    "GameResult",
    "HouseholdResponseSimulator",
    "InfeasibleTaskError",
    "NashGapReport",
    "SchedulingGame",
    "cost_breakdown",
    "equilibrium_quality",
    "nash_gap",
    "schedule_appliance",
    "schedule_appliance_table",
]
