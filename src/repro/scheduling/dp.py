"""Dynamic-programming appliance scheduler (ref. [6] of the paper).

Given a per-slot, per-level incremental cost table, the scheduler finds the
power-level assignment that exactly meets the task's energy requirement at
minimum total cost.  The DP state is ``(slot, remaining energy units)``;
energy is discretized on the task's greatest-common-divisor unit so the
recursion is exact.

The cost table is what couples the scheduler to the quadratic net-metering
pricing: the game layer (:mod:`repro.scheduling.game`) computes, for every
slot and level, the *marginal* community cost of running the appliance at
that level on top of the rest of the customer's trading position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.kernels import KernelBackend, get_backend
from repro.obs.trace import TRACER
from repro.perf.counters import PERF
from repro.scheduling.appliance import ApplianceSchedule, ApplianceTask, InfeasibleTaskError

CostFunction = Callable[[int, float], float]
"""Incremental cost of running at power ``x`` (kW) in slot ``h``."""

_INF = np.inf


@dataclass(frozen=True)
class DpDiagnostics:
    """Bookkeeping from one scheduler invocation."""

    n_states: int
    n_slots: int
    optimal_cost: float


def _build_cost_table(
    task: ApplianceTask,
    horizon: int,
    cost: CostFunction,
) -> NDArray[np.float64]:
    """Evaluate the cost callable into a dense (horizon, n_levels) table."""
    table = np.zeros((horizon, len(task.power_levels)))
    for h in range(horizon):
        for j, level in enumerate(task.power_levels):
            table[h, j] = cost(h, level)
    return table


def _task_units(
    task: ApplianceTask, horizon: int, *, slot_hours: float
) -> tuple[NDArray[np.int_], int, NDArray[np.bool_]]:
    """Shared DP setup: level units, required units and the window mask."""
    unit = task.energy_unit(slot_hours=slot_hours)
    level_units = np.array(
        [round(p * slot_hours / unit) for p in task.power_levels], dtype=int
    )
    required_units = round(task.energy_kwh / unit)
    mask = task.window_mask(horizon)
    return level_units, required_units, mask


def _backtrack(
    task: ApplianceTask,
    choice: NDArray[np.int16],
    level_units: NDArray[np.int_],
    required_units: int,
    mask: NDArray[np.bool_],
) -> NDArray[np.float64]:
    """Recover the optimal power assignment from the DP choice table."""
    horizon = choice.shape[0]
    power = np.zeros(horizon)
    remaining = required_units
    for h in range(horizon):
        if not mask[h]:
            continue
        j = int(choice[h, remaining])
        power[h] = task.power_levels[j]
        remaining -= int(level_units[j])
    if remaining != 0:
        raise AssertionError(
            f"{task.name}: backtracking left {remaining} units unassigned"
        )
    return power


@TRACER.traced("dp.solve", category="scheduling")
def schedule_appliance_table(
    task: ApplianceTask,
    cost_table: NDArray[np.float64],
    *,
    slot_hours: float = 1.0,
    backend: KernelBackend | str | None = None,
) -> tuple[ApplianceSchedule, DpDiagnostics]:
    """Optimal schedule from a dense cost table.

    Parameters
    ----------
    task:
        The appliance task to schedule.
    cost_table:
        Array of shape ``(horizon, n_levels)``: ``cost_table[h, j]`` is the
        incremental cost of running ``task.power_levels[j]`` in slot ``h``.
        Rows outside the task window are ignored (the level is forced to 0).
    slot_hours:
        Slot duration in hours; per-slot energy is ``level * slot_hours``.
    backend:
        Kernel backend (or name) running the backward recursion; resolved
        via :func:`repro.kernels.get_backend` when omitted.  Backends are
        bitwise-identical, so the choice never changes the schedule.

    Returns
    -------
    (schedule, diagnostics)
        The cost-minimal feasible schedule and DP bookkeeping.

    Raises
    ------
    InfeasibleTaskError
        If no assignment meets the energy requirement.
    """
    horizon, n_levels = cost_table.shape
    if n_levels != len(task.power_levels):
        raise ValueError(
            f"cost_table has {n_levels} level columns but task has "
            f"{len(task.power_levels)} power levels"
        )
    task.check_feasible(horizon, slot_hours=slot_hours)
    kernel = get_backend(backend)

    level_units, required_units, mask = _task_units(
        task, horizon, slot_hours=slot_hours
    )
    # value[r] = minimal cost to consume exactly r units in slots [h, horizon);
    # choice[h, r] = level index chosen at slot h when r units remain.
    n_states = required_units + 1
    value, choice = kernel.dp_backward(cost_table, level_units, n_states, mask)

    if not np.isfinite(value[required_units]):
        raise InfeasibleTaskError(
            f"{task.name}: no feasible schedule for {task.energy_kwh} kWh "
            f"in window [{task.earliest_start}, {task.deadline}]"
        )

    power = _backtrack(task, choice, level_units, required_units, mask)

    PERF.add("dp.cells", n_states * horizon)
    schedule = ApplianceSchedule(task=task, power=tuple(power))
    diagnostics = DpDiagnostics(
        n_states=n_states,
        n_slots=horizon,
        optimal_cost=float(value[required_units]),
    )
    return schedule, diagnostics


@TRACER.traced("dp.solve_batch", category="scheduling")
def schedule_appliance_tables(
    task: ApplianceTask,
    cost_tables: NDArray[np.float64],
    *,
    slot_hours: float = 1.0,
    backend: KernelBackend | str | None = None,
) -> tuple[list[ApplianceSchedule], NDArray[np.float64]]:
    """Optimal schedules for one task under a batch of cost tables.

    ``cost_tables`` has shape ``(G, H, L)`` — one dense table per game of
    a lockstep batch.  Entry ``g`` of the result is bitwise-identical to
    ``schedule_appliance_table(task, cost_tables[g])``; the backward
    recursion runs once over the whole batch through the kernel backend.

    Returns ``(schedules, optimal_costs)`` with ``optimal_costs`` of
    shape ``(G,)``.
    """
    if cost_tables.ndim != 3 or cost_tables.shape[2] != len(task.power_levels):
        raise ValueError(
            f"cost_tables must have shape (G, H, {len(task.power_levels)}), "
            f"got {cost_tables.shape}"
        )
    n_games, horizon, _ = cost_tables.shape
    task.check_feasible(horizon, slot_hours=slot_hours)
    kernel = get_backend(backend)

    level_units, required_units, mask = _task_units(
        task, horizon, slot_hours=slot_hours
    )
    n_states = required_units + 1
    values, choices = kernel.dp_backward_batch(
        cost_tables, level_units, n_states, mask
    )
    if not np.all(np.isfinite(values[:, required_units])):
        raise InfeasibleTaskError(
            f"{task.name}: no feasible schedule for {task.energy_kwh} kWh "
            f"in window [{task.earliest_start}, {task.deadline}]"
        )

    schedules = []
    for g in range(n_games):
        power = _backtrack(task, choices[g], level_units, required_units, mask)
        schedules.append(ApplianceSchedule(task=task, power=tuple(power)))
    PERF.add("dp.cells", n_states * horizon * n_games)
    optimal_costs = np.array(
        [float(values[g, required_units]) for g in range(n_games)]
    )
    return schedules, optimal_costs


def schedule_appliance(
    task: ApplianceTask,
    cost: CostFunction,
    horizon: int,
    *,
    slot_hours: float = 1.0,
) -> tuple[ApplianceSchedule, DpDiagnostics]:
    """Optimal schedule from a cost callable (wraps the table variant)."""
    table = _build_cost_table(task, horizon, cost)
    return schedule_appliance_table(task, table, slot_hours=slot_hours)
