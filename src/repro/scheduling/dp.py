"""Dynamic-programming appliance scheduler (ref. [6] of the paper).

Given a per-slot, per-level incremental cost table, the scheduler finds the
power-level assignment that exactly meets the task's energy requirement at
minimum total cost.  The DP state is ``(slot, remaining energy units)``;
energy is discretized on the task's greatest-common-divisor unit so the
recursion is exact.

The cost table is what couples the scheduler to the quadratic net-metering
pricing: the game layer (:mod:`repro.scheduling.game`) computes, for every
slot and level, the *marginal* community cost of running the appliance at
that level on top of the rest of the customer's trading position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from numpy.typing import NDArray

from repro.obs.trace import TRACER
from repro.perf.counters import PERF
from repro.scheduling.appliance import ApplianceSchedule, ApplianceTask, InfeasibleTaskError

CostFunction = Callable[[int, float], float]
"""Incremental cost of running at power ``x`` (kW) in slot ``h``."""

_INF = np.inf


@dataclass(frozen=True)
class DpDiagnostics:
    """Bookkeeping from one scheduler invocation."""

    n_states: int
    n_slots: int
    optimal_cost: float


def _build_cost_table(
    task: ApplianceTask,
    horizon: int,
    cost: CostFunction,
) -> NDArray[np.float64]:
    """Evaluate the cost callable into a dense (horizon, n_levels) table."""
    table = np.zeros((horizon, len(task.power_levels)))
    for h in range(horizon):
        for j, level in enumerate(task.power_levels):
            table[h, j] = cost(h, level)
    return table


@TRACER.traced("dp.solve", category="scheduling")
def schedule_appliance_table(
    task: ApplianceTask,
    cost_table: NDArray[np.float64],
    *,
    slot_hours: float = 1.0,
) -> tuple[ApplianceSchedule, DpDiagnostics]:
    """Optimal schedule from a dense cost table.

    Parameters
    ----------
    task:
        The appliance task to schedule.
    cost_table:
        Array of shape ``(horizon, n_levels)``: ``cost_table[h, j]`` is the
        incremental cost of running ``task.power_levels[j]`` in slot ``h``.
        Rows outside the task window are ignored (the level is forced to 0).
    slot_hours:
        Slot duration in hours; per-slot energy is ``level * slot_hours``.

    Returns
    -------
    (schedule, diagnostics)
        The cost-minimal feasible schedule and DP bookkeeping.

    Raises
    ------
    InfeasibleTaskError
        If no assignment meets the energy requirement.
    """
    horizon, n_levels = cost_table.shape
    if n_levels != len(task.power_levels):
        raise ValueError(
            f"cost_table has {n_levels} level columns but task has "
            f"{len(task.power_levels)} power levels"
        )
    task.check_feasible(horizon, slot_hours=slot_hours)

    unit = task.energy_unit(slot_hours=slot_hours)
    level_units = np.array(
        [round(p * slot_hours / unit) for p in task.power_levels], dtype=int
    )
    required_units = round(task.energy_kwh / unit)
    mask = task.window_mask(horizon)

    # value[r] = minimal cost to consume exactly r units in slots [h, horizon).
    # Iterate h from the last slot backwards.
    n_states = required_units + 1
    value = np.full(n_states, _INF)
    value[0] = 0.0
    # choice[h, r] = level index chosen at slot h when r units remain.
    choice = np.zeros((horizon, n_states), dtype=np.int16)

    for h in range(horizon - 1, -1, -1):
        if not mask[h]:
            # Outside the window the appliance must idle; value carries over.
            choice[h, :] = 0
            continue
        best = np.full(n_states, _INF)
        best_choice = np.zeros(n_states, dtype=np.int16)
        for j, du in enumerate(level_units):
            cost_j = cost_table[h, j]
            if not np.isfinite(cost_j):
                continue
            if du == 0:
                candidate = value + cost_j
            else:
                candidate = np.full(n_states, _INF)
                candidate[du:] = value[:-du] + cost_j if du < n_states else _INF
            improved = candidate < best
            best[improved] = candidate[improved]
            best_choice[improved] = j
        value = best
        choice[h, :] = best_choice

    if not np.isfinite(value[required_units]):
        raise InfeasibleTaskError(
            f"{task.name}: no feasible schedule for {task.energy_kwh} kWh "
            f"in window [{task.earliest_start}, {task.deadline}]"
        )

    # Backtrack from the full requirement at slot 0.
    power = np.zeros(horizon)
    remaining = required_units
    for h in range(horizon):
        if not mask[h]:
            continue
        j = int(choice[h, remaining])
        power[h] = task.power_levels[j]
        remaining -= int(level_units[j])
    if remaining != 0:
        raise AssertionError(
            f"{task.name}: backtracking left {remaining} units unassigned"
        )

    PERF.add("dp.cells", n_states * horizon)
    schedule = ApplianceSchedule(task=task, power=tuple(power))
    diagnostics = DpDiagnostics(
        n_states=n_states,
        n_slots=horizon,
        optimal_cost=float(value[required_units]),
    )
    return schedule, diagnostics


def schedule_appliance(
    task: ApplianceTask,
    cost: CostFunction,
    horizon: int,
    *,
    slot_hours: float = 1.0,
) -> tuple[ApplianceSchedule, DpDiagnostics]:
    """Optimal schedule from a cost callable (wraps the table variant)."""
    table = _build_cost_table(task, horizon, cost)
    return schedule_appliance_table(task, table, slot_hours=slot_hours)
