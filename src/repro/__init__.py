"""Net-metering-aware smart home pricing cyberattack detection.

Reproduction of Liu, Hu, Jin, Wu, Shi, Hu and Li, "Impact Assessment of
Net Metering on Smart Home Cyberattack Detection", DAC 2015.

The package is organized as one subpackage per subsystem:

- :mod:`repro.core` -- configuration, presets and the integrated
  :class:`~repro.core.framework.DetectionFramework` facade.
- :mod:`repro.scheduling` -- appliance task model, the dynamic-programming
  appliance scheduler and the community energy-consumption scheduling game.
- :mod:`repro.netmetering` -- battery dynamics, energy trading and the
  quadratic net-metering cost model (Eqns. 1-3 of the paper).
- :mod:`repro.optimization` -- the cross-entropy stochastic optimizer used
  for battery-storage trajectories, plus ablation baselines.
- :mod:`repro.prediction` -- an epsilon-SVR implemented from scratch, the
  guideline-price predictors (net-metering aware and unaware) and the
  game-based community load prediction.
- :mod:`repro.attacks` -- pricing cyberattack models and the stochastic
  meter-hacking process.
- :mod:`repro.detection` -- PAR-threshold single-event detection and the
  POMDP-based long-term detector.
- :mod:`repro.simulation` -- the multi-day community scenario engine.
- :mod:`repro.stream` -- the online twin of the scenario engine: event
  sources, incremental detectors and checkpoint/resume.
- :mod:`repro.service` -- a stdlib HTTP monitoring API over a stream.
- :mod:`repro.obs` -- observability: hierarchical span tracing,
  structured logging, run manifests and the detection audit trail.
- :mod:`repro.data` -- synthetic pricing, solar and appliance generators.
- :mod:`repro.metrics` -- PAR, accuracy, labor-cost and error metrics.
"""

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    PricingConfig,
    SolarConfig,
    TimeGrid,
)
from repro.core.framework import DetectionFramework, FrameworkResult

__all__ = [
    "BatteryConfig",
    "CommunityConfig",
    "DetectionConfig",
    "DetectionFramework",
    "FrameworkResult",
    "GameConfig",
    "PricingConfig",
    "SolarConfig",
    "TimeGrid",
]

__version__ = "1.1.0"
