"""Monitoring service: an HTTP front-end over the streaming pipeline.

Stdlib-only (``http.server``) so the reproduction stays dependency-free:
:class:`~repro.service.app.DetectionService` owns a
:class:`~repro.stream.pipeline.StreamEngine` behind a lock, and
:func:`~repro.service.app.create_server` exposes it as a small JSON API
(``POST /events``, ``POST /advance``, ``GET /status``,
``GET /detections``, ``GET /metrics``) with checkpoint-on-SIGTERM.
"""

from repro.service.app import (
    DetectionService,
    ServiceError,
    create_server,
    run_service,
)

__all__ = [
    "DetectionService",
    "ServiceError",
    "create_server",
    "run_service",
]
