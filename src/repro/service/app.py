"""HTTP monitoring service over a streaming detection engine.

The service is the paper's Figure 2 loop with a wire protocol around it:
meter readings and price updates arrive as JSON events, the online
pipeline folds them into flags, beliefs and repair dispatches, and
operators poll the detection timeline and performance counters over
HTTP.  Everything is Python stdlib — ``http.server`` threads over one
lock-guarded engine.

Endpoints
---------
- ``POST /events`` — push one event (``event_to_dict`` JSON) straight
  into the pipeline; returns the slot verdict for meter readings.
- ``POST /advance`` — pump events from the engine's own source
  (``{"max_events": N}`` and/or ``{"until_day": D}``).
- ``POST /checkpoint`` — persist full engine state now.
- ``GET /status`` — run progress, belief, repair totals.
- ``GET /detections?since=S&limit=L`` — the slot-by-slot timeline.
- ``GET /metrics`` — perf-counter *deltas since the previous scrape*
  plus process-lifetime totals; ``?format=prometheus`` returns the
  text exposition format (lifetime totals, gauges and histogram
  summaries) for scrape-based collectors instead.
- ``GET /trace`` — the detection audit trail: one explainable record
  per slot verdict (per-meter PAR evidence, belief before/after) and
  per gap, filterable by ``since``/``day``/``kind``/``limit``.
- ``GET /scoreboard`` — resilience metrics (MTTD/MTTR/availability/
  false-alarm rate/per-family confusion) folded from the timeline and
  the attack-occurrence ledger.
- ``GET /faults`` / ``POST /faults`` — inspect or install a seeded
  fault-injection plan on the engine's source (chaos drills against a
  live service).
- ``GET /healthz`` — liveness.

Malformed requests never surface as 500s: every client error is a
structured JSON body ``{"error": ..., "code": ..., "status": ...}``
with the matching 4xx status.

On SIGTERM/SIGINT the service checkpoints the engine (atomic rename, see
:mod:`repro.stream.checkpoint`) before shutting down, so a killed
service resumes bitwise-identically with ``--resume``.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.core.config import RetryPolicy
from repro.faults.plan import FaultPlan, FaultPlanError, builtin_plan
from repro.obs.audit import AuditTrail
from repro.obs.logs import configure_logging, get_logger
from repro.obs.manifest import build_manifest
from repro.obs.prometheus import render_prometheus
from repro.obs.scoreboard import ScoreboardPublisher, attach_scoreboard
from repro.perf.counters import PERF
from repro.stream.checkpoint import save_checkpoint
from repro.stream.events import MeterReading, event_from_dict
from repro.stream.pipeline import StreamEngine


class ServiceError(ValueError):
    """A client error the handler maps to a structured 4xx response."""

    def __init__(self, message: str, *, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


class DetectionService:
    """Thread-safe facade over one streaming engine.

    All mutation happens under one lock: the HTTP layer is threaded, and
    the pipeline (belief filter, RNG, timeline) is not re-entrant.

    Parameters
    ----------
    engine:
        The engine to serve.
    checkpoint_path:
        Where :meth:`checkpoint` (and the SIGTERM handler) persists
        state; ``None`` disables checkpointing.
    retry:
        Stall policy applied to every :meth:`advance`; ``None`` uses the
        engine's own policy (if any).
    audit:
        Attach an in-memory :class:`~repro.obs.audit.AuditTrail` to the
        pipeline when it has none (default), so ``GET /trace`` always
        has a record for every served detection.  ``False`` leaves the
        pipeline as built.
    scoreboard:
        Attach a :class:`~repro.obs.scoreboard.ResilienceScoreboard`
        (default), backfilled from any pre-served history, so ``GET
        /scoreboard`` reports MTTD/MTTR/availability.  ``False`` leaves
        the pipeline as built.
    """

    def __init__(
        self,
        engine: StreamEngine,
        *,
        checkpoint_path: str | Path | None = None,
        retry: RetryPolicy | None = None,
        audit: bool = True,
        scoreboard: bool = True,
    ) -> None:
        self.engine = engine
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.retry = retry
        self._lock = threading.Lock()
        self._metrics_baseline = PERF.snapshot()
        self._scoreboard_publisher = ScoreboardPublisher(
            PERF, prefix="stream.scoreboard"
        )
        if audit and engine.pipeline.audit is None:
            engine.pipeline.audit = AuditTrail()
        if engine.pipeline.audit is not None:
            # Detections served before the trail existed (a resumed
            # checkpoint, a pre-attached timeline) still get records.
            engine.pipeline.audit.backfill(engine.timeline)
        if scoreboard:
            # Idempotent: rebuilds (= backfills) from the timeline.
            attach_scoreboard(engine.pipeline)

    # ------------------------------------------------------------------
    def push_event(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Feed one wire-format event straight into the pipeline."""
        try:
            event = event_from_dict(payload)
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(f"bad event: {exc}") from exc
        with self._lock:
            try:
                detection = self.engine.pipeline.handle(event)
            except (ValueError, RuntimeError) as exc:
                raise ServiceError(str(exc)) from exc
        accepted: dict[str, Any] = {"accepted": True, "event": payload.get("type")}
        if isinstance(event, MeterReading):
            accepted["detection"] = None if detection is None else detection.to_dict()
        return accepted

    def advance(
        self, *, max_events: int | None = None, until_day: int | None = None
    ) -> dict[str, Any]:
        """Pump events from the engine's own source."""
        if max_events is not None and max_events < 0:
            raise ServiceError(f"max_events must be >= 0, got {max_events}")
        if until_day is not None and until_day < 0:
            raise ServiceError(f"until_day must be >= 0, got {until_day}")
        with self._lock:
            before = self.engine.events_processed
            produced = self.engine.run(
                max_events=max_events, until_day=until_day, retry=self.retry
            )
            return {
                "events_pumped": self.engine.events_processed - before,
                "detections": len(produced),
                "gaps": sum(1 for det in produced if det.gap),
                "exhausted": self.engine.exhausted,
            }

    def status(self) -> dict[str, Any]:
        with self._lock:
            stats = self.engine.pipeline.detection_stats()
            stats["events_processed"] = self.engine.events_processed
            stats["exhausted"] = self.engine.exhausted
            stats["checkpoint_path"] = (
                None if self.checkpoint_path is None else str(self.checkpoint_path)
            )
            stats["manifest"] = self._manifest()
            return stats

    def _manifest(self) -> dict[str, Any]:
        """Run manifest for the engine under service (caller holds the lock)."""
        spec = self.engine.build_spec or {}
        return build_manifest(
            spec.get("config"),
            seeds=None if "seed" not in spec else {"stream": spec["seed"]},
            command=spec.get("kind"),
        )

    def detections(
        self, *, since: int = 0, limit: int | None = None
    ) -> dict[str, Any]:
        """Timeline slice: verdicts with ``slot >= since``."""
        if since < 0:
            raise ServiceError(f"since must be >= 0, got {since}")
        if limit is not None and limit < 1:
            raise ServiceError(f"limit must be >= 1, got {limit}")
        with self._lock:
            # Snapshot under the lock: the engine appends to the live
            # list, so iterating an alias outside would race /advance.
            timeline = list(self.engine.timeline)
        selected = [det.to_dict() for det in timeline if det.slot >= since]
        truncated = limit is not None and len(selected) > limit
        if truncated:
            selected = selected[:limit]
        return {
            "detections": selected,
            "total_slots": len(timeline),
            "truncated": truncated,
        }

    def metrics(self) -> dict[str, Any]:
        """Perf counters: interval deltas plus lifetime totals.

        Each scrape re-baselines, so successive calls report what
        happened *between* them — rates, not accumulations.
        """
        with self._lock:
            delta = PERF.delta_since(self._metrics_baseline)
            totals = PERF.snapshot()
            self._metrics_baseline = totals
            return {
                "interval": delta,
                "totals": totals,
                "faults": PERF.prefixed("stream.faults."),
                "events_processed": self.engine.events_processed,
            }

    def metrics_prometheus(self) -> str:
        """Prometheus text-format exposition of the perf registry.

        Unlike :meth:`metrics` this does *not* re-baseline: the format
        exports lifetime totals and collectors compute rates themselves,
        so JSON delta scrapes and Prometheus scrapes can interleave.
        Each scrape republishes the scoreboard (when attached):
        availability/false-alarm/episode gauges plus
        ``stream.scoreboard.mttd_slots``/``mttr_slots`` histogram
        samples for episodes new since the previous scrape.
        """
        with self._lock:
            board = self.engine.pipeline.scoreboard
            if board is not None:
                report = board.report()
                self._scoreboard_publisher.publish(report, {"stream": report})
            return render_prometheus(PERF)

    def scoreboard(self) -> dict[str, Any]:
        """The resilience scoreboard report for this engine."""
        with self._lock:
            board = self.engine.pipeline.scoreboard
            if board is None:
                raise ServiceError(
                    "scoreboard disabled on this service", code="scoreboard_disabled"
                )
            return board.report()

    def trace(
        self,
        *,
        since: int = 0,
        day: int | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> dict[str, Any]:
        """Audit-trail slice: explainable records with ``slot >= since``."""
        if since < 0:
            raise ServiceError(f"since must be >= 0, got {since}")
        if limit is not None and limit < 1:
            raise ServiceError(f"limit must be >= 1, got {limit}")
        if kind is not None and kind not in ("detection", "gap"):
            raise ServiceError(
                f"kind must be 'detection' or 'gap', got {kind!r}"
            )
        with self._lock:
            trail = self.engine.pipeline.audit
            if trail is None:
                raise ServiceError(
                    "audit trail disabled on this service", code="audit_disabled"
                )
            records = trail.records(since=since, day=day, kind=kind)
            total = trail.total_records
        truncated = limit is not None and len(records) > limit
        if truncated:
            records = records[:limit]
        return {"records": records, "total_records": total, "truncated": truncated}

    def faults(self) -> dict[str, Any]:
        """The engine's active fault plan and per-kind injection counts."""
        with self._lock:
            injector = self.engine.fault_injector
            if injector is None:
                return {"active": False, "plan": None, "counts": {}}
            return {
                "active": True,
                "plan": injector.plan.to_dict(),
                "counts": dict(injector.counts),
            }

    def install_faults(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Install a fault plan (builtin name or plan object) on the source."""
        unknown = set(payload) - {"plan", "seed"}
        if unknown:
            raise ServiceError(f"unknown fields: {sorted(unknown)}")
        if "plan" not in payload:
            raise ServiceError("missing required field 'plan'")
        seed = _int_field(payload, "seed")
        spec = payload["plan"]
        try:
            if isinstance(spec, str):
                plan = builtin_plan(spec, seed=seed)
            elif isinstance(spec, dict):
                plan = FaultPlan.from_dict(
                    spec if seed is None else {**spec, "seed": seed}
                )
            else:
                raise FaultPlanError(
                    "field 'plan' must be a builtin plan name or a plan object"
                )
        except FaultPlanError as exc:
            raise ServiceError(str(exc)) from exc
        with self._lock:
            injector = self.engine.install_faults(plan)
        return {"active": True, "plan": injector.plan.to_dict()}

    def checkpoint(self) -> dict[str, Any]:
        if self.checkpoint_path is None:
            raise ServiceError("service started without a checkpoint path")
        with self._lock:
            path = save_checkpoint(self.engine, self.checkpoint_path)
            events_processed = self.engine.events_processed
        return {"checkpoint": str(path), "events_processed": events_processed}


class _TextResponse:
    """Marker for routes that answer plain text instead of JSON."""

    def __init__(self, body: str, *, content_type: str = "text/plain; version=0.0.4") -> None:
        self.body = body
        self.content_type = content_type


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the service; JSON in, JSON out
    (except routes that return a :class:`_TextResponse`)."""

    service: DetectionService  # set by create_server()

    # Silence per-request stderr logging; the service is often run under
    # pytest or as a background process.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _respond_text(self, status: int, response: _TextResponse) -> None:
        self._send_body(
            status, response.body.encode("utf-8"), response.content_type
        )

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServiceError("invalid Content-Length header") from exc
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            payload = self._route(method, parsed.path, query)
        except ServiceError as exc:
            self._respond(
                400, {"error": str(exc), "code": exc.code, "status": 400}
            )
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(
                500,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": "internal_error",
                    "status": 500,
                },
            )
            return
        if payload is None:
            self._respond(
                404,
                {
                    "error": f"no route for {method} {parsed.path}",
                    "code": "not_found",
                    "status": 404,
                },
            )
        elif isinstance(payload, _TextResponse):
            self._respond_text(200, payload)
        else:
            self._respond(200, payload)

    def _route(
        self, method: str, path: str, query: dict[str, list[str]]
    ) -> dict[str, Any] | _TextResponse | None:
        service = self.service
        if method == "GET":
            if path == "/status":
                return service.status()
            if path == "/detections":
                return service.detections(
                    since=_int_param(query, "since", 0),
                    limit=_int_param(query, "limit", None),
                )
            if path == "/metrics":
                fmt = query.get("format", ["json"])[0]
                if fmt == "prometheus":
                    return _TextResponse(service.metrics_prometheus())
                if fmt != "json":
                    raise ServiceError(
                        f"format must be 'json' or 'prometheus', got {fmt!r}"
                    )
                return service.metrics()
            if path == "/trace":
                kind_values = query.get("kind")
                return service.trace(
                    since=_int_param(query, "since", 0) or 0,
                    day=_int_param(query, "day", None),
                    kind=None if not kind_values else kind_values[0],
                    limit=_int_param(query, "limit", None),
                )
            if path == "/scoreboard":
                return service.scoreboard()
            if path == "/faults":
                return service.faults()
            if path == "/healthz":
                return {"ok": True}
            return None
        if method == "POST":
            if path == "/events":
                return service.push_event(self._read_json())
            if path == "/advance":
                body = self._read_json()
                unknown = set(body) - {"max_events", "until_day"}
                if unknown:
                    raise ServiceError(f"unknown fields: {sorted(unknown)}")
                return service.advance(
                    max_events=_int_field(body, "max_events"),
                    until_day=_int_field(body, "until_day"),
                )
            if path == "/faults":
                return service.install_faults(self._read_json())
            if path == "/checkpoint":
                body = self._read_json()  # drain + validate (body must be empty JSON)
                if body:
                    raise ServiceError(f"unknown fields: {sorted(body)}")
                return service.checkpoint()
            return None
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


def _int_param(
    query: dict[str, list[str]], name: str, default: int | None
) -> int | None:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError as exc:
        raise ServiceError(f"query parameter {name!r} must be an integer") from exc


def _int_field(body: dict[str, Any], name: str) -> int | None:
    value = body.get(name)
    if value is None:
        return None
    # Strict: JSON true/1.5/"3" are not integers for this API.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(f"field {name!r} must be an integer")
    if isinstance(value, float) and not value.is_integer():
        raise ServiceError(f"field {name!r} must be an integer")
    return int(value)


def create_server(
    service: DetectionService, *, host: str = "127.0.0.1", port: int = 8008
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server to the service (port 0 = ephemeral)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def run_service(
    service: DetectionService,
    *,
    host: str = "127.0.0.1",
    port: int = 8008,
    install_signals: bool = True,
) -> None:
    """Serve forever; checkpoint and exit cleanly on SIGTERM/SIGINT."""
    server = create_server(service, host=host, port=port)

    def _shutdown(signum: int, frame: Any) -> None:
        if service.checkpoint_path is not None:
            service.checkpoint()
        # shutdown() must come from another thread; serve_forever() is
        # blocking this one via the signal-interrupted frame.
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    configure_logging()
    logger = get_logger("service")
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    logger.info("serving detection API on http://%s:%s", bound_host, bound_port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
    if service.checkpoint_path is not None:
        logger.info("checkpoint saved to %s", service.checkpoint_path)
