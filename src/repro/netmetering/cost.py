"""Quadratic net-metering cost model (Eqns. 2-3 of the paper).

The community is billed quadratically: the total monetary cost of the
community in slot ``h`` is ``p_h * (sum_n y_n^h)^2``.  Customer ``n``'s
share in slot ``h`` is

    C_n^h = p_h       * (Y_h) * y_n^h        if y_n^h >= 0  (buying)
    C_n^h = (p_h / W) * (Y_h) * y_n^h        if y_n^h <  0  (selling)

where ``Y_h = sum_i y_i^h`` is the community trading total and ``W >= 1``
is the sell-back divisor: the utility pays only ``p_h / W`` per unit for
energy sold back, keeping the difference as the cost of supporting net
metering.  The selling branch is *rewarding* (negative cost) whenever the
community is a net buyer (``Y_h > 0``): the customer is paid the partial
rate times the demand-scaled price.  Note the paper's Eqn. (2) carries a
leading minus on the selling branch which, read literally, *charges*
customers for selling whenever ``Y_h > 0`` — contradicting its own text
("the utility pays the customer with the rate p_h/W").  We implement the
sign the text describes by default; the explicit ``paper_literal=True``
toggle keeps Eqn. (2)'s literal minus for anyone who wants the other
reading (both are pinned in ``tests/test_tariff_properties.py``, and the
tariff layer exposes the toggle as
``FlatNetMetering(paper_literal=True)``).

One guard is added on top: the community total entering the price is
floored at zero.  When the community as a whole exports (``Y_h < 0``)
there is no neighbor demand to serve, so neither billing nor sell-back
money flows ("the energy sold by a customer could be consumed by some
neighbors in the same community", Section 2.2).  The floor also removes
the runaway where deeper joint export would otherwise grow the per-unit
sell-back payment without bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray


@dataclass(frozen=True)
class NetMeteringCostModel:
    """Vectorized cost evaluation for one guideline-price vector.

    Parameters
    ----------
    prices:
        Guideline price per slot ``p_h``, shape ``(H,)``; must be >= 0.
    sellback_divisor:
        The paper's ``W >= 1``.
    paper_literal:
        ``True`` applies Eqn. (2)'s literal leading minus to the selling
        branch (selling is *charged*); ``False`` (default) keeps the
        rewarding sign the paper's text describes.  The default leaves
        every numeric path bitwise-unchanged.
    """

    prices: tuple[float, ...]
    sellback_divisor: float = 2.0
    paper_literal: bool = False

    def __post_init__(self) -> None:
        p = tuple(float(v) for v in self.prices)
        object.__setattr__(self, "prices", p)
        if len(p) == 0:
            raise ValueError("prices must be non-empty")
        if any(not np.isfinite(v) or v < 0 for v in p):
            raise ValueError("prices must be finite and >= 0")
        if self.sellback_divisor < 1:
            raise ValueError(
                f"sellback_divisor must be >= 1, got {self.sellback_divisor}"
            )

    @property
    def horizon(self) -> int:
        return len(self.prices)

    @property
    def price_array(self) -> NDArray[np.float64]:
        return np.asarray(self.prices, dtype=float)

    def community_cost(self, total_trading: ArrayLike) -> float:
        """Total community billing ``sum_h p_h * max(Y_h, 0)^2``.

        When ``Y_h <= 0`` the community as a whole exports; no billing
        money flows (see the module docstring's floor rationale).
        """
        y = self._validated(total_trading)
        p = self.price_array
        cost = p * np.maximum(y, 0.0) ** 2
        return float(cost.sum())

    def customer_cost(
        self,
        trading: ArrayLike,
        others_trading: ArrayLike,
    ) -> float:
        """Customer's total cost given everyone else's trading (Eqn. 2)."""
        return float(self.customer_cost_per_slot(trading, others_trading).sum())

    def customer_cost_per_slot(
        self,
        trading: ArrayLike,
        others_trading: ArrayLike,
        *,
        multiplicity: int = 1,
    ) -> NDArray[np.float64]:
        """Per-slot customer cost ``C_n^h`` (Eqn. 2), vectorized.

        With ``multiplicity > 1``, the customer is one of that many
        identical archetype instances moving in lockstep:
        ``others_trading`` must then exclude *all* instances, and the
        community total becomes ``others + multiplicity * y`` while the
        customer is still billed for its own quantity ``y``.
        """
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        y = self._validated(trading)
        y_others = self._validated(others_trading)
        p = self.price_array
        total = np.maximum(y_others + multiplicity * y, 0.0)
        buying = y >= 0
        selling = (p / self.sellback_divisor) * total * y
        if self.paper_literal:
            selling = -selling
        return np.where(buying, p * total * y, selling)

    def marginal_cost_table(
        self,
        base_trading: ArrayLike,
        others_trading: ArrayLike,
        levels: ArrayLike,
        *,
        multiplicity: int = 1,
        slot_hours: float = 1.0,
    ) -> NDArray[np.float64]:
        """Incremental cost of adding appliance load on top of a base position.

        For the DP scheduler: entry ``[h, j]`` is the cost increase of the
        customer running an appliance at ``levels[j]`` kW in slot ``h``,
        given that the customer's other trading is ``base_trading[h]`` and
        the rest of the community trades ``others_trading[h]``.

        With ``multiplicity > 1`` (archetype communities), all identical
        instances move together: ``others_trading`` must exclude all of
        them, and the community total seen by the price is
        ``others + multiplicity * y`` while the instance pays for its own
        quantity only.  Pricing the herd move is what keeps the
        best-response dynamics stable.

        Returns
        -------
        Array of shape ``(H, n_levels)``.
        """
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        y0 = self._validated(base_trading)
        y_others = self._validated(others_trading)
        lv = np.asarray(levels, dtype=float) * slot_hours
        if lv.ndim != 1:
            raise ValueError(f"levels must be 1-D, got shape {lv.shape}")
        base_cost = self.customer_cost_per_slot(
            y0, y_others, multiplicity=multiplicity
        )
        # shape (H, n_levels): candidate trading after adding each level
        y_new = y0[:, None] + lv[None, :]
        p = self.price_array[:, None]
        total = np.maximum(y_others[:, None] + multiplicity * y_new, 0.0)
        selling = (p / self.sellback_divisor) * total * y_new
        if self.paper_literal:
            selling = -selling
        cost_new = np.where(y_new >= 0, p * total * y_new, selling)
        return cost_new - base_cost[:, None]

    def _validated(self, values: ArrayLike) -> NDArray[np.float64]:
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self.horizon,):
            raise ValueError(
                f"expected shape ({self.horizon},), got {arr.shape}"
            )
        if np.any(~np.isfinite(arr)):
            raise ValueError("values contain NaN or infinite entries")
        return arr
