"""Energy trading amounts (Eqn. 1 rearranged).

The trading amount ``y_n^h`` is the energy the customer exchanges with the
grid in slot ``h``: positive when buying, negative when selling.  Given a
load profile, PV generation and a battery trajectory, the trading amounts
follow deterministically from the battery balance equation:

    b^{h+1} = b^h + theta^h + y^h - l^h
    =>  y^h = l^h + (b^{h+1} - b^h) - theta^h
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray


def trading_amounts(
    load: ArrayLike,
    pv: ArrayLike,
    trajectory: ArrayLike,
) -> NDArray[np.float64]:
    """Per-slot grid trading amounts ``y`` implied by the battery balance.

    Parameters
    ----------
    load:
        Household consumption per slot (kWh), shape ``(H,)``.
    pv:
        PV generation per slot (kWh), shape ``(H,)``.
    trajectory:
        Battery storage at the start of each slot, shape ``(H+1,)``.

    Returns
    -------
    Trading amounts of shape ``(H,)``: > 0 buys from the grid, < 0 sells.
    """
    l = np.asarray(load, dtype=float)
    theta = np.asarray(pv, dtype=float)
    b = np.asarray(trajectory, dtype=float)
    if l.ndim != 1:
        raise ValueError(f"load must be 1-D, got shape {l.shape}")
    if theta.shape != l.shape:
        raise ValueError(f"pv shape {theta.shape} != load shape {l.shape}")
    if b.shape != (l.size + 1,):
        raise ValueError(
            f"trajectory must have shape ({l.size + 1},), got {b.shape}"
        )
    return l + np.diff(b) - theta


def net_position(trading: ArrayLike) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Split trading amounts into purchases and sales.

    Returns
    -------
    (bought, sold):
        ``bought[h] = max(y[h], 0)`` and ``sold[h] = max(-y[h], 0)``, both
        non-negative arrays of the input shape.
    """
    y = np.asarray(trading, dtype=float)
    return np.maximum(y, 0.0), np.maximum(-y, 0.0)
