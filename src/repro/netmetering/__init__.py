"""Net metering: battery dynamics, energy trading and the quadratic cost model."""

from repro.netmetering.battery import (
    BatteryViolation,
    clamp_trajectory,
    validate_trajectory,
)
from repro.netmetering.cost import NetMeteringCostModel
from repro.netmetering.trading import (
    net_position,
    trading_amounts,
)

__all__ = [
    "BatteryViolation",
    "NetMeteringCostModel",
    "clamp_trajectory",
    "net_position",
    "trading_amounts",
    "validate_trajectory",
]
