"""Battery storage dynamics (Eqn. 1 of the paper).

A battery trajectory is the vector ``b = (b^1, ..., b^{H+1})`` of stored
energy at the *start* of each slot, with ``b^1`` the initial charge.  The
storage evolves as ``b^{h+1} = b^h + theta^h + y^h - l^h`` where ``theta``
is PV generation, ``y`` the grid trading amount and ``l`` the household
load; equivalently, choosing the trajectory fixes the trading amounts
(see :mod:`repro.netmetering.trading`).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import BatteryConfig


class BatteryViolation(ValueError):
    """Raised when a trajectory violates capacity or rate constraints."""


def validate_trajectory(
    trajectory: ArrayLike,
    spec: BatteryConfig,
    *,
    slot_hours: float = 1.0,
    tol: float = 1e-6,
) -> NDArray[np.float64]:
    """Check a battery trajectory against its spec.

    Parameters
    ----------
    trajectory:
        Stored energy (kWh) at the start of each slot, shape ``(H+1,)``.
    spec:
        Capacity and rate limits.
    slot_hours:
        Slot duration; rate limits are per hour.

    Returns
    -------
    The validated trajectory as a float array.

    Raises
    ------
    BatteryViolation
        On any capacity, rate or initial-condition violation.
    """
    b = np.asarray(trajectory, dtype=float)
    if b.ndim != 1 or b.size < 2:
        raise BatteryViolation(
            f"trajectory must be 1-D with length >= 2, got shape {b.shape}"
        )
    if np.any(~np.isfinite(b)):
        raise BatteryViolation("trajectory contains NaN or infinite values")
    if abs(b[0] - spec.initial_kwh) > tol:
        raise BatteryViolation(
            f"trajectory starts at {b[0]} but spec.initial_kwh is {spec.initial_kwh}"
        )
    if np.any(b < -tol) or np.any(b > spec.capacity_kwh + tol):
        raise BatteryViolation(
            f"storage outside [0, {spec.capacity_kwh}]: "
            f"min={b.min():.4f}, max={b.max():.4f}"
        )
    deltas = np.diff(b)
    max_charge = spec.max_charge_kw * slot_hours
    max_discharge = spec.max_discharge_kw * slot_hours
    if np.any(deltas > max_charge + tol):
        raise BatteryViolation(
            f"charge rate exceeded: max delta {deltas.max():.4f} > {max_charge}"
        )
    if np.any(-deltas > max_discharge + tol):
        raise BatteryViolation(
            f"discharge rate exceeded: max delta {(-deltas).max():.4f} > {max_discharge}"
        )
    return b


def clamp_trajectory(
    trajectory: ArrayLike,
    spec: BatteryConfig,
    *,
    slot_hours: float = 1.0,
) -> NDArray[np.float64]:
    """Project an arbitrary trajectory onto the feasible set.

    Projection runs forward in time: each storage value is clipped to the
    capacity box and to the reachable interval given the previous value and
    the charge/discharge rate limits.  ``b[0]`` is pinned to the spec's
    initial charge.  Used to repair cross-entropy samples.
    """
    b = np.array(trajectory, dtype=float)
    if b.ndim != 1 or b.size < 2:
        raise BatteryViolation(
            f"trajectory must be 1-D with length >= 2, got shape {b.shape}"
        )
    b = np.nan_to_num(b, nan=spec.initial_kwh, posinf=spec.capacity_kwh, neginf=0.0)
    b[0] = spec.initial_kwh
    max_charge = spec.max_charge_kw * slot_hours
    max_discharge = spec.max_discharge_kw * slot_hours
    for h in range(1, b.size):
        lo = max(0.0, b[h - 1] - max_discharge)
        hi = min(spec.capacity_kwh, b[h - 1] + max_charge)
        b[h] = min(max(b[h], lo), hi)
    return b


def clamp_trajectory_batch(
    trajectories: ArrayLike,
    spec: BatteryConfig,
    *,
    slot_hours: float = 1.0,
) -> NDArray[np.float64]:
    """Project ``K`` trajectories onto the feasible set in one pass.

    Vectorized counterpart of :func:`clamp_trajectory` for a population
    of shape ``(K, H+1)``: the forward recurrence is sequential in time
    but elementwise over the population axis, so one loop over ``H``
    replaces ``K`` Python loops.  Row ``i`` of the result is bitwise
    identical to ``clamp_trajectory(trajectories[i])`` — the cross-entropy
    optimizer relies on this to batch its projection hook without
    changing any sampled trajectory.
    """
    b = np.array(trajectories, dtype=float)
    if b.ndim != 2 or b.shape[1] < 2:
        raise BatteryViolation(
            f"trajectories must be 2-D with >= 2 columns, got shape {b.shape}"
        )
    b = np.nan_to_num(b, nan=spec.initial_kwh, posinf=spec.capacity_kwh, neginf=0.0)
    b[:, 0] = spec.initial_kwh
    max_charge = spec.max_charge_kw * slot_hours
    max_discharge = spec.max_discharge_kw * slot_hours
    for h in range(1, b.shape[1]):
        prev = b[:, h - 1]
        lo = np.maximum(0.0, prev - max_discharge)
        hi = np.minimum(spec.capacity_kwh, prev + max_charge)
        b[:, h] = np.minimum(np.maximum(b[:, h], lo), hi)
    return b
