"""Threshold analysis for the single-event detector.

The paper fixes one ``delta_P`` without reporting how it was chosen.
This module sweeps the threshold over Monte-Carlo benign and attacked
margin samples, producing the ROC-style curve behind the design-choice
ablation in DESIGN.md: the operating point trades missed attacks against
false alarms, and the net-metering-unaware detector's margin offset
shifts its whole curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.attacks.hacking import MeterHackingProcess
from repro.detection.single_event import SingleEventDetector


@dataclass(frozen=True)
class ThresholdOperatingPoint:
    """Detector quality at one PAR threshold."""

    threshold: float
    tp_rate: float
    fp_rate: float

    @property
    def youden_j(self) -> float:
        """Youden's J statistic (tp - fp); peak J marks a balanced choice."""
        return self.tp_rate - self.fp_rate


@dataclass(frozen=True)
class ThresholdSweep:
    """A full sweep of operating points plus the raw margin samples."""

    points: tuple[ThresholdOperatingPoint, ...]
    benign_margins: NDArray[np.float64]
    attacked_margins: NDArray[np.float64]

    def best_by_youden(self) -> ThresholdOperatingPoint:
        """Operating point maximizing tp - fp."""
        return max(self.points, key=lambda p: p.youden_j)

    def auc(self) -> float:
        """Area under the ROC curve via rank statistics (probability a
        random attacked margin exceeds a random benign one)."""
        benign = self.benign_margins
        attacked = self.attacked_margins
        wins = (attacked[:, None] > benign[None, :]).sum()
        ties = (attacked[:, None] == benign[None, :]).sum()
        return float((wins + 0.5 * ties) / (attacked.size * benign.size))


def sweep_thresholds(
    detector: SingleEventDetector,
    clean_prices: NDArray[np.float64],
    attack_sampler: MeterHackingProcess,
    *,
    thresholds: NDArray[np.float64] | None = None,
    n_trials: int = 40,
    rng: np.random.Generator | None = None,
) -> ThresholdSweep:
    """Measure detector margins and evaluate a grid of thresholds.

    The detector's configured threshold is ignored; margins are collected
    once and every candidate threshold is applied to the same samples.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    rng = rng if rng is not None else np.random.default_rng(0)
    prices = np.asarray(clean_prices, dtype=float)

    benign = np.array(
        [detector.check(prices, rng=rng).margin for _ in range(n_trials)]
    )
    attacked = np.array(
        [
            detector.check(
                attack_sampler.draw_attack().apply(prices), rng=rng
            ).margin
            for _ in range(n_trials)
        ]
    )
    if thresholds is None:
        lo = min(benign.min(), attacked.min())
        hi = max(benign.max(), attacked.max())
        thresholds = np.linspace(lo, hi, 25)

    points = tuple(
        ThresholdOperatingPoint(
            threshold=float(t),
            tp_rate=float(np.mean(attacked > t)),
            fp_rate=float(np.mean(benign > t)),
        )
        for t in np.asarray(thresholds, dtype=float)
    )
    return ThresholdSweep(
        points=points, benign_margins=benign, attacked_margins=attacked
    )
