"""POMDP model for long-term cyberattack monitoring (Section 4.2).

The decision problem ``<S, O, A, T, R, Omega>``:

- **States** ``s_i``: exactly ``i`` of the ``N`` monitored smart meters
  are hacked, ``i = 0..N``.
- **Observations** ``o_i``: the single-event layer flags ``i`` meters.
- **Actions**: ``a_0`` (keep monitoring) and ``a_1`` (dispatch a crew to
  check and fix every hacked meter).
- **Transitions**: under monitoring, each clean meter is compromised with
  probability ``q`` per slot (binomial growth); a repair resets the fleet
  and fresh compromises then accrue from zero.
- **Observation function**: each hacked meter is flagged with the
  single-event true-positive rate ``d`` and each clean meter with the
  false-positive rate ``f``; the flag count is the convolution of the two
  binomials.  ``d`` and ``f`` are *trained on historical data* — in this
  reproduction they are measured from Monte-Carlo runs of the actual
  single-event detector (see :mod:`repro.simulation.calibration`).
- **Rewards**: every hacked meter costs ``damage_per_meter`` per slot; a
  repair costs a fixed dispatch fee plus a per-meter labor fee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray
from scipy import stats

MONITOR = 0
"""Action index: ignore the alarm and keep monitoring (the paper's a_0)."""

REPAIR = 1
"""Action index: check and fix the hacked meters (the paper's a_1)."""


@dataclass(frozen=True)
class PomdpModel:
    """A finite POMDP in dense-array form.

    Attributes
    ----------
    transitions:
        ``T[a, s, s']``, rows over ``s'`` summing to 1.
    observations:
        ``Omega[a, s', o]``: probability of observing ``o`` after action
        ``a`` lands in state ``s'``; rows over ``o`` summing to 1.
    rewards:
        ``R[a, s]``: expected immediate reward of taking ``a`` in ``s``.
    discount:
        Discount factor in (0, 1).
    """

    transitions: NDArray[np.float64]
    observations: NDArray[np.float64]
    rewards: NDArray[np.float64]
    discount: float

    def __post_init__(self) -> None:
        t, omega, r = self.transitions, self.observations, self.rewards
        if t.ndim != 3 or t.shape[1] != t.shape[2]:
            raise ValueError(f"transitions must be (A, S, S), got {t.shape}")
        n_actions, n_states, _ = t.shape
        if omega.ndim != 3 or omega.shape[0] != n_actions or omega.shape[1] != n_states:
            raise ValueError(
                f"observations must be ({n_actions}, {n_states}, O), got {omega.shape}"
            )
        if r.shape != (n_actions, n_states):
            raise ValueError(
                f"rewards must be ({n_actions}, {n_states}), got {r.shape}"
            )
        if not 0 < self.discount < 1:
            raise ValueError(f"discount must be in (0, 1), got {self.discount}")
        if np.any(t < -1e-12) or np.any(omega < -1e-12):
            raise ValueError("probabilities must be non-negative")
        if not np.allclose(t.sum(axis=2), 1.0, atol=1e-8):
            raise ValueError("transition rows must sum to 1")
        if not np.allclose(omega.sum(axis=2), 1.0, atol=1e-8):
            raise ValueError("observation rows must sum to 1")

    @property
    def n_actions(self) -> int:
        return self.transitions.shape[0]

    @property
    def n_states(self) -> int:
        return self.transitions.shape[1]

    @property
    def n_observations(self) -> int:
        return self.observations.shape[2]

    def initial_belief(self) -> NDArray[np.float64]:
        """Point mass on the all-clean state ``s_0``."""
        belief = np.zeros(self.n_states)
        belief[0] = 1.0
        return belief


def _snap_probability(p: float) -> float:
    """Snap subnormal-magnitude probabilities to exact 0/1.

    ``scipy.stats.binom.pmf`` overflows internally on denormalized
    probabilities (e.g. 1e-309); rates that close to the boundary are
    indistinguishable from the boundary anyway.
    """
    if p < 1e-12:
        return 0.0
    if p > 1.0 - 1e-12:
        return 1.0
    return p


def _flag_count_pmf(
    n_hacked: int,
    n_clean: int,
    tp_rate: float,
    fp_rate: float,
) -> NDArray[np.float64]:
    """PMF of the flagged-meter count: Binom(s, d) + Binom(n - s, f)."""
    tp = _snap_probability(tp_rate)
    fp = _snap_probability(fp_rate)
    hacked_pmf = stats.binom.pmf(np.arange(n_hacked + 1), n_hacked, tp)
    clean_pmf = stats.binom.pmf(np.arange(n_clean + 1), n_clean, fp)
    return np.convolve(hacked_pmf, clean_pmf)


def build_detection_pomdp(
    n_meters: int,
    *,
    hack_probability: float,
    tp_rate: float,
    fp_rate: float,
    damage_per_meter: float = 1.0,
    repair_fixed_cost: float = 2.0,
    repair_cost_per_meter: float = 1.0,
    discount: float = 0.92,
) -> PomdpModel:
    """Assemble the monitoring POMDP for a fleet of ``n_meters`` meters.

    Parameters
    ----------
    n_meters:
        Fleet size; states and observations run ``0..n_meters``.
    hack_probability:
        Per-slot compromise probability of each clean meter.
    tp_rate, fp_rate:
        Single-event detector quality: per-meter flag probabilities for
        hacked and clean meters respectively.
    damage_per_meter:
        Per-slot loss caused by each hacked meter (mis-scheduled load,
        billing damage).
    repair_fixed_cost, repair_cost_per_meter:
        Labor economics of a repair dispatch.
    discount:
        POMDP discount factor.
    """
    if n_meters < 1:
        raise ValueError(f"n_meters must be >= 1, got {n_meters}")
    if not 0 <= hack_probability <= 1:
        raise ValueError(f"hack_probability must be in [0, 1], got {hack_probability}")
    for name, rate in (("tp_rate", tp_rate), ("fp_rate", fp_rate)):
        if not 0 <= rate <= 1:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
    if damage_per_meter < 0 or repair_fixed_cost < 0 or repair_cost_per_meter < 0:
        raise ValueError("costs must be >= 0")

    n_states = n_meters + 1
    states = np.arange(n_states)
    hack_probability = _snap_probability(hack_probability)

    transitions = np.zeros((2, n_states, n_states))
    for s in range(n_states):
        clean = n_meters - s
        growth = stats.binom.pmf(np.arange(clean + 1), clean, hack_probability)
        transitions[MONITOR, s, s : s + clean + 1] = growth
        # Repair fixes everything, then fresh compromises accrue from zero.
        from_zero = stats.binom.pmf(np.arange(n_meters + 1), n_meters, hack_probability)
        transitions[REPAIR, s, :] = from_zero

    observations = np.zeros((2, n_states, n_states))
    for s in range(n_states):
        pmf = _flag_count_pmf(s, n_meters - s, tp_rate, fp_rate)[:n_states]
        # Guard against numeric truncation of the convolution tail.
        observations[:, s, :] = pmf / pmf.sum()

    rewards = np.zeros((2, n_states))
    rewards[MONITOR] = -damage_per_meter * states
    rewards[REPAIR] = (
        -damage_per_meter * states
        - repair_fixed_cost
        - repair_cost_per_meter * states
    )

    return PomdpModel(
        transitions=transitions,
        observations=observations,
        rewards=rewards,
        discount=discount,
    )
