"""Heuristic monitoring policies (baselines for the POMDP ablation).

The paper's long-term detector picks monitor/repair actions with a POMDP
policy.  These baselines bracket it:

- :class:`NeverRepair` — the "No Detection" column of Table 1;
- :class:`AlwaysRepair` — an upper bound on labor spending;
- :class:`PeriodicRepair` — calendar-based truck rolls, ignoring all
  observations;
- :class:`ObservationThreshold` — repair when the belief-expected number
  of hacked meters crosses a fixed level (a simple certainty-equivalent
  rule).

All expose the same ``action(belief)`` interface as
:class:`~repro.detection.solvers.QmdpPolicy`, so they plug directly into
:class:`~repro.detection.long_term.LongTermDetector`.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

from repro.detection.pomdp import MONITOR, REPAIR


class NeverRepair:
    """Monitor forever; attacks persist (Table 1's no-detection column)."""

    def action(self, belief: NDArray[np.float64]) -> int:
        return MONITOR


class AlwaysRepair:
    """Dispatch a crew every slot, regardless of evidence."""

    def action(self, belief: NDArray[np.float64]) -> int:
        return REPAIR


class PeriodicRepair:
    """Repair every ``period`` slots on a fixed calendar.

    Stateful: each ``action`` call advances the internal clock, matching
    how :class:`LongTermDetector` invokes policies once per slot.
    """

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period
        self._clock = 0

    def action(self, belief: NDArray[np.float64]) -> int:
        self._clock += 1
        if self._clock >= self.period:
            self._clock = 0
            return REPAIR
        return MONITOR


class ObservationThreshold:
    """Repair when the posterior mean hacked count reaches ``threshold``.

    A certainty-equivalent simplification of the POMDP policy: it uses
    the belief (so it benefits from the filter) but ignores the value of
    future information and the repair economics.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def action(self, belief: NDArray[np.float64]) -> int:
        b = np.asarray(belief, dtype=float)
        expected = float(b @ np.arange(b.size))
        return REPAIR if expected >= self.threshold else MONITOR
