"""SVR-based single-event detection (Section 4.1 of the paper).

The detection rule, per meter and time slot:

1. predict the guideline price (net-metering aware or unaware);
2. simulate smart home scheduling under the *predicted* and the
   *received* price vectors;
3. compare the peak-to-average ratios ``P_p`` and ``P_r``;
4. report a cyberattack when ``P_r - P_p > delta_P``.

The scheduling simulation is the full community game (Algorithm 1): the
quadratic tariff spreads load smoothly, so the PAR responds to the
*shape* of the posted prices rather than to winner-take-all slot flips.
Game solutions are memoized by price vector — over a long monitoring run
the same clean or attacked price recurs every slot, so each distinct
price is solved exactly once.

Per-meter checks add zero-mean Gaussian *measurement noise* to the PAR
margin: the utility estimates each household's response from noisy load
telemetry, which is what makes individual meter observations imperfect
and (conditionally) independent — the structure the POMDP observation
model assumes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import GameConfig, SolverConfig
from repro.kernels import KernelBackend
from repro.metrics.par import par, par_increase
from repro.scheduling.batch import solve_games
from repro.scheduling.game import Community, GameResult, SchedulingGame
from repro.simulation.cache import (
    GameSolutionCache,
    solution_key,
    solve_context_key,
    warm_context_key,
)

if TYPE_CHECKING:
    from repro.tariffs import Tariff


class CommunityResponseSimulator:
    """Memoized community-game responses to posted guideline prices.

    Parameters
    ----------
    community:
        The community model used for detection-side simulation.  The
        net-metering-*unaware* detector passes the stripped community
        (``community.without_net_metering()``) — the prior art's model.
    config:
        Game convergence controls.
    sellback_divisor:
        The paper's ``W``.
    seed:
        Seed for the game's (deterministic per-customer) stochastic
        components; two simulators with the same seed and community give
        identical responses.
    cache:
        Game-solution store.  Defaults to a private
        :class:`~repro.simulation.cache.GameSolutionCache`; pass a shared
        instance (e.g. :func:`~repro.simulation.cache.global_game_cache`)
        to reuse solutions across simulators and scenario runs — keys are
        content-addressed over the full solve context, so sharing is
        always safe.
    solver:
        Execution strategy (kernel backend, lockstep batching of
        :meth:`prefetch`, equilibrium warm-starting).  The default is
        bitwise-identical to the historical sequential path; only
        ``solver.warm_start`` changes results, and warm solutions are
        namespaced away from cold ones in the cache.
    tariff:
        Optional pricing rule from :mod:`repro.tariffs`.  ``None`` (the
        default) is the paper's flat net-metering tariff through the
        historical code path; a non-``None`` tariff reprices every game
        and is fingerprinted into the cache context key.
    """

    def __init__(
        self,
        community: Community,
        *,
        config: GameConfig | None = None,
        sellback_divisor: float = 2.0,
        seed: int = 0,
        cache: GameSolutionCache | None = None,
        solver: SolverConfig | None = None,
        tariff: "Tariff | None" = None,
    ) -> None:
        self.community = community
        self.config = config if config is not None else GameConfig()
        self.sellback_divisor = sellback_divisor
        self.seed = seed
        self.cache = cache if cache is not None else GameSolutionCache()
        self.solver = solver if solver is not None else SolverConfig()
        self.tariff = tariff
        self._context_key = solve_context_key(
            community,
            self.config,
            sellback_divisor=sellback_divisor,
            seed=seed,
            tariff=tariff,
        )
        if self.solver.warm_start:
            self._context_key = warm_context_key(
                self._context_key,
                ce_std_scale=self.solver.ce_warm_std_scale,
                max_distance=self.solver.warm_start_max_distance,
            )
        self._keys_seen: set[str] = set()

    @property
    def horizon(self) -> int:
        return self.community.horizon

    @property
    def cache_size(self) -> int:
        """Number of distinct price vectors this simulator has solved."""
        return len(self._keys_seen)

    @property
    def backend(self) -> KernelBackend | str | None:
        """Kernel backend name forwarded to every solve."""
        return self.solver.backend

    def response(self, prices: ArrayLike) -> GameResult:
        """Game solution for a posted price vector (memoized)."""
        p = np.asarray(prices, dtype=float)
        if p.shape != (self.horizon,):
            raise ValueError(f"prices must have shape ({self.horizon},), got {p.shape}")
        key = solution_key(self._context_key, p)
        self._keys_seen.add(key)
        result = self.cache.get_or_solve(
            key, lambda: self._solve(p), community=self.community
        )
        self.cache.register_prices(self._context_key, np.maximum(p, 0.0), key)
        return result

    def prefetch(self, price_vectors: Iterable[ArrayLike]) -> int:
        """Solve every not-yet-cached price vector in one lockstep batch.

        Returns the number of games solved.  With ``solver.batch_games``
        (the default) the pending solves run through
        :func:`repro.scheduling.batch.solve_games`, which is
        bitwise-identical to solving them one at a time — prefetching is
        purely a wall-clock optimization, and the cache's hit/miss totals
        match the sequential path (each batched solve books one miss, the
        later lookup one hit).
        """
        pending: OrderedDict[str, NDArray[np.float64]] = OrderedDict()
        for prices in price_vectors:
            p = np.asarray(prices, dtype=float)
            if p.shape != (self.horizon,):
                raise ValueError(
                    f"prices must have shape ({self.horizon},), got {p.shape}"
                )
            key = solution_key(self._context_key, p)
            if key in pending:
                continue
            if self.cache.peek(key, community=self.community) is not None:
                self.cache.register_prices(
                    self._context_key, np.maximum(p, 0.0), key
                )
                continue
            pending[key] = p
        if not pending:
            return 0
        if not self.solver.batch_games or len(pending) == 1:
            for key, p in pending.items():
                self.cache.put(key, self._solve(p), community=self.community)
                self.cache.register_prices(
                    self._context_key, np.maximum(p, 0.0), key
                )
            return len(pending)
        clamped = [np.maximum(p, 0.0) for p in pending.values()]
        warm_starts: Sequence[GameResult | None] = [
            self._warm_start(p) for p in clamped
        ]
        results = solve_games(
            self.community,
            clamped,
            sellback_divisor=self.sellback_divisor,
            config=self.config,
            seed=self.seed,
            backend=self.solver.backend,
            warm_starts=warm_starts,
            ce_std_scale=self.solver.ce_warm_std_scale,
            tariff=self.tariff,
        )
        for (key, p), result in zip(pending.items(), results):
            self.cache.put(key, result, community=self.community)
            self.cache.register_prices(
                self._context_key, np.maximum(p, 0.0), key
            )
        return len(pending)

    def _warm_start(self, clamped: NDArray[np.float64]) -> GameResult | None:
        """Nearest cached equilibrium usable as a warm start, if enabled."""
        if not self.solver.warm_start:
            return None
        near = self.cache.nearest(
            self._context_key,
            clamped,
            max_distance=self.solver.warm_start_max_distance,
        )
        return near.result if near is not None else None

    def _solve(self, p: NDArray[np.float64]) -> GameResult:
        clamped = np.maximum(p, 0.0)
        warm = self._warm_start(clamped)
        game = SchedulingGame(
            self.community,
            clamped,
            sellback_divisor=self.sellback_divisor,
            config=self.config,
            backend=self.solver.backend,
            tariff=self.tariff,
        )
        return game.solve(
            rng=np.random.default_rng(self.seed),
            warm_start=warm,
            ce_std_scale=self.solver.ce_warm_std_scale if warm is not None else 1.0,
        )

    def grid_par(self, prices: ArrayLike) -> float:
        """PAR of the grid demand the community would draw under ``prices``."""
        return par(self.response(prices).grid_demand)


@dataclass(frozen=True)
class SingleEventDetection:
    """Outcome of one PAR-comparison check."""

    received_par: float
    predicted_par: float
    threshold: float
    noise: float = 0.0

    @property
    def margin(self) -> float:
        """``P_r - P_p`` plus the check's measurement noise."""
        return par_increase(self.received_par, self.predicted_par) + self.noise

    @property
    def flagged(self) -> bool:
        """True when the check reports a cyberattack."""
        return self.margin > self.threshold


class SingleEventDetector:
    """PAR-threshold detector bound to one predicted-price vector.

    The check compares two quantities with different provenance:

    - ``P_r`` — the PAR the *real* community (always net-metering
      equipped) would produce under the received price.  The utility can
      forecast this from measured behaviour, so it is simulated with the
      ground-truth community model.
    - ``P_p`` — the PAR the *detector's own model* expects under its
      predicted price.  The net-metering-unaware baseline both predicts
      the price without renewable features and simulates on a community
      model without PV or batteries (the paper's ref. [8]); the resulting
      systematic offset between ``P_p`` and the benign ``P_r`` is exactly
      how ignoring net metering compromises detection (Section 4).

    Parameters
    ----------
    received_simulator:
        Ground-truth community response simulator (net metering included).
    predicted_prices:
        The predictor's guideline-price forecast for the day.
    predicted_simulator:
        The detector's own community model; defaults to
        ``received_simulator`` (the aware detector).  ``P_p`` is computed
        once at construction.
    threshold:
        The paper's ``delta_P``.
    margin_noise_std:
        Standard deviation of the per-check measurement noise.
    """

    def __init__(
        self,
        received_simulator: CommunityResponseSimulator,
        predicted_prices: ArrayLike,
        *,
        predicted_simulator: CommunityResponseSimulator | None = None,
        threshold: float = 0.08,
        margin_noise_std: float = 0.03,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if margin_noise_std < 0:
            raise ValueError(f"margin_noise_std must be >= 0, got {margin_noise_std}")
        self.simulator = received_simulator
        predicted_sim = (
            predicted_simulator if predicted_simulator is not None else received_simulator
        )
        if predicted_sim.horizon != received_simulator.horizon:
            raise ValueError(
                "received and predicted simulators disagree on horizon: "
                f"{received_simulator.horizon} vs {predicted_sim.horizon}"
            )
        self.predicted_prices = np.asarray(predicted_prices, dtype=float)
        if self.predicted_prices.shape != (received_simulator.horizon,):
            raise ValueError(
                f"predicted_prices must have shape ({received_simulator.horizon},), "
                f"got {self.predicted_prices.shape}"
            )
        self.threshold = threshold
        self.margin_noise_std = margin_noise_std
        self.predicted_par = predicted_sim.grid_par(self.predicted_prices)

    def draw_noise(self, rng: np.random.Generator | None) -> float:
        """Draw one check's measurement noise (0 without an rng).

        Exposed so callers can split a check into its two halves — draw
        the noise now, evaluate the (cache-heavy) PAR comparison later —
        without perturbing the shared rng's draw sequence.  ``check`` is
        exactly ``evaluate(received, noise=draw_noise(rng))``.
        """
        if rng is not None and self.margin_noise_std > 0:
            return float(rng.normal(0.0, self.margin_noise_std))
        return 0.0

    def evaluate(
        self,
        received_prices: ArrayLike,
        *,
        noise: float = 0.0,
    ) -> SingleEventDetection:
        """Run the PAR comparison with an externally drawn noise term."""
        received = np.asarray(received_prices, dtype=float)
        if received.shape != self.predicted_prices.shape:
            raise ValueError(
                f"received prices shape {received.shape} != predicted "
                f"{self.predicted_prices.shape}"
            )
        return SingleEventDetection(
            received_par=self.simulator.grid_par(received),
            predicted_par=self.predicted_par,
            threshold=self.threshold,
            noise=noise,
        )

    def check(
        self,
        received_prices: ArrayLike,
        *,
        rng: np.random.Generator | None = None,
    ) -> SingleEventDetection:
        """Run the PAR comparison for one received-price vector."""
        received = np.asarray(received_prices, dtype=float)
        if received.shape != self.predicted_prices.shape:
            raise ValueError(
                f"received prices shape {received.shape} != predicted "
                f"{self.predicted_prices.shape}"
            )
        return self.evaluate(received, noise=self.draw_noise(rng))

    def check_meters(
        self,
        received_per_meter: NDArray[np.float64],
        *,
        rng: np.random.Generator | None = None,
    ) -> list[SingleEventDetection]:
        """Full per-meter check outcomes (the audit trail's evidence).

        ``received_per_meter`` has shape ``(n_meters, horizon)``: row ``i``
        is the guideline-price vector meter ``i`` received.  Identical
        rows reuse one cached game solution; the measurement noise is
        drawn independently per meter, in ascending meter order — the
        exact draw sequence of :meth:`observe_meters`, so collecting the
        evidence never changes a verdict.
        """
        received = np.asarray(received_per_meter, dtype=float)
        if received.ndim != 2 or received.shape[1] != self.predicted_prices.size:
            raise ValueError(
                f"received_per_meter must have shape (n_meters, "
                f"{self.predicted_prices.size}), got {received.shape}"
            )
        # Solve the distinct rows as one lockstep batch before the
        # per-meter loop; every check below is then a cache hit.  The
        # batch is bitwise-identical to solving inside the loop, and it
        # consumes nothing from ``rng``, so the noise sequence is
        # untouched.
        self.simulator.prefetch(received[i] for i in range(received.shape[0]))
        return [self.check(received[i], rng=rng) for i in range(received.shape[0])]

    def observe_meters(
        self,
        received_per_meter: NDArray[np.float64],
        *,
        rng: np.random.Generator | None = None,
    ) -> NDArray[np.bool_]:
        """Flag each monitored meter; returns a boolean mask.

        Delegates to :meth:`check_meters` and keeps only the flags.
        """
        checks = self.check_meters(received_per_meter, rng=rng)
        flags = np.zeros(len(checks), dtype=bool)
        for i, detection in enumerate(checks):
            flags[i] = detection.flagged
        return flags
