"""Cyberattack detection: single-event (SVR + PAR) and long-term (POMDP)."""

from repro.detection.long_term import LongTermDetector, MonitoringStep
from repro.detection.policies import (
    AlwaysRepair,
    NeverRepair,
    ObservationThreshold,
    PeriodicRepair,
)
from repro.detection.pomdp import PomdpModel, build_detection_pomdp
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetection,
    SingleEventDetector,
)
from repro.detection.roc import (
    ThresholdOperatingPoint,
    ThresholdSweep,
    sweep_thresholds,
)
from repro.detection.solvers import (
    BeliefFilter,
    PbviPolicy,
    QmdpPolicy,
    value_iteration_mdp,
)

__all__ = [
    "AlwaysRepair",
    "BeliefFilter",
    "CommunityResponseSimulator",
    "LongTermDetector",
    "MonitoringStep",
    "NeverRepair",
    "ObservationThreshold",
    "PbviPolicy",
    "PeriodicRepair",
    "PomdpModel",
    "QmdpPolicy",
    "SingleEventDetection",
    "SingleEventDetector",
    "ThresholdOperatingPoint",
    "ThresholdSweep",
    "build_detection_pomdp",
    "sweep_thresholds",
    "value_iteration_mdp",
]
