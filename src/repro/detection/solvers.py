"""POMDP solvers: belief filtering, QMDP and point-based value iteration.

The monitoring POMDP is small (``N + 1`` states, two actions), so two
standard approximate solvers recover near-optimal policies:

- :class:`QmdpPolicy` solves the fully observable MDP exactly and scores
  actions by the belief-weighted Q-values.  It underestimates the value
  of information but is excellent when observations are informative.
- :class:`PbviPolicy` performs point-based value iteration (Pineau et
  al.) over a sampled belief set, keeping one alpha-vector per belief
  point; it accounts for future observation uncertainty and is the
  reference solver for the ablation bench.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.detection.pomdp import PomdpModel


def value_iteration_mdp(
    model: PomdpModel,
    *,
    tol: float = 1e-8,
    max_iterations: int = 10_000,
) -> NDArray[np.float64]:
    """Exact Q-values of the underlying (fully observable) MDP.

    Returns
    -------
    ``Q`` of shape ``(n_actions, n_states)``.
    """
    q = np.zeros((model.n_actions, model.n_states))
    for _ in range(max_iterations):
        v = q.max(axis=0)
        q_next = model.rewards + model.discount * model.transitions @ v
        delta = float(np.max(np.abs(q_next - q)))
        q = q_next
        if delta < tol:
            break
    return q


class BeliefFilter:
    """Exact Bayesian belief update for a finite POMDP."""

    def __init__(self, model: PomdpModel) -> None:
        self.model = model
        self._belief = model.initial_belief()

    @property
    def belief(self) -> NDArray[np.float64]:
        """Current belief distribution over states (copy)."""
        return self._belief.copy()

    def reset(self, belief: ArrayLike | None = None) -> None:
        """Reset to a given belief (default: all-clean point mass)."""
        if belief is None:
            self._belief = self.model.initial_belief()
            return
        b = np.asarray(belief, dtype=float)
        if b.shape != (self.model.n_states,):
            raise ValueError(
                f"belief must have shape ({self.model.n_states},), got {b.shape}"
            )
        if np.any(b < 0) or not np.isclose(b.sum(), 1.0):
            raise ValueError("belief must be a probability distribution")
        self._belief = b.copy()

    def update(self, action: int, observation: int) -> NDArray[np.float64]:
        """Condition the belief on one (action, observation) pair."""
        model = self.model
        if not 0 <= action < model.n_actions:
            raise ValueError(f"action {action} out of range")
        if not 0 <= observation < model.n_observations:
            raise ValueError(f"observation {observation} out of range")
        predicted = self._belief @ model.transitions[action]
        unnormalized = predicted * model.observations[action, :, observation]
        total = unnormalized.sum()
        if total <= 1e-300:
            # The observation had (numerically) zero likelihood under the
            # model; fall back to the transition prediction rather than
            # dividing by zero.
            self._belief = predicted / predicted.sum()
        else:
            self._belief = unnormalized / total
        return self.belief

    def expected_state(self) -> float:
        """Posterior mean number of hacked meters."""
        return float(self._belief @ np.arange(self.model.n_states))


class QmdpPolicy:
    """QMDP approximation: belief-weighted MDP Q-values."""

    def __init__(self, model: PomdpModel) -> None:
        self.model = model
        self.q_values = value_iteration_mdp(model)

    def action(self, belief: ArrayLike) -> int:
        """Greedy action under the belief."""
        b = np.asarray(belief, dtype=float)
        if b.shape != (self.model.n_states,):
            raise ValueError(
                f"belief must have shape ({self.model.n_states},), got {b.shape}"
            )
        scores = self.q_values @ b
        return int(np.argmax(scores))

    def value(self, belief: ArrayLike) -> float:
        """Approximate value of a belief."""
        b = np.asarray(belief, dtype=float)
        return float(np.max(self.q_values @ b))


class PbviPolicy:
    """Point-based value iteration over a sampled belief set.

    Parameters
    ----------
    model:
        The POMDP.
    n_beliefs:
        Size of the belief set (corner beliefs are always included).
    n_backups:
        Number of full backup sweeps.
    rng:
        Randomness for the belief-set sampling.
    """

    def __init__(
        self,
        model: PomdpModel,
        *,
        n_beliefs: int = 64,
        n_backups: int = 30,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_beliefs < 1:
            raise ValueError(f"n_beliefs must be >= 1, got {n_beliefs}")
        if n_backups < 1:
            raise ValueError(f"n_backups must be >= 1, got {n_backups}")
        self.model = model
        rng = rng if rng is not None else np.random.default_rng(0)
        self.belief_set = self._sample_beliefs(n_beliefs, rng)
        self.alpha_vectors, self.alpha_actions = self._solve(n_backups)

    def _sample_beliefs(
        self, n_beliefs: int, rng: np.random.Generator
    ) -> NDArray[np.float64]:
        n_states = self.model.n_states
        beliefs = [np.eye(n_states)[0]]  # the initial all-clean belief
        # Corner beliefs give the set full support coverage.
        for s in range(1, n_states):
            beliefs.append(np.eye(n_states)[s])
        while len(beliefs) < max(n_beliefs, n_states):
            beliefs.append(rng.dirichlet(np.ones(n_states)))
        return np.stack(beliefs[: max(n_beliefs, n_states)])

    def _solve(self, n_backups: int) -> tuple[NDArray[np.float64], NDArray[np.int_]]:
        model = self.model
        n_actions, n_states = model.n_actions, model.n_states
        n_observations = model.n_observations
        # One alpha-vector per belief point.  Initialize with a uniform
        # pessimistic bound so the value function starts as a valid lower
        # bound and backups only tighten it.
        worst = float(model.rewards.min()) / (1.0 - model.discount)
        alphas = np.full((self.belief_set.shape[0], model.n_states), worst)
        actions = np.zeros(self.belief_set.shape[0], dtype=int)
        # Precompute T[a] * Omega[a][:, o] products used in each backup.
        t_omega = np.empty((n_actions, n_observations, n_states, n_states))
        for a in range(n_actions):
            for o in range(n_observations):
                t_omega[a, o] = model.transitions[a] * model.observations[a, :, o][None, :]

        for _ in range(n_backups):
            new_alphas = np.empty_like(alphas)
            new_actions = np.empty_like(actions)
            # g[a, o, k, s] = sum_{s'} T[a][s, s'] Omega[a][s', o] alpha_k[s']
            g = np.einsum("aoij,kj->aoki", t_omega, alphas)
            for b_index, belief in enumerate(self.belief_set):
                best_value = -np.inf
                best_alpha = None
                best_action = 0
                for a in range(n_actions):
                    # For each observation pick the alpha maximizing b . g
                    scores = g[a] @ belief  # (n_observations, n_alphas)
                    chosen = np.argmax(scores, axis=1)
                    backed = model.rewards[a] + model.discount * np.sum(
                        g[a, np.arange(n_observations), chosen, :], axis=0
                    )
                    value = float(backed @ belief)
                    if value > best_value:
                        best_value = value
                        best_alpha = backed
                        best_action = a
                new_alphas[b_index] = best_alpha
                new_actions[b_index] = best_action
            if np.allclose(new_alphas, alphas, atol=1e-10):
                alphas, actions = new_alphas, new_actions
                break
            alphas, actions = new_alphas, new_actions
        return alphas, actions

    def action(self, belief: ArrayLike) -> int:
        """Greedy action: the action of the best alpha-vector at the belief."""
        b = np.asarray(belief, dtype=float)
        if b.shape != (self.model.n_states,):
            raise ValueError(
                f"belief must have shape ({self.model.n_states},), got {b.shape}"
            )
        scores = self.alpha_vectors @ b
        return int(self.alpha_actions[int(np.argmax(scores))])

    def value(self, belief: ArrayLike) -> float:
        """Lower-bound value of a belief under the PBVI alpha-vectors."""
        b = np.asarray(belief, dtype=float)
        return float(np.max(self.alpha_vectors @ b))
