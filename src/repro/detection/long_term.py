"""POMDP-based long-term detection loop (Section 4.2, Figure 2).

The long-term detector consumes the single-event layer's per-slot flag
counts as POMDP observations, maintains an exact belief over the number
of hacked meters, and picks monitor/repair actions with a POMDP policy
(QMDP by default).  Repairs are reported back to the caller, who applies
them to the ground-truth hacking process and charges labor cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np
from numpy.typing import NDArray

from repro.detection.pomdp import MONITOR, REPAIR, PomdpModel
from repro.detection.solvers import BeliefFilter, QmdpPolicy


class PomdpPolicy(Protocol):
    """Anything mapping a belief to an action index (QMDP, PBVI, ...)."""

    def action(self, belief: NDArray[np.float64]) -> int: ...


@dataclass(frozen=True)
class MonitoringStep:
    """One slot of the long-term detection loop."""

    slot: int
    observation: int
    action: int
    belief_mean: float

    @property
    def repaired(self) -> bool:
        return self.action == REPAIR


class LongTermDetector:
    """Belief-tracking monitor over a fleet of smart meters.

    Parameters
    ----------
    model:
        The monitoring POMDP (see
        :func:`repro.detection.pomdp.build_detection_pomdp`).
    policy:
        Action selector; defaults to a :class:`QmdpPolicy` on ``model``.
    """

    def __init__(self, model: PomdpModel, *, policy: PomdpPolicy | None = None) -> None:
        self.model = model
        self.policy = policy if policy is not None else QmdpPolicy(model)
        self._filter = BeliefFilter(model)
        self._last_action = MONITOR
        self._slot = 0
        self._steps: list[MonitoringStep] = []

    @property
    def belief(self) -> NDArray[np.float64]:
        return self._filter.belief

    @property
    def steps(self) -> tuple[MonitoringStep, ...]:
        """Full monitoring trace so far."""
        return tuple(self._steps)

    @property
    def n_repairs(self) -> int:
        """Number of repair dispatches issued so far."""
        return sum(1 for step in self._steps if step.repaired)

    def reset(self) -> None:
        """Forget all history and return to the all-clean belief."""
        self._filter.reset()
        self._last_action = MONITOR
        self._slot = 0
        self._steps = []

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable runtime state (belief, last action, trace).

        The model and policy are *not* included: they are deterministic
        functions of the build configuration, so a resume path rebuilds
        them and then restores this state via :meth:`load_state`.
        """
        return {
            "belief": self._filter.belief.tolist(),
            "last_action": int(self._last_action),
            "slot": self._slot,
            "steps": [
                {
                    "slot": step.slot,
                    "observation": step.observation,
                    "action": step.action,
                    "belief_mean": step.belief_mean,
                }
                for step in self._steps
            ],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore runtime state captured by :meth:`state_dict`."""
        self._filter.reset(np.asarray(state["belief"], dtype=float))
        self._last_action = int(state["last_action"])
        self._slot = int(state["slot"])
        self._steps = [
            MonitoringStep(
                slot=int(step["slot"]),
                observation=int(step["observation"]),
                action=int(step["action"]),
                belief_mean=float(step["belief_mean"]),
            )
            for step in state["steps"]
        ]

    def step(self, observation: int) -> MonitoringStep:
        """Consume one observation and decide the next action.

        Parameters
        ----------
        observation:
            Flag count from the single-event layer, in
            ``[0, n_observations)``.

        Returns
        -------
        The recorded step; ``step.repaired`` tells the caller to fix the
        fleet (and reset the ground-truth process).
        """
        if not 0 <= observation < self.model.n_observations:
            raise ValueError(
                f"observation {observation} out of range "
                f"[0, {self.model.n_observations})"
            )
        self._filter.update(self._last_action, observation)
        action = self.policy.action(self._filter.belief)
        step = MonitoringStep(
            slot=self._slot,
            observation=observation,
            action=action,
            belief_mean=self._filter.expected_state(),
        )
        self._steps.append(step)
        self._last_action = action
        self._slot += 1
        return step
