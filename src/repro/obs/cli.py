"""The ``repro trace`` subcommand: query an audit trail from the shell.

Reads a detection-audit JSONL file (written by ``repro stream --audit``
or by a service started with tracing on) and prints the records —
filtered by slot/day/kind — either as a compact table or as raw JSON
lines.  For a *live* service, ``GET /trace`` serves the same records
over HTTP.

Chrome-trace JSON files (``{"traceEvents": [...]}`` — span-tracer
exports, including the merged fleet trace from ``repro fleet serve
--trace-out`` / the aggregator's ``GET /trace``) are auto-detected and
summarised instead: the deterministic pid/tid grid (one process per
shard, one thread lane per community) and per-name span counts and
durations.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.audit import load_audit_jsonl


def _format_row(record: dict[str, object]) -> str:
    slot = record.get("slot", "?")
    day = record.get("day", "?")
    kind = str(record.get("kind", "?"))
    if kind == "gap":
        return f"{slot:>5}  {day:>4}  gap        reason={record.get('gap_reason')}"
    observation = record.get("observation")
    action = record.get("action")
    belief = record.get("belief_after")
    belief_text = "-" if not isinstance(belief, (int, float)) else f"{belief:.3f}"
    meters = record.get("meters")
    margin_text = "-"
    if isinstance(meters, list) and meters:
        margins = [
            m.get("margin") for m in meters if isinstance(m, dict)
        ]
        numeric = [m for m in margins if isinstance(m, (int, float))]
        if numeric:
            margin_text = f"{max(numeric):+.4f}"
    repaired = "repair" if record.get("repaired") else ""
    restored = "restored" if record.get("restored") else ""
    return (
        f"{slot:>5}  {day:>4}  detection  obs={observation} action={action} "
        f"belief={belief_text} max_margin={margin_text} {repaired}{restored}"
    ).rstrip()


def _summarize_chrome_trace(payload: dict[str, object], as_json: bool) -> int:
    """Print a pid/tid-grid + per-span summary of a Chrome-trace export."""
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        print("bad chrome trace: traceEvents must be a list")
        return 2
    processes: dict[int, str] = {}
    threads: dict[tuple[int, int], str] = {}
    spans: dict[str, list[float]] = {}
    n_x = 0
    for event in events:
        if not isinstance(event, dict):
            continue
        phase = event.get("ph")
        pid = int(event.get("pid", 0))
        tid = int(event.get("tid", 0))
        if phase == "M":
            args = event.get("args")
            name = args.get("name") if isinstance(args, dict) else None
            if event.get("name") == "process_name" and isinstance(name, str):
                processes[pid] = name
            elif event.get("name") == "thread_name" and isinstance(name, str):
                threads[(pid, tid)] = name
        elif phase == "X":
            n_x += 1
            name = str(event.get("name", "?"))
            dur = event.get("dur")
            spans.setdefault(name, []).append(
                float(dur) if isinstance(dur, (int, float)) else 0.0
            )
    if as_json:
        summary = {
            "processes": {str(pid): processes[pid] for pid in sorted(processes)},
            "threads": {
                f"{pid}/{tid}": threads[(pid, tid)]
                for pid, tid in sorted(threads)
            },
            "spans": {
                name: {
                    "count": len(durations),
                    "total_us": sum(durations),
                }
                for name, durations in sorted(spans.items())
            },
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    run_id = payload.get("metadata", {})
    if isinstance(run_id, dict):
        run_id = run_id.get("run_id", "?")
    print(f"chrome trace  run_id={run_id}  {n_x} span(s)")
    for pid in sorted(processes):
        print(f"  pid {pid:>3}  {processes[pid]}")
        for (tpid, tid), name in sorted(threads.items()):
            if tpid == pid:
                print(f"    tid {tid:>3}  {name}")
    print(f"{'span':<24} {'count':>7} {'total ms':>10} {'mean us':>10}")
    for name, durations in sorted(spans.items()):
        total = sum(durations)
        mean = total / len(durations) if durations else 0.0
        print(f"{name:<24} {len(durations):>7} {total / 1000:>10.3f} {mean:>10.1f}")
    return 0


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro trace`` (and ``python -m repro trace``)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="query a detection audit trail (JSONL) from disk",
    )
    parser.add_argument("path", type=Path, help="audit JSONL file to read")
    parser.add_argument(
        "--since", type=int, default=0, help="only records with slot >= SINCE"
    )
    parser.add_argument("--slot", type=int, default=None, help="one exact slot")
    parser.add_argument("--day", type=int, default=None, help="one exact day")
    parser.add_argument(
        "--kind",
        choices=("detection", "gap"),
        default=None,
        help="only this record kind",
    )
    parser.add_argument(
        "--gaps-only",
        action="store_true",
        help="shorthand for --kind gap",
    )
    parser.add_argument("--limit", type=int, default=None)
    parser.add_argument("--format", choices=("table", "json"), default="table")
    args = parser.parse_args(argv)

    if not args.path.is_file():
        print(f"no such audit file: {args.path}")
        return 2
    # A span-tracer export (single JSON object with "traceEvents") gets a
    # trace summary; anything else is treated as a detection-audit JSONL.
    try:
        first = args.path.read_text(encoding="utf-8").lstrip()[:1]
    except OSError as exc:  # pragma: no cover - filesystem race
        print(f"cannot read {args.path}: {exc}")
        return 2
    if first == "{":
        try:
            payload = json.loads(args.path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return _summarize_chrome_trace(payload, args.format == "json")
    try:
        records = load_audit_jsonl(args.path)
    except ValueError as exc:
        print(f"bad audit file: {exc}")
        return 2
    kind = "gap" if args.gaps_only else args.kind
    selected = [
        rec
        for rec in records
        if rec.get("slot", -1) >= args.since
        and (args.slot is None or rec.get("slot") == args.slot)
        and (args.day is None or rec.get("day") == args.day)
        and (kind is None or rec.get("kind") == kind)
    ]
    if args.limit is not None:
        selected = selected[: args.limit]
    if args.format == "json":
        for rec in selected:
            print(json.dumps(rec))
    else:
        print(f"{'slot':>5}  {'day':>4}  record")
        for rec in selected:
            print(_format_row(rec))
        print(f"{len(selected)} record(s) of {len(records)} in {args.path}")
    return 0
