"""The ``repro trace`` subcommand: query an audit trail from the shell.

Reads a detection-audit JSONL file (written by ``repro stream --audit``
or by a service started with tracing on) and prints the records —
filtered by slot/day/kind — either as a compact table or as raw JSON
lines.  For a *live* service, ``GET /trace`` serves the same records
over HTTP.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.obs.audit import load_audit_jsonl


def _format_row(record: dict[str, object]) -> str:
    slot = record.get("slot", "?")
    day = record.get("day", "?")
    kind = str(record.get("kind", "?"))
    if kind == "gap":
        return f"{slot:>5}  {day:>4}  gap        reason={record.get('gap_reason')}"
    observation = record.get("observation")
    action = record.get("action")
    belief = record.get("belief_after")
    belief_text = "-" if not isinstance(belief, (int, float)) else f"{belief:.3f}"
    meters = record.get("meters")
    margin_text = "-"
    if isinstance(meters, list) and meters:
        margins = [
            m.get("margin") for m in meters if isinstance(m, dict)
        ]
        numeric = [m for m in margins if isinstance(m, (int, float))]
        if numeric:
            margin_text = f"{max(numeric):+.4f}"
    repaired = "repair" if record.get("repaired") else ""
    restored = "restored" if record.get("restored") else ""
    return (
        f"{slot:>5}  {day:>4}  detection  obs={observation} action={action} "
        f"belief={belief_text} max_margin={margin_text} {repaired}{restored}"
    ).rstrip()


def trace_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro trace`` (and ``python -m repro trace``)."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="query a detection audit trail (JSONL) from disk",
    )
    parser.add_argument("path", type=Path, help="audit JSONL file to read")
    parser.add_argument(
        "--since", type=int, default=0, help="only records with slot >= SINCE"
    )
    parser.add_argument("--slot", type=int, default=None, help="one exact slot")
    parser.add_argument("--day", type=int, default=None, help="one exact day")
    parser.add_argument(
        "--kind",
        choices=("detection", "gap"),
        default=None,
        help="only this record kind",
    )
    parser.add_argument(
        "--gaps-only",
        action="store_true",
        help="shorthand for --kind gap",
    )
    parser.add_argument("--limit", type=int, default=None)
    parser.add_argument("--format", choices=("table", "json"), default="table")
    args = parser.parse_args(argv)

    if not args.path.is_file():
        print(f"no such audit file: {args.path}")
        return 2
    try:
        records = load_audit_jsonl(args.path)
    except ValueError as exc:
        print(f"bad audit file: {exc}")
        return 2
    kind = "gap" if args.gaps_only else args.kind
    selected = [
        rec
        for rec in records
        if rec.get("slot", -1) >= args.since
        and (args.slot is None or rec.get("slot") == args.slot)
        and (args.day is None or rec.get("day") == args.day)
        and (kind is None or rec.get("kind") == kind)
    ]
    if args.limit is not None:
        selected = selected[: args.limit]
    if args.format == "json":
        for rec in selected:
            print(json.dumps(rec))
    else:
        print(f"{'slot':>5}  {'day':>4}  record")
        for rec in selected:
            print(_format_row(rec))
        print(f"{len(selected)} record(s) of {len(records)} in {args.path}")
    return 0
