"""Low-overhead hierarchical span tracer with Chrome trace-event export.

The tracer records *spans* — named, nested intervals covering the
reproduction's structural units (run → game round → customer schedule →
CE/DP solve on the batch side; stream run → day → slot → detector update
on the streaming side).  It is **off by default**: every instrumentation
site calls ``TRACER.span(...)``, which returns a shared no-op context
manager while disabled, so the hot paths pay one attribute check and
nothing else, and golden-master digests stay bitwise identical.

Design constraints baked in:

- **Deterministic span ids** — a per-run sequence counter, never wall
  clock or randomness (the repro-lint DET rules apply here too).  Two
  traced runs of the same workload produce identically-numbered spans.
- **Monotonic timestamps** — ``time.perf_counter`` relative to the
  moment tracing was enabled (wall-clock functions are banned outside
  the service layer by DET002).
- **Perfetto-loadable export** — :meth:`Tracer.to_chrome_trace` emits
  the Chrome trace-event JSON object format (``X`` complete events with
  microsecond ``ts``/``dur``), which https://ui.perfetto.dev opens
  directly.

Usage::

    from repro.obs import TRACER

    TRACER.enable(run_id="fig6-bench-seed7")
    with TRACER.span("scenario.run", detector="aware"):
        ...
    TRACER.write("trace.json")
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from functools import wraps
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, TypeVar

_AttrValue = Any
_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class Span:
    """One recorded interval: name, position in the hierarchy, timing."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_us: int
    end_us: int | None = None
    attrs: dict[str, _AttrValue] = field(default_factory=dict)

    @property
    def duration_us(self) -> int:
        """Microseconds between start and end (0 while still open)."""
        if self.end_us is None:
            return 0
        return self.end_us - self.start_us

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record (the shape written to trace exports)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


@dataclass(frozen=True)
class TraceContext:
    """Compact cross-process trace context (rides envelope payloads).

    Carries just enough to stitch a remote child span under a local
    parent: the originating run id and the parent span id.  A receiver
    only honours the parent link when the run ids match — two unrelated
    traces never splice.
    """

    run_id: str
    span_id: int

    def to_dict(self) -> dict[str, Any]:
        return {"run_id": self.run_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TraceContext":
        unknown = set(payload) - {"run_id", "span_id"}
        if unknown:
            raise ValueError(f"unknown trace-context fields: {sorted(unknown)}")
        run_id = payload.get("run_id")
        span_id = payload.get("span_id")
        if not isinstance(run_id, str) or not run_id:
            raise ValueError(f"trace-context run_id must be a non-empty string, got {run_id!r}")
        if isinstance(span_id, bool) or not isinstance(span_id, int) or span_id < 1:
            raise ValueError(f"trace-context span_id must be a positive int, got {span_id!r}")
        return cls(run_id=run_id, span_id=span_id)


class _LiveSpan:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "_parent_id", "_span_id")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        attrs: dict[str, _AttrValue],
        parent_id: int | None = None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self._parent_id = parent_id
        self._span_id: int | None = None

    def __enter__(self) -> Span:
        span = self._tracer._open(
            self._name, self._category, self._attrs, parent_id=self._parent_id
        )
        self._span_id = span.span_id
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if self._span_id is not None:
            self._tracer._close(self._span_id)
        return False


class Tracer:
    """Hierarchical span recorder with a near-free disabled path.

    Spans opened via :meth:`span` nest through a per-thread stack (the
    lexical hierarchy); :meth:`begin`/:meth:`end` open *detached* spans
    for intervals that outlive any lexical scope (a streaming day spans
    many pump calls).  All span ids come from one deterministic sequence
    counter, so identical workloads yield identical traces up to
    timing.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.run_id: str | None = None
        self.metadata: dict[str, Any] = {}
        self._spans: list[Span] = []
        self._open_spans: dict[int, Span] = {}
        self._next_id = 1
        self._origin = 0.0
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def enable(
        self, *, run_id: str = "run", metadata: dict[str, Any] | None = None
    ) -> None:
        """Start a fresh trace: clears prior spans and resets the id
        sequence and the time origin."""
        with self._lock:
            self.enabled = True
            self.run_id = run_id
            self.metadata = dict(metadata) if metadata else {}
            self._spans = []
            self._open_spans = {}
            self._next_id = 1
            self._origin = time.perf_counter()
            self._local = threading.local()

    def disable(self) -> None:
        """Stop recording (the collected spans stay readable)."""
        with self._lock:
            self.enabled = False

    # ------------------------------------------------------------------
    def _now_us(self) -> int:
        return int((time.perf_counter() - self._origin) * 1_000_000)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span_id(self) -> int | None:
        """Innermost open stack span on this thread (None when idle)."""
        if not self.enabled:  # repro: noqa[CONC001] lock-free fast path; a stale read costs one extra no-op span check, never corruption
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """Propagatable context for the innermost open span, if any."""
        span_id = self.current_span_id
        run_id = self.run_id  # repro: noqa[CONC001] lock-free fast path; run_id only changes on enable(), a stale read yields a context the receiver ignores
        if span_id is None or run_id is None:
            return None
        return TraceContext(run_id=run_id, span_id=span_id)

    def _open(
        self,
        name: str,
        category: str,
        attrs: dict[str, _AttrValue],
        parent_id: int | None = None,
    ) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            stack = self._stack()
            span = Span(
                span_id=span_id,
                parent_id=(
                    parent_id
                    if parent_id is not None
                    else (stack[-1] if stack else None)
                ),
                name=name,
                category=category,
                start_us=self._now_us(),
                attrs=attrs,
            )
            self._spans.append(span)
            self._open_spans[span_id] = span
            stack.append(span_id)
            return span

    def _close(self, span_id: int) -> None:
        with self._lock:
            span = self._open_spans.pop(span_id, None)
            if span is not None:
                span.end_us = self._now_us()
            stack = self._stack()
            if span_id in stack:
                del stack[stack.index(span_id):]

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        *,
        category: str = "repro",
        parent_id: int | None = None,
        **attrs: _AttrValue,
    ) -> _LiveSpan | _NoopSpan:
        """Context manager recording one nested span (no-op if disabled).

        ``parent_id`` overrides the stack parent — used to splice a span
        under a *remote* parent carried by a :class:`TraceContext` (the
        span still joins this thread's nesting stack for its children).
        """
        if not self.enabled:  # repro: noqa[CONC001] lock-free fast path; a stale read costs one extra no-op span check, never corruption
            return _NOOP_SPAN
        return _LiveSpan(self, name, category, attrs, parent_id)

    def begin(
        self,
        name: str,
        *,
        category: str = "repro",
        parent_id: int | None = None,
        **attrs: _AttrValue,
    ) -> int | None:
        """Open a detached span (not on the nesting stack); returns its id.

        For intervals with no lexical scope — a streaming day that spans
        many pump calls.  Close with :meth:`end`.  Returns ``None`` while
        the tracer is disabled.
        """
        if not self.enabled:  # repro: noqa[CONC001] lock-free fast path; a stale read costs one extra no-op span check, never corruption
            return None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                category=category,
                start_us=self._now_us(),
                attrs=attrs,
            )
            self._spans.append(span)
            self._open_spans[span_id] = span
            return span_id

    def end(self, span_id: int | None) -> None:
        """Close a detached span opened by :meth:`begin` (None is a no-op)."""
        if span_id is None or not self.enabled:  # repro: noqa[CONC001] lock-free fast path; a stale read costs one extra no-op span check, never corruption
            return
        with self._lock:
            span = self._open_spans.pop(span_id, None)
            if span is not None:
                span.end_us = self._now_us()

    def traced(
        self, name: str, *, category: str = "repro"
    ) -> Callable[[_F], _F]:
        """Decorator form: run the wrapped callable inside a span."""

        def decorate(func: _F) -> _F:
            @wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(name, category=category):
                    return func(*args, **kwargs)

            return wrapper  # type: ignore[return-value]

        return decorate

    # ------------------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Every recorded span, in open order."""
        with self._lock:
            return tuple(self._spans)

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON (object format) — open it in Perfetto.

        Spans become ``X`` (complete) events with microsecond ``ts`` and
        ``dur``; span/parent ids and attributes ride along in ``args``.
        Still-open spans export with the trace's final timestamp as
        their end so the file always loads.
        """
        with self._lock:
            spans = list(self._spans)
            run_id = self.run_id
            metadata = dict(self.metadata)
        last_us = max((s.end_us or s.start_us for s in spans), default=0)
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": f"repro:{run_id or 'run'}"},
            }
        ]
        for span in spans:
            end = span.end_us if span.end_us is not None else last_us
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": max(0, end - span.start_us),
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.attrs,
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {"run_id": run_id, **metadata},
        }

    def write(self, path: str | Path) -> Path:
        """Serialize :meth:`to_chrome_trace` to ``path`` (JSON)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return path


TRACER = Tracer()
"""The process-global tracer every instrumentation site consults."""
