"""Fleet-wide Chrome-trace merge: one Perfetto file for the whole fleet.

The span tracer is process-global, so a fleet run already collects
every shard's and community's spans in one buffer — but the single-run
exporter (:meth:`~repro.obs.trace.Tracer.to_chrome_trace`) flattens
them onto one ``pid=1/tid=1`` row, which turns a 12-community fleet
tick into unreadable confetti.  This module re-homes each span onto a
deterministic process/thread grid:

- **pid 1** — the aggregator: ``fleet.tick``, ``fleet.envelope`` and
  anything else carrying no shard/community identity;
- **pid 2 + k** — shard *k* in ascending shard-id order, with
  ``fleet.shard_tick`` on **tid 1** and community *j* (ascending cid
  within the shard) on **tid 2 + j**.

Identity comes from span attributes: shard workers tag each pipeline
with ``{"shard", "community"}`` trace tags, and untagged descendants
(``detector.update`` under ``stream.slot``) inherit by walking the
parent chain.  The layout is a pure function of the fleet's sorted
shard/community ids, so two runs of the same fleet produce the same
grid — the tracing analogue of the fleet's determinism contract.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.trace import Span, Tracer

AGGREGATOR_PID = 1
_SHARD_PID_BASE = 2
_SHARD_TID = 1
_COMMUNITY_TID_BASE = 2


def fleet_trace_layout(
    shard_communities: Mapping[str, Iterable[str]],
) -> dict[str, Any]:
    """Deterministic pid/tid grid for a fleet's shards and communities.

    ``shard_communities`` maps shard id to the community ids it owns
    (any iteration order; both levels are sorted here).
    """
    shards: dict[str, dict[str, Any]] = {}
    community_shard: dict[str, str] = {}
    for index, shard_id in enumerate(sorted(shard_communities)):
        communities = sorted(shard_communities[shard_id])
        shards[shard_id] = {
            "pid": _SHARD_PID_BASE + index,
            "communities": {
                cid: _COMMUNITY_TID_BASE + j for j, cid in enumerate(communities)
            },
        }
        for cid in communities:
            if cid in community_shard:
                raise ValueError(f"community {cid!r} owned by two shards")
            community_shard[cid] = shard_id
    return {
        "aggregator_pid": AGGREGATOR_PID,
        "shards": shards,
        "community_shard": community_shard,
    }


def _resolve_rows(
    spans: Iterable[Span], layout: Mapping[str, Any]
) -> dict[int, tuple[int, int]]:
    """Map every span id to its (pid, tid) row.

    A span's identity is its own ``shard``/``community`` attrs, else the
    nearest tagged ancestor's; spans with no tagged ancestor belong to
    the aggregator row.
    """
    by_id: dict[int, Span] = {span.span_id: span for span in spans}
    shards = layout["shards"]
    community_shard = layout["community_shard"]
    aggregator = (int(layout["aggregator_pid"]), 1)
    rows: dict[int, tuple[int, int]] = {}

    def resolve(span_id: int) -> tuple[int, int]:
        cached = rows.get(span_id)
        if cached is not None:
            return cached
        span = by_id.get(span_id)
        if span is None:
            return aggregator
        row = aggregator
        cid = span.attrs.get("community")
        sid = span.attrs.get("shard")
        if cid is not None and cid in community_shard:
            shard = shards[community_shard[cid]]
            row = (int(shard["pid"]), int(shard["communities"][cid]))
        elif sid is not None and sid in shards:
            row = (int(shards[sid]["pid"]), _SHARD_TID)
        elif span.parent_id is not None:
            row = resolve(span.parent_id)
        rows[span_id] = row
        return row

    for span_id in by_id:
        resolve(span_id)
    return rows


def to_fleet_chrome_trace(
    tracer: Tracer, layout: Mapping[str, Any]
) -> dict[str, Any]:
    """Merged Chrome trace-event JSON for a whole fleet run.

    Metadata (``M``) events name every process and thread row first;
    the span ``X`` events follow in open order, each on the row
    :func:`_resolve_rows` assigned.  Open it in Perfetto: one track
    group per shard, one lane per community.
    """
    spans = tracer.spans()
    rows = _resolve_rows(spans, layout)
    run_id = tracer.run_id or "run"
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": int(layout["aggregator_pid"]),
            "tid": 1,
            "args": {"name": f"repro-fleet:{run_id}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": int(layout["aggregator_pid"]),
            "tid": 1,
            "args": {"name": "aggregator"},
        },
    ]
    for shard_id in sorted(layout["shards"]):
        shard = layout["shards"][shard_id]
        pid = int(shard["pid"])
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": _SHARD_TID,
                "args": {"name": f"shard:{shard_id}"},
            }
        )
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _SHARD_TID,
                "args": {"name": "shard"},
            }
        )
        for cid in sorted(shard["communities"]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": int(shard["communities"][cid]),
                    "args": {"name": f"community:{cid}"},
                }
            )
    last_us = max((s.end_us or s.start_us for s in spans), default=0)
    for span in spans:
        pid, tid = rows[span.span_id]
        end = span.end_us if span.end_us is not None else last_us
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_us,
                "dur": max(0, end - span.start_us),
                "pid": pid,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "run_id": run_id,
            "fleet_layout": {
                "aggregator_pid": int(layout["aggregator_pid"]),
                "shards": {
                    sid: {
                        "pid": int(shard["pid"]),
                        "communities": dict(shard["communities"]),
                    }
                    for sid, shard in layout["shards"].items()
                },
            },
            **tracer.metadata,
        },
    }


def write_fleet_trace(
    tracer: Tracer, layout: Mapping[str, Any], path: str | Path
) -> Path:
    """Serialize :func:`to_fleet_chrome_trace` to ``path`` (JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_fleet_chrome_trace(tracer, layout)), encoding="utf-8"
    )
    return path
