"""Structured logging on top of the stdlib :mod:`logging` package.

Every module that used to ``print()`` progress now goes through one
logger hierarchy rooted at ``"repro"``.  Two output shapes:

- **JSON lines** (``json_lines=True``, the service default) — one JSON
  object per record with ``ts`` (monotonic seconds relative to logging
  setup, keeping the core wall-clock-free), level, logger name, message,
  and any ``extra={...}`` fields, plus run-id/span-id correlation from
  the active :data:`~repro.obs.trace.TRACER`;
- **plain text** (``json_lines=False``, the CLI/bench default) — the
  classic human-readable single line.

``configure_logging`` is idempotent: it replaces the handlers it
installed before rather than stacking duplicates, so libraries and
entry points can both call it safely.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.obs.trace import TRACER

#: Attributes of a LogRecord that are bookkeeping, not user payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "run_id", "span_id", "mono_ts"}

_HANDLER_FLAG = "_repro_obs_handler"


class ContextFilter(logging.Filter):
    """Stamp run-id/span-id correlation from the active tracer."""

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = TRACER.run_id
        record.span_id = TRACER.current_span_id
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per record; extras become top-level fields."""

    def __init__(self) -> None:
        super().__init__()
        self._origin = time.perf_counter()

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(time.perf_counter() - self._origin, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        run_id = getattr(record, "run_id", None)
        span_id = getattr(record, "span_id", None)
        if run_id is not None:
            payload["run_id"] = run_id
        if span_id is not None:
            payload["span_id"] = span_id
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def configure_logging(
    *,
    level: int = logging.INFO,
    stream: TextIO | None = None,
    json_lines: bool = False,
) -> logging.Logger:
    """Attach one handler to the ``"repro"`` logger and return it.

    Re-invocation replaces the previously installed handler (never
    stacks), so entry points can reconfigure freely.  Returns the root
    ``repro`` logger.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_FLAG, True)
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(name)s %(levelname)s %(message)s"))
    handler.addFilter(ContextFilter())
    logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>`` unless
    the name already starts with ``repro``)."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
