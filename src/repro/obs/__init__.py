"""Observability layer: tracing, structured logging, audit, exposition.

Four cooperating pieces, all off (or free) by default so the simulation
core stays deterministic and golden-master digests bitwise stable:

- :data:`~repro.obs.trace.TRACER` — hierarchical span tracer with
  deterministic ids and Chrome trace-event (Perfetto) JSON export;
- :func:`~repro.obs.logs.configure_logging` /
  :func:`~repro.obs.logs.get_logger` — structured JSON logging with
  run-id/span-id correlation, replacing ad-hoc prints;
- :class:`~repro.obs.audit.AuditTrail` — per-slot explainable detection
  records (PAR margins vs. ``δ_P``, belief before/after, fault gaps),
  JSONL-persisted and served by ``GET /trace`` / ``repro trace``;
- :func:`~repro.obs.prometheus.render_prometheus` — Prometheus
  text-format exposition of the perf registry (counters, gauges,
  p50/p95/p99 summaries) for ``GET /metrics?format=prometheus``;
- :class:`~repro.obs.scoreboard.ResilienceScoreboard` — online
  MTTD/MTTR/availability/false-alarm fold over the detection timeline
  and the attack-occurrence ledger, with exact integer-sum merging
  across a fleet (``GET /scoreboard``);
- :func:`~repro.obs.fleettrace.to_fleet_chrome_trace` — fleet-wide
  Chrome-trace merge onto a deterministic pid/tid grid (one process
  per shard, one thread lane per community).

Run manifests (:func:`~repro.obs.manifest.build_manifest`) stamp every
artifact — checkpoints, traces, ``GET /status`` — with the package
version, config hash, seeds and platform.

See ``docs/OBSERVABILITY.md`` for the span model, the audit record
schema, and scrape examples.
"""

from repro.obs.audit import AuditTrail, load_audit_jsonl
from repro.obs.fleettrace import (
    fleet_trace_layout,
    to_fleet_chrome_trace,
    write_fleet_trace,
)
from repro.obs.logs import (
    ContextFilter,
    JsonFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.manifest import build_manifest, config_digest
from repro.obs.prometheus import (
    metric_name,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.scoreboard import (
    ResilienceScoreboard,
    ScoreboardPublisher,
    attach_scoreboard,
    merge_reports,
    scoreboard_from_arrays,
)
from repro.obs.trace import Span, TRACER, TraceContext, Tracer

__all__ = [
    "AuditTrail",
    "ContextFilter",
    "JsonFormatter",
    "ResilienceScoreboard",
    "ScoreboardPublisher",
    "Span",
    "TRACER",
    "TraceContext",
    "Tracer",
    "attach_scoreboard",
    "build_manifest",
    "config_digest",
    "configure_logging",
    "fleet_trace_layout",
    "get_logger",
    "load_audit_jsonl",
    "merge_reports",
    "metric_name",
    "parse_prometheus_text",
    "render_prometheus",
    "scoreboard_from_arrays",
    "to_fleet_chrome_trace",
    "write_fleet_trace",
]
