"""Resilience scoreboard: MTTD, MTTR, availability, false-alarm rate.

The paper scores detection with a single offline accuracy number; an
operator cares about *resilience* — how long an intrusion lives before
anyone notices, how long from notice to repair, and how often the
monitoring plane itself was blind.  :class:`ResilienceScoreboard` folds
the per-slot detection timeline (:class:`~repro.stream.pipeline
.SlotDetection` verdicts, including fault-gap placeholders) together
with the attack-occurrence ground-truth ledger
(:class:`~repro.stream.events.AttackOccurrence` announcements) into the
operations metrics of ROADMAP item 5:

- **MTTD** — mean slots from attack onset (first truth-positive scored
  slot) to the first true detection (a flag intersecting the truth
  mask, or a repair dispatched while under attack);
- **MTTR** — mean slots from that detection to the attack clearing
  (first scored all-clean slot, i.e. the repair taking effect);
- **availability** — fraction of attacked slots that were observed
  through a usable reading rather than a fault gap;
- **false-alarm rate** — fraction of scored clean slots that raised any
  flag or dispatched a repair;
- **per-attack-family confusion** — episodes/detected/missed per
  registered attack kind, attributed via the occurrence ledger.

Determinism contract (the :class:`~repro.obs.audit.AuditTrail`
discipline): the scoreboard is a pure observer.  It never touches an
RNG stream, never feeds back into detector state, and is *rebuilt* from
the restored timeline + ledger on resume rather than serialized into
checkpoints — so attaching one leaves every verdict and golden digest
bitwise unchanged, and a cut/resumed scoreboard equals the uncut one
exactly.

Exactness under merge: every accumulator is an integer sum (slots,
episodes, sample lists); derived means and fractions are computed *from
the sums* at report time.  :func:`merge_reports` therefore makes the
fleet-merged report bitwise-equal to the same fold over the
concatenated solo timelines — never an average of averages.

An *episode* is a maximal run of truth-positive scored slots.  Slots
with no truth mask (externally pushed readings) score availability but
cannot open, detect, or close episodes; gap slots during an open
episode count as attacked-but-unobserved.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.counters import PerfRegistry
    from repro.stream.pipeline import OnlinePipeline, SlotDetection

SCOREBOARD_FORMAT = "repro-scoreboard"
SCOREBOARD_VERSION = 1

DEFAULT_FAMILY = "unattributed"


def _family_bucket() -> dict[str, int]:
    return {"occurrences": 0, "episodes": 0, "detected": 0, "missed": 0}


class ResilienceScoreboard:
    """Online fold of detection verdicts into resilience metrics.

    Parameters
    ----------
    default_family:
        Attack-family label for episodes that no occurrence-ledger entry
        explains (e.g. the legacy ``attack_days`` window, which is never
        announced, or batch scenario arrays folded without a ledger).
    """

    def __init__(self, *, default_family: str = DEFAULT_FAMILY) -> None:
        self.default_family = default_family
        self._reset()

    def _reset(self) -> None:
        self._slots_total = 0
        self._scored_slots = 0
        self._unscored_slots = 0
        self._gap_slots = 0
        self._tp = 0
        self._fp = 0
        self._fn = 0
        self._tn = 0
        self._clean_slots = 0
        self._false_alarm_slots = 0
        self._attacked_slots = 0
        self._attacked_observed_slots = 0
        self._attacked_gap_slots = 0
        self._episodes = 0
        self._detected_episodes = 0
        self._missed_episodes = 0
        self._resolved_episodes = 0
        self._resolved_detected_episodes = 0
        self._mttd_total_slots = 0
        self._mttr_total_slots = 0
        self._ttd_samples: list[int] = []
        self._ttr_samples: list[int] = []
        self._families: dict[str, dict[str, int]] = {}
        self._occurrence_marks: list[tuple[int, str]] = []
        self._open = False
        self._open_start = -1
        self._open_family = ""
        self._open_detected = False
        self._open_detect_slot = -1

    # ------------------------------------------------------------------
    # online fold
    def record_occurrence(self, occurrence: Mapping[str, Any]) -> None:
        """Fold one ground-truth ledger entry (``event_to_dict`` payload)."""
        slot = int(occurrence["slot"])
        kind = str(occurrence["kind"])
        self._occurrence_marks.append((slot, kind))
        self._families.setdefault(kind, _family_bucket())["occurrences"] += 1

    def record(self, detection: "SlotDetection") -> None:
        """Fold one timeline verdict (called once per slot, in order)."""
        truth = detection.truth
        if detection.gap:
            self.fold_slot(detection.slot, flags=None, truth=None, repaired=False, gap=True)
            return
        self.fold_slot(
            detection.slot,
            flags=detection.flags,
            truth=truth,
            repaired=detection.repaired,
        )

    def fold_slot(
        self,
        slot: int,
        *,
        flags: NDArray[np.bool_] | None,
        truth: NDArray[np.bool_] | None,
        repaired: bool,
        gap: bool = False,
    ) -> None:
        """Fold one slot's raw arrays (shared by stream and batch paths)."""
        self._slots_total += 1
        if gap:
            self._gap_slots += 1
            if self._open:
                self._attacked_slots += 1
                self._attacked_gap_slots += 1
            return
        if truth is None:
            self._unscored_slots += 1
            if self._open:
                self._attacked_slots += 1
                self._attacked_observed_slots += 1
            return
        self._scored_slots += 1
        if flags is not None:
            hit = bool(np.logical_and(flags, truth).any())
            flagged = bool(flags.any())
            self._tp += int(np.logical_and(flags, truth).sum())
            self._fp += int(np.logical_and(flags, ~truth).sum())
            self._fn += int(np.logical_and(~flags, truth).sum())
            self._tn += int(np.logical_and(~flags, ~truth).sum())
        else:
            hit = False
            flagged = False
        if bool(truth.any()):
            self._fold_attacked(slot, hit=hit, repaired=repaired)
        else:
            self._fold_clean(slot, flagged=flagged, repaired=repaired)

    def _fold_attacked(self, slot: int, *, hit: bool, repaired: bool) -> None:
        if not self._open:
            self._open = True
            self._open_start = slot
            self._open_detected = False
            self._open_detect_slot = -1
            self._open_family = self._family_for(slot)
            self._episodes += 1
            self._families.setdefault(self._open_family, _family_bucket())[
                "episodes"
            ] += 1
        self._attacked_slots += 1
        self._attacked_observed_slots += 1
        if not self._open_detected and (hit or repaired):
            self._open_detected = True
            self._open_detect_slot = slot
            self._detected_episodes += 1
            ttd = slot - self._open_start
            self._mttd_total_slots += ttd
            self._ttd_samples.append(ttd)
            self._families.setdefault(self._open_family, _family_bucket())[
                "detected"
            ] += 1

    def _fold_clean(self, slot: int, *, flagged: bool, repaired: bool) -> None:
        if self._open:
            self._resolved_episodes += 1
            if self._open_detected:
                self._resolved_detected_episodes += 1
                ttr = slot - self._open_detect_slot
                self._mttr_total_slots += ttr
                self._ttr_samples.append(ttr)
            else:
                self._missed_episodes += 1
                self._families.setdefault(self._open_family, _family_bucket())[
                    "missed"
                ] += 1
            self._open = False
            self._open_start = -1
            self._open_family = ""
            self._open_detected = False
            self._open_detect_slot = -1
        self._clean_slots += 1
        if flagged or repaired:
            self._false_alarm_slots += 1

    def _family_for(self, slot: int) -> str:
        """Latest ledger entry at or before ``slot`` names the family."""
        family = self.default_family
        best = -1
        for occ_slot, kind in self._occurrence_marks:
            if best <= occ_slot <= slot:
                best = occ_slot
                family = kind
        return family

    # ------------------------------------------------------------------
    # rebuild / checkpoint
    def rebuild(
        self,
        timeline: Iterable["SlotDetection"],
        occurrences: Iterable[Mapping[str, Any]] = (),
    ) -> None:
        """Reset and refold a restored history.

        Equivalent to the online fold: family attribution looks the
        ledger up *by slot*, and live streams announce an occurrence
        before any reading it manipulates, so folding the whole ledger
        first is indistinguishable from the interleaved order.
        """
        self._reset()
        for occurrence in occurrences:
            self.record_occurrence(occurrence)
        for detection in timeline:
            self.record(detection)

    def state_dict(self) -> dict[str, Any]:
        """Complete fold state (round-trips via :meth:`load_state`)."""
        open_episode: dict[str, Any] | None = None
        if self._open:
            open_episode = {
                "start": self._open_start,
                "family": self._open_family,
                "detected": self._open_detected,
                "detect_slot": self._open_detect_slot,
            }
        return {
            "default_family": self.default_family,
            "slots_total": self._slots_total,
            "scored_slots": self._scored_slots,
            "unscored_slots": self._unscored_slots,
            "gap_slots": self._gap_slots,
            "tp": self._tp,
            "fp": self._fp,
            "fn": self._fn,
            "tn": self._tn,
            "clean_slots": self._clean_slots,
            "false_alarm_slots": self._false_alarm_slots,
            "attacked_slots": self._attacked_slots,
            "attacked_observed_slots": self._attacked_observed_slots,
            "attacked_gap_slots": self._attacked_gap_slots,
            "episodes": self._episodes,
            "detected_episodes": self._detected_episodes,
            "missed_episodes": self._missed_episodes,
            "resolved_episodes": self._resolved_episodes,
            "resolved_detected_episodes": self._resolved_detected_episodes,
            "mttd_total_slots": self._mttd_total_slots,
            "mttr_total_slots": self._mttr_total_slots,
            "ttd_samples": list(self._ttd_samples),
            "ttr_samples": list(self._ttr_samples),
            "families": {k: dict(v) for k, v in self._families.items()},
            "occurrence_marks": [[s, k] for s, k in self._occurrence_marks],
            "open_episode": open_episode,
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        self.default_family = str(state["default_family"])
        self._slots_total = int(state["slots_total"])
        self._scored_slots = int(state["scored_slots"])
        self._unscored_slots = int(state["unscored_slots"])
        self._gap_slots = int(state["gap_slots"])
        self._tp = int(state["tp"])
        self._fp = int(state["fp"])
        self._fn = int(state["fn"])
        self._tn = int(state["tn"])
        self._clean_slots = int(state["clean_slots"])
        self._false_alarm_slots = int(state["false_alarm_slots"])
        self._attacked_slots = int(state["attacked_slots"])
        self._attacked_observed_slots = int(state["attacked_observed_slots"])
        self._attacked_gap_slots = int(state["attacked_gap_slots"])
        self._episodes = int(state["episodes"])
        self._detected_episodes = int(state["detected_episodes"])
        self._missed_episodes = int(state["missed_episodes"])
        self._resolved_episodes = int(state["resolved_episodes"])
        self._resolved_detected_episodes = int(state["resolved_detected_episodes"])
        self._mttd_total_slots = int(state["mttd_total_slots"])
        self._mttr_total_slots = int(state["mttr_total_slots"])
        self._ttd_samples = [int(v) for v in state["ttd_samples"]]
        self._ttr_samples = [int(v) for v in state["ttr_samples"]]
        self._families = {
            str(k): {str(f): int(n) for f, n in v.items()}
            for k, v in state["families"].items()
        }
        self._occurrence_marks = [
            (int(s), str(k)) for s, k in state["occurrence_marks"]
        ]
        open_episode = state["open_episode"]
        if open_episode is None:
            self._open = False
            self._open_start = -1
            self._open_family = ""
            self._open_detected = False
            self._open_detect_slot = -1
        else:
            self._open = True
            self._open_start = int(open_episode["start"])
            self._open_family = str(open_episode["family"])
            self._open_detected = bool(open_episode["detected"])
            self._open_detect_slot = int(open_episode["detect_slot"])

    # ------------------------------------------------------------------
    # reporting
    def report(self) -> dict[str, Any]:
        """The scoreboard block: integer sums + derived means/fractions."""
        return _finalize(
            {
                "format": SCOREBOARD_FORMAT,
                "version": SCOREBOARD_VERSION,
                "slots": {
                    "total": self._slots_total,
                    "scored": self._scored_slots,
                    "unscored": self._unscored_slots,
                    "gaps": self._gap_slots,
                },
                "confusion": {
                    "tp": self._tp,
                    "fp": self._fp,
                    "fn": self._fn,
                    "tn": self._tn,
                },
                "episodes": {
                    "total": self._episodes,
                    "detected": self._detected_episodes,
                    "missed": self._missed_episodes,
                    "resolved": self._resolved_episodes,
                    "open": 1 if self._open else 0,
                },
                "mttd": {
                    "total_slots": self._mttd_total_slots,
                    "episodes": self._detected_episodes,
                    "samples": list(self._ttd_samples),
                },
                "mttr": {
                    "total_slots": self._mttr_total_slots,
                    "episodes": self._resolved_detected_episodes,
                    "samples": list(self._ttr_samples),
                },
                "availability": {
                    "attacked_slots": self._attacked_slots,
                    "observed_slots": self._attacked_observed_slots,
                    "gap_slots": self._attacked_gap_slots,
                },
                "false_alarms": {
                    "clean_slots": self._clean_slots,
                    "alarm_slots": self._false_alarm_slots,
                },
                "families": {k: dict(v) for k, v in sorted(self._families.items())},
            }
        )


def _finalize(report: dict[str, Any]) -> dict[str, Any]:
    """Fill the derived leaves from the integer sums, in place."""
    mttd = report["mttd"]
    mttd["mean_slots"] = (
        mttd["total_slots"] / mttd["episodes"] if mttd["episodes"] else None
    )
    mttr = report["mttr"]
    mttr["mean_slots"] = (
        mttr["total_slots"] / mttr["episodes"] if mttr["episodes"] else None
    )
    availability = report["availability"]
    availability["fraction"] = (
        availability["observed_slots"] / availability["attacked_slots"]
        if availability["attacked_slots"]
        else None
    )
    false_alarms = report["false_alarms"]
    false_alarms["rate"] = (
        false_alarms["alarm_slots"] / false_alarms["clean_slots"]
        if false_alarms["clean_slots"]
        else None
    )
    return report


def merge_reports(reports: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Exact merge of scoreboard reports: sum the integers, refinalize.

    Derived leaves (means, fractions) are recomputed from the summed
    totals, so merging K per-community reports is bitwise-equal to one
    scoreboard folded over the concatenated timelines — the fleet ≡
    K-solo contract.  Sample lists concatenate in iteration order; pass
    reports sorted by a stable id for a deterministic merged report.
    """
    merged: dict[str, Any] = {
        "format": SCOREBOARD_FORMAT,
        "version": SCOREBOARD_VERSION,
        "slots": {"total": 0, "scored": 0, "unscored": 0, "gaps": 0},
        "confusion": {"tp": 0, "fp": 0, "fn": 0, "tn": 0},
        "episodes": {
            "total": 0,
            "detected": 0,
            "missed": 0,
            "resolved": 0,
            "open": 0,
        },
        "mttd": {"total_slots": 0, "episodes": 0, "samples": []},
        "mttr": {"total_slots": 0, "episodes": 0, "samples": []},
        "availability": {"attacked_slots": 0, "observed_slots": 0, "gap_slots": 0},
        "false_alarms": {"clean_slots": 0, "alarm_slots": 0},
        "families": {},
    }
    for report in reports:
        if report.get("format") != SCOREBOARD_FORMAT:
            raise ValueError(f"not a scoreboard report: {report.get('format')!r}")
        if report.get("version") != SCOREBOARD_VERSION:
            raise ValueError(
                f"unsupported scoreboard version {report.get('version')!r}"
            )
        for section in ("slots", "confusion", "episodes", "availability", "false_alarms"):
            for key in merged[section]:
                merged[section][key] += int(report[section][key])
        for section in ("mttd", "mttr"):
            merged[section]["total_slots"] += int(report[section]["total_slots"])
            merged[section]["episodes"] += int(report[section]["episodes"])
            merged[section]["samples"].extend(
                int(v) for v in report[section]["samples"]
            )
        for family, bucket in report["families"].items():
            target = merged["families"].setdefault(str(family), _family_bucket())
            for key in target:
                target[key] += int(bucket[key])
    merged["families"] = dict(sorted(merged["families"].items()))
    return _finalize(merged)


def attach_scoreboard(pipeline: "OnlinePipeline") -> ResilienceScoreboard:
    """Attach (or refresh) a scoreboard on a pipeline, backfilling history.

    Idempotent: an already-attached board is rebuilt in place.  The
    rebuild is a pure function of the pipeline's timeline + ledger, so
    a board attached after a resume reports exactly what an
    attached-from-the-start board would.
    """
    board = pipeline.scoreboard
    if board is None:
        board = ResilienceScoreboard()
        pipeline.scoreboard = board
    board.rebuild(pipeline.timeline, pipeline.occurrences)
    return board


def scoreboard_from_arrays(
    *,
    truth: NDArray[np.bool_],
    flags: NDArray[np.bool_],
    repairs: NDArray[np.bool_],
    family: str = DEFAULT_FAMILY,
) -> ResilienceScoreboard:
    """Fold batch scenario arrays (``ScenarioResult``) into a scoreboard.

    The batch path has no occurrence ledger, so every episode is
    attributed to ``family`` (the sweep cell's attack-family axis).
    """
    n_slots = int(truth.shape[0])
    if flags.shape[0] != n_slots or repairs.shape[0] != n_slots:
        raise ValueError(
            f"misaligned arrays: truth {truth.shape[0]}, "
            f"flags {flags.shape[0]}, repairs {repairs.shape[0]} slots"
        )
    board = ResilienceScoreboard(default_family=family)
    for slot in range(n_slots):
        board.fold_slot(
            slot,
            flags=flags[slot],
            truth=truth[slot],
            repaired=bool(repairs[slot]),
        )
    return board


class ScoreboardPublisher:
    """Publish scoreboard reports into a :class:`PerfRegistry`.

    Gauges are idempotent (set to the merged totals every publish);
    MTTD/MTTR ride bounded histograms, so each publish observes only
    the samples that appeared since the previous one, tracked with a
    per-source cursor keyed by the caller's stable ids (community ids
    for the fleet, a single key for the solo service).
    """

    def __init__(self, registry: "PerfRegistry", *, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix
        self._cursors: dict[str, tuple[int, int]] = {}

    def publish(
        self,
        merged: Mapping[str, Any],
        sources: Mapping[str, Mapping[str, Any]],
    ) -> None:
        prefix = self._prefix
        registry = self._registry
        episodes = merged["episodes"]
        registry.set_gauge(f"{prefix}.episodes", float(episodes["total"]))
        registry.set_gauge(f"{prefix}.episodes_detected", float(episodes["detected"]))
        registry.set_gauge(f"{prefix}.episodes_missed", float(episodes["missed"]))
        availability = merged["availability"]
        registry.set_gauge(
            f"{prefix}.attacked_slots", float(availability["attacked_slots"])
        )
        fraction = availability["fraction"]
        registry.set_gauge(
            f"{prefix}.availability", 1.0 if fraction is None else float(fraction)
        )
        rate = merged["false_alarms"]["rate"]
        registry.set_gauge(
            f"{prefix}.false_alarm_rate", 0.0 if rate is None else float(rate)
        )
        for source in sorted(sources):
            report = sources[source]
            seen_ttd, seen_ttr = self._cursors.get(source, (0, 0))
            ttd = report["mttd"]["samples"]
            ttr = report["mttr"]["samples"]
            for value in ttd[seen_ttd:]:
                registry.observe(f"{prefix}.mttd_slots", float(value))
            for value in ttr[seen_ttr:]:
                registry.observe(f"{prefix}.mttr_slots", float(value))
            self._cursors[source] = (len(ttd), len(ttr))
