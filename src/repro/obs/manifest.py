"""Run manifests: what produced this artifact, reproducibly.

A manifest pins everything needed to re-run (and trust) an artifact:
the package version, a content hash of the full configuration, the
seeds in play, and the platform triple (Python/NumPy/OS).  It carries
**no timestamps** on purpose — manifests are embedded in checkpoints
and trace exports, whose bitwise-identity guarantees a wall-clock field
would silently break.

Embedded in: checkpoint documents (``"manifest"`` key), Chrome trace
export metadata, and the service's ``GET /status`` response.
"""

from __future__ import annotations

import hashlib
import json
import platform
from typing import Any, Mapping

import numpy as np

MANIFEST_FORMAT = "repro-run-manifest"
MANIFEST_VERSION = 1


def config_digest(config: Any) -> str:
    """SHA-256 of the canonical JSON form of a configuration.

    Accepts a :class:`~repro.core.config.CommunityConfig` or the dict
    produced by :func:`~repro.core.config.config_to_dict` (checkpoints
    store the latter).  Same canonicalization as the golden-master
    layer: sorted keys over the config dict.
    """
    if isinstance(config, Mapping):
        config_dict: Mapping[str, Any] = config
    else:
        from repro.core.config import config_to_dict

        config_dict = config_to_dict(config)
    return hashlib.sha256(
        json.dumps(config_dict, sort_keys=True).encode("utf-8")
    ).hexdigest()


def build_manifest(
    config: Any | None = None,
    *,
    seeds: Mapping[str, Any] | None = None,
    command: str | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run manifest (deterministic: no wall clock, no RNG).

    Parameters
    ----------
    config:
        Configuration (object or dict) to hash; ``None`` omits the hash.
    seeds:
        Named seeds in play, e.g. ``{"config": 7, "fault": 3}``.
    command:
        The entry point that produced the artifact (``"fig6"``,
        ``"stream"``, ...).
    extra:
        Additional flat fields merged into the manifest.
    """
    from repro import __version__

    manifest: dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "package_version": __version__,
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "system": platform.platform(),
        },
    }
    if config is not None:
        manifest["config_sha256"] = config_digest(config)
    if seeds is not None:
        manifest["seeds"] = dict(seeds)
    if command is not None:
        manifest["command"] = command
    if extra:
        manifest.update(extra)
    return manifest
