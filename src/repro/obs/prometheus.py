"""Prometheus text-format exposition for the perf registry.

Renders a :class:`~repro.perf.counters.PerfRegistry` into the Prometheus
text exposition format (version 0.0.4) — the dialect every standard
scraper understands — alongside the service's existing JSON deltas:

- counters → ``repro_<name>_total``
- timers → ``repro_<name>_seconds_total``
- gauges → ``repro_<name>``
- bounded histograms → Prometheus *summaries*: ``{quantile="0.5|0.95|0.99"}``
  sample lines plus ``_sum``/``_count``

Counters that exist but have never moved still appear (value 0) — that
is the point of ``delta_since(..., include_zero=True)``: a scraper must
be able to tell an idle counter from an absent one.

:func:`parse_prometheus_text` is a minimal parser of the same dialect,
used by the test suite to round-trip the exposition and by
``scripts/validate_obs.py`` to validate live scrapes.
"""

from __future__ import annotations

import math
import re
from typing import Any

from repro.perf.counters import PerfRegistry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')

#: Quantiles exported for every bounded histogram.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def metric_name(name: str, *, prefix: str = "repro") -> str:
    """Sanitize a dotted counter name into a Prometheus metric name."""
    cleaned = _NAME_SANITIZER.sub("_", name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus(
    registry: PerfRegistry, *, prefix: str = "repro"
) -> str:
    """The registry as Prometheus text exposition (trailing newline).

    Uses ``delta_since({}, include_zero=True)`` so counters pinned at
    exactly zero are still exposed — scrape consumers distinguish idle
    from absent.
    """
    lines: list[str] = []
    full = registry.delta_since({}, include_zero=True)
    counters = {
        name: value for name, value in full.items() if not name.endswith("_s")
    }
    timers = {
        name[:-2]: value for name, value in full.items() if name.endswith("_s")
    }
    for name in sorted(counters):
        metric = metric_name(name, prefix=prefix) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(timers):
        metric = metric_name(name, prefix=prefix) + "_seconds_total"
        lines.append(f"# HELP {metric} repro timer {name} (accumulated seconds)")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(timers[name])}")
    gauges = registry.gauges()
    for name in sorted(gauges):
        metric = metric_name(name, prefix=prefix)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    for name in sorted(registry.histograms()):
        hist = registry.histogram(name)
        assert hist is not None
        metric = metric_name(name, prefix=prefix)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} summary")
        for q in SUMMARY_QUANTILES:
            lines.append(
                f'{metric}{{quantile="{q}"}} {_format_value(hist.quantile(q))}'
            )
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {_format_value(float(hist.count))}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, Any]:
    """Minimal parser of the text exposition format.

    Returns ``{"types": {metric: type}, "samples": {(metric, labels): value}}``
    where ``labels`` is a sorted tuple of ``(key, value)`` pairs.
    Raises ``ValueError`` on lines that are neither comments, blanks,
    nor well-formed samples — which is exactly what makes it useful as a
    scrape validator.
    """
    types: dict[str, str] = {}
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# TYPE "):
            parts = stripped.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            types[parts[2]] = parts[3]
            continue
        if stripped.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(stripped)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        labels_raw = match.group("labels") or ""
        labels = tuple(sorted(_LABEL_PAIR.findall(labels_raw)))
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {raw_value!r}"
            ) from exc
        samples[(match.group("name"), labels)] = value
    return {"types": types, "samples": samples}
