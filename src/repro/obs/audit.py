"""Detection audit trail: one explainable record per monitoring slot.

The pipeline's :class:`~repro.stream.pipeline.SlotDetection` says *what*
was decided; an audit record says *why*.  For every processed reading it
captures the evidence the paper's detection rule actually weighed:

- the day's price series (clean and predicted guideline prices),
- per-meter PAR margins — ``PAR_received − PAR_predicted`` (+ the
  check's measurement noise) against the threshold ``δ_P``,
- the POMDP belief before and after the observation, and the chosen
  monitor action,
- whether the slot was really a fault gap, and why.

Records are plain JSON-ready dicts, kept in a bounded in-memory window
and optionally appended to a JSONL file as they happen.  The service's
``GET /trace`` endpoint and the ``repro trace`` CLI subcommand both read
this format.

Auditing is opt-in: a pipeline with ``audit=None`` runs the exact code
path it always did, so golden-master digests are untouched.  When a
trail is attached, the per-meter detail rides on the *same* noise draws
(see :meth:`SingleEventDetector.check_meters`), so enabling the audit
never changes a verdict.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:
    from repro.detection.single_event import SingleEventDetection
    from repro.stream.events import PriceUpdate
    from repro.stream.pipeline import SlotDetection

AUDIT_FORMAT = "repro-audit-record"
AUDIT_VERSION = 1


class AuditTrail:
    """Bounded in-memory audit log with optional JSONL persistence.

    Parameters
    ----------
    path:
        Append each record as one JSON line here; ``None`` keeps the
        trail memory-only.
    max_records:
        In-memory window size (old records roll off; the JSONL file, if
        any, keeps everything).  ``None`` means unbounded.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_records: int | None = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.path = None if path is None else Path(path)
        self.max_records = max_records
        self._records: deque[dict[str, Any]] = deque(maxlen=max_records)
        self._total = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate: a trail owns its file for the run it witnesses.
            self.path.write_text("", encoding="utf-8")

    # ------------------------------------------------------------------
    @property
    def total_records(self) -> int:
        """Lifetime record count (>= ``len(records())`` when bounded)."""
        return self._total

    def append(self, record: dict[str, Any]) -> None:
        """Store (and persist, if configured) one finished record."""
        self._records.append(record)
        self._total += 1
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record) + "\n")

    def records(
        self,
        *,
        since: int = 0,
        day: int | None = None,
        kind: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Filtered view of the in-memory window, slot order preserved."""
        selected = [
            rec
            for rec in self._records
            if rec["slot"] >= since
            and (day is None or rec["day"] == day)
            and (kind is None or rec["kind"] == kind)
        ]
        if limit is not None:
            selected = selected[:limit]
        return selected

    def clear(self) -> None:
        """Drop the in-memory window (the JSONL file is left alone)."""
        self._records.clear()

    # ------------------------------------------------------------------
    def record_detection(
        self,
        detection: "SlotDetection",
        *,
        checks: Sequence["SingleEventDetection"] | None = None,
        update: "PriceUpdate | None" = None,
        belief_before: float | None = None,
        span_id: int | None = None,
        restored: bool = False,
    ) -> dict[str, Any]:
        """Build and append the audit record for one slot verdict."""
        record: dict[str, Any] = {
            "format": AUDIT_FORMAT,
            "version": AUDIT_VERSION,
            "kind": "detection",
            "slot": detection.slot,
            "day": detection.day,
            "observation": detection.observation,
            "action": detection.action,
            "belief_before": belief_before,
            "belief_after": detection.belief_mean,
            "repaired": detection.repaired,
            "repaired_count": detection.repaired_count,
            "flags": detection.flags.astype(int).tolist(),
        }
        if checks:
            record["threshold"] = checks[0].threshold
            record["predicted_par"] = checks[0].predicted_par
            record["meters"] = [
                {
                    "meter": i,
                    "received_par": check.received_par,
                    "margin": check.margin,
                    "noise": check.noise,
                    "flagged": check.flagged,
                }
                for i, check in enumerate(checks)
            ]
        if update is not None:
            record["clean_prices"] = update.clean_prices.tolist()
            record["predicted_prices"] = update.predicted_prices.tolist()
        if span_id is not None:
            record["span_id"] = span_id
        if restored:
            record["restored"] = True
        self.append(record)
        return record

    def record_gap(
        self, detection: "SlotDetection", *, span_id: int | None = None
    ) -> dict[str, Any]:
        """Audit record for a slot whose reading never arrived usable."""
        record: dict[str, Any] = {
            "format": AUDIT_FORMAT,
            "version": AUDIT_VERSION,
            "kind": "gap",
            "slot": detection.slot,
            "day": detection.day,
            "gap_reason": detection.gap_reason,
            "observation": detection.observation,
            "belief_held": True,
        }
        if span_id is not None:
            record["span_id"] = span_id
        self.append(record)
        return record

    def backfill(self, timeline: Iterable["SlotDetection"]) -> int:
        """Minimal records for verdicts produced before the trail existed.

        Called on checkpoint resume so ``GET /trace`` covers the whole
        timeline; restored records carry the verdict but not the
        per-meter evidence (the noise draws are gone).  Returns how many
        records were added.
        """
        added = 0
        have = {(rec["slot"], rec["kind"]) for rec in self._records}
        for detection in timeline:
            kind = "gap" if detection.gap else "detection"
            if (detection.slot, kind) in have:
                continue
            if detection.gap:
                self.record_gap(detection)
            else:
                self.record_detection(detection, restored=True)
            added += 1
        return added


def load_audit_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read an audit JSONL file back into a list of records."""
    records: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSON line ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: audit record must be an object")
        records.append(record)
    return records
