"""The integrated detection framework facade (Figure 2 of the paper).

:class:`DetectionFramework` wires the whole pipeline behind a small API:

>>> from repro.core import DetectionFramework, smoke_preset
>>> framework = DetectionFramework(smoke_preset(), aware=True)
>>> framework.train()
>>> day = framework.sample_day()
>>> prediction = framework.predict_load(day.predicted_prices)
>>> check = framework.detect_single_event(day.clean_prices)
>>> check.flagged
False

The ``aware`` flag switches every stage between the paper's net-metering-
aware framework and the prior-art unaware baseline (its ref. [8]) — the
comparison the whole evaluation section is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import CommunityConfig
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    PriceHistory,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetection,
    SingleEventDetector,
)
from repro.metrics.cost import LaborCostModel
from repro.prediction.load import LoadPrediction, predict_community_load
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.scheduling.game import Community
from repro.simulation.scenario import ScenarioResult, run_long_term_scenario


@dataclass(frozen=True)
class SampledDay:
    """One evaluation day: the environment plus both price vectors."""

    demand_forecast: NDArray[np.float64]
    renewable_forecast: NDArray[np.float64]
    clean_prices: NDArray[np.float64]
    predicted_prices: NDArray[np.float64]


@dataclass(frozen=True)
class FrameworkResult:
    """Summary of a long-term monitoring run."""

    scenario: ScenarioResult
    labor_cost: float

    @property
    def observation_accuracy(self) -> float:
        return self.scenario.observation_accuracy

    @property
    def mean_par(self) -> float:
        return self.scenario.mean_par

    @property
    def n_repairs(self) -> int:
        return self.scenario.n_repairs


class DetectionFramework:
    """End-to-end smart home pricing cyberattack detection.

    Parameters
    ----------
    config:
        Community, pricing, game and detection parameters.
    aware:
        True for the paper's net-metering-aware framework, False for the
        unaware baseline of ref. [8].
    """

    def __init__(self, config: CommunityConfig, *, aware: bool = True) -> None:
        self.config = config
        self.aware = aware
        self._rng = np.random.default_rng(config.seed)
        self._community: Community | None = None
        self._history: PriceHistory | None = None
        self._predictor: AwarePricePredictor | UnawarePricePredictor | None = None
        self._simulator: CommunityResponseSimulator | None = None
        self._predicted_simulator: CommunityResponseSimulator | None = None
        self._price_model = GuidelinePriceModel(
            config=config.pricing, n_customers=config.n_customers
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def community(self) -> Community:
        """The (lazily built) community model."""
        if self._community is None:
            self._community = build_community(self.config, rng=self._rng)
        return self._community

    @property
    def history(self) -> PriceHistory:
        if self._history is None:
            raise RuntimeError("call train() first")
        return self._history

    def train(self, history: PriceHistory | None = None) -> "DetectionFramework":
        """Fit the price predictor on a (given or generated) history."""
        if history is None:
            history = generate_history(
                self._rng,
                n_customers=self.config.n_customers,
                pricing=self.config.pricing,
                solar=self.config.solar,
                slots_per_day=self.config.time.slots_per_day,
                mean_pv_per_customer_kw=self.config.solar.peak_kw
                * self.config.pv_adoption,
            )
        self._history = history
        predictor = AwarePricePredictor() if self.aware else UnawarePricePredictor()
        predictor.fit(history)
        self._predictor = predictor
        return self

    # ------------------------------------------------------------------
    # Per-day pipeline
    # ------------------------------------------------------------------
    def sample_day(self, *, weather: float | None = None) -> SampledDay:
        """Draw one evaluation day and predict its guideline price."""
        if self._predictor is None:
            raise RuntimeError("call train() first")
        if weather is None:
            weather = float(np.clip(self._rng.beta(5.0, 2.0), 0.0, 1.0))
        elif not 0.0 <= weather <= 1.0:
            raise ValueError(f"weather must be in [0, 1], got {weather}")
        demand = baseline_demand_profile(self.config.time) * self.config.n_customers
        renewable = self.community.total_pv * weather
        clean = self._price_model.price(demand, renewable, rng=self._rng)
        predicted = self.predict_price(
            demand_forecast=demand, renewable_forecast=renewable
        )
        return SampledDay(
            demand_forecast=demand,
            renewable_forecast=renewable,
            clean_prices=clean,
            predicted_prices=predicted,
        )

    def predict_price(
        self,
        *,
        demand_forecast: ArrayLike | None = None,
        renewable_forecast: ArrayLike | None = None,
    ) -> NDArray[np.float64]:
        """Day-ahead guideline-price prediction."""
        if self._predictor is None:
            raise RuntimeError("call train() first")
        if self.aware:
            return self._predictor.predict_day(
                demand_forecast=demand_forecast,
                renewable_forecast=renewable_forecast,
            )
        return self._predictor.predict_day()

    def predict_load(
        self,
        prices: ArrayLike,
        *,
        rng: np.random.Generator | None = None,
    ) -> LoadPrediction:
        """Game-based community load prediction for a price vector."""
        return predict_community_load(
            self.community,
            prices,
            aware=self.aware,
            sellback_divisor=self.config.pricing.sellback_divisor,
            config=self.config.game,
            rng=rng if rng is not None else self._rng,
        )

    def single_event_detector(
        self,
        predicted_prices: ArrayLike,
    ) -> SingleEventDetector:
        """Build the PAR-threshold detector for one predicted-price vector."""
        if self._simulator is None:
            self._simulator = CommunityResponseSimulator(
                self.community,
                config=self.config.game,
                sellback_divisor=self.config.pricing.sellback_divisor,
                seed=3,
                tariff=self.config.tariff,
            )
        predicted_simulator = self._simulator
        if not self.aware:
            if self._predicted_simulator is None:
                self._predicted_simulator = CommunityResponseSimulator(
                    self.community.without_net_metering(),
                    config=self.config.game,
                    sellback_divisor=self.config.pricing.sellback_divisor,
                    seed=3,
                )
            predicted_simulator = self._predicted_simulator
        return SingleEventDetector(
            self._simulator,
            predicted_prices,
            predicted_simulator=predicted_simulator,
            threshold=self.config.detection.par_threshold,
            margin_noise_std=self.config.detection.margin_noise_std,
        )

    def detect_single_event(
        self,
        received_prices: ArrayLike,
        *,
        predicted_prices: ArrayLike | None = None,
    ) -> SingleEventDetection:
        """One-shot single-event check against a freshly sampled day."""
        if predicted_prices is None:
            predicted_prices = self.sample_day().predicted_prices
        detector = self.single_event_detector(predicted_prices)
        return detector.check(received_prices, rng=self._rng)

    # ------------------------------------------------------------------
    # Long-term monitoring
    # ------------------------------------------------------------------
    def run_long_term(
        self,
        *,
        n_slots: int = 48,
        seed: int | None = None,
    ) -> FrameworkResult:
        """Run the full Section 5 monitoring scenario."""
        scenario = run_long_term_scenario(
            self.config,
            detector="aware" if self.aware else "unaware",
            n_slots=n_slots,
            history=self._history,
            seed=seed,
        )
        labor = LaborCostModel(
            fixed_cost=self.config.detection.repair_fixed_cost,
            per_meter_cost=self.config.detection.repair_cost_per_meter,
        )
        return FrameworkResult(
            scenario=scenario,
            labor_cost=scenario.labor_cost(labor),
        )
