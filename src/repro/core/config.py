"""Configuration dataclasses shared across the package.

All simulation-scale knobs live here so that the paper's experiments, the
test suite and the benchmark harness can share one validated vocabulary.
Every dataclass is immutable; derived quantities are exposed as properties.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.tariffs.base import Tariff


class ConfigError(ValueError):
    """Raised when a configuration dataclass is constructed inconsistently."""


@dataclass(frozen=True)
class TimeGrid:
    """Discretization of the scheduling horizon.

    The paper divides each day into ``H`` time slots (H = 24, hourly) and
    runs the long-term detector over multiple days (48 slots in Fig. 6).

    Parameters
    ----------
    slots_per_day:
        Number of scheduling slots per day (the paper's ``H``).
    n_days:
        Number of days in the simulated horizon.
    """

    slots_per_day: int = 24
    n_days: int = 1

    def __post_init__(self) -> None:
        if self.slots_per_day < 1:
            raise ConfigError(f"slots_per_day must be >= 1, got {self.slots_per_day}")
        if self.n_days < 1:
            raise ConfigError(f"n_days must be >= 1, got {self.n_days}")

    @property
    def horizon(self) -> int:
        """Total number of slots across the whole horizon."""
        return self.slots_per_day * self.n_days

    @property
    def hours_per_slot(self) -> float:
        """Duration of one slot in hours (slots are assumed to tile a day)."""
        return 24.0 / self.slots_per_day

    def slot_of_hour(self, hour: float, day: int = 0) -> int:
        """Map an hour-of-day (0-24) on ``day`` to a global slot index."""
        if not 0.0 <= hour <= 24.0:
            raise ConfigError(f"hour must be in [0, 24], got {hour}")
        if not 0 <= day < self.n_days:
            raise ConfigError(f"day must be in [0, {self.n_days}), got {day}")
        slot = int(hour / self.hours_per_slot)
        slot = min(slot, self.slots_per_day - 1)
        return day * self.slots_per_day + slot

    def hour_of_slot(self, slot: int) -> float:
        """Hour-of-day (start of slot) for a global slot index."""
        if not 0 <= slot < self.horizon:
            raise ConfigError(f"slot must be in [0, {self.horizon}), got {slot}")
        return (slot % self.slots_per_day) * self.hours_per_slot

    def day_of_slot(self, slot: int) -> int:
        """Day index of a global slot index."""
        if not 0 <= slot < self.horizon:
            raise ConfigError(f"slot must be in [0, {self.horizon}), got {slot}")
        return slot // self.slots_per_day


@dataclass(frozen=True)
class BatteryConfig:
    """Home battery parameters (Section 2.2 of the paper).

    The battery stores residual PV energy for later use or sale.  Storage at
    slot ``h`` is bounded by ``0 <= b <= capacity_kwh`` and evolves by the
    paper's Eqn. (1).
    """

    capacity_kwh: float = 4.0
    initial_kwh: float = 0.0
    max_charge_kw: float = 1.0
    max_discharge_kw: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_kwh < 0:
            raise ConfigError(f"capacity_kwh must be >= 0, got {self.capacity_kwh}")
        if not 0 <= self.initial_kwh <= max(self.capacity_kwh, 0):
            raise ConfigError(
                f"initial_kwh must be in [0, {self.capacity_kwh}], got {self.initial_kwh}"
            )
        if self.max_charge_kw < 0 or self.max_discharge_kw < 0:
            raise ConfigError("charge/discharge rates must be >= 0")


@dataclass(frozen=True)
class SolarConfig:
    """Per-customer PV generation model parameters.

    Generation follows a clear-sky bell curve scaled by ``peak_kw`` with
    multiplicative cloud attenuation (mean-reverting noise).
    """

    peak_kw: float = 0.5
    sunrise_hour: float = 6.0
    sunset_hour: float = 19.0
    cloud_volatility: float = 0.15
    cloud_reversion: float = 0.5

    def __post_init__(self) -> None:
        if self.peak_kw < 0:
            raise ConfigError(f"peak_kw must be >= 0, got {self.peak_kw}")
        if not 0 <= self.sunrise_hour < self.sunset_hour <= 24:
            raise ConfigError(
                "need 0 <= sunrise_hour < sunset_hour <= 24, got "
                f"({self.sunrise_hour}, {self.sunset_hour})"
            )
        if self.cloud_volatility < 0:
            raise ConfigError("cloud_volatility must be >= 0")
        if not 0 <= self.cloud_reversion <= 1:
            raise ConfigError("cloud_reversion must be in [0, 1]")


@dataclass(frozen=True)
class PricingConfig:
    """Utility guideline-pricing model.

    The utility designs the guideline price from the anticipated *net*
    community demand: ``p_h = base + slope * net_demand_h + noise``.  The
    quadratic billing model of Eqn. (2) then charges the community
    ``p_h * (sum_n y_n)^2`` and pays ``p_h / sellback_divisor`` for energy
    sold back to the grid (the paper's ``W``).
    """

    base_price: float = 0.010
    demand_slope: float = 0.038
    noise_std: float = 0.0015
    sellback_divisor: float = 1.5

    def __post_init__(self) -> None:
        if self.base_price < 0:
            raise ConfigError(f"base_price must be >= 0, got {self.base_price}")
        if self.demand_slope < 0:
            raise ConfigError(f"demand_slope must be >= 0, got {self.demand_slope}")
        if self.noise_std < 0:
            raise ConfigError(f"noise_std must be >= 0, got {self.noise_std}")
        if self.sellback_divisor < 1:
            raise ConfigError(
                f"sellback_divisor (the paper's W) must be >= 1, got {self.sellback_divisor}"
            )


@dataclass(frozen=True)
class GameConfig:
    """Convergence controls for the energy-consumption scheduling game.

    ``hysteresis`` is the cost improvement -- as a fraction of the
    customer's total daily bill -- a best response must offer before a
    customer abandons its current schedule; the game loop anneals it
    upward round by round.  It suppresses tie-flipping between near-equal
    slots, the classic limit-cycle mode of discrete best-response
    dynamics.
    """

    max_rounds: int = 8
    inner_iterations: int = 2
    convergence_tol: float = 1e-2
    hysteresis: float = 0.002
    ce_samples: int = 48
    ce_elites: int = 8
    ce_iterations: int = 12
    ce_smoothing: float = 0.7

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigError("max_rounds must be >= 1")
        if self.inner_iterations < 1:
            raise ConfigError("inner_iterations must be >= 1")
        if self.convergence_tol <= 0:
            raise ConfigError("convergence_tol must be > 0")
        if self.hysteresis < 0:
            raise ConfigError("hysteresis must be >= 0")
        if self.ce_samples < 2:
            raise ConfigError("ce_samples must be >= 2")
        if not 1 <= self.ce_elites <= self.ce_samples:
            raise ConfigError("need 1 <= ce_elites <= ce_samples")
        if self.ce_iterations < 1:
            raise ConfigError("ce_iterations must be >= 1")
        if not 0 < self.ce_smoothing <= 1:
            raise ConfigError("ce_smoothing must be in (0, 1]")


@dataclass(frozen=True)
class DetectionConfig:
    """Detection-layer parameters.

    ``par_threshold`` is the paper's ``delta_P``: a cyberattack is reported
    when the received-price PAR exceeds the predicted-price PAR by more than
    this margin.  The POMDP layer parameters describe meter hacking dynamics
    and repair economics.
    """

    par_threshold: float = 0.10
    margin_noise_std: float = 0.03
    hack_probability: float = 0.08
    damage_per_meter: float = 1.0
    repair_fixed_cost: float = 2.0
    repair_cost_per_meter: float = 1.0
    discount: float = 0.92
    n_monitored_meters: int = 12

    def __post_init__(self) -> None:
        if self.par_threshold < 0:
            raise ConfigError("par_threshold must be >= 0")
        if self.margin_noise_std < 0:
            raise ConfigError("margin_noise_std must be >= 0")
        if not 0 <= self.hack_probability <= 1:
            raise ConfigError("hack_probability must be in [0, 1]")
        if self.damage_per_meter < 0:
            raise ConfigError("damage_per_meter must be >= 0")
        if self.repair_fixed_cost < 0 or self.repair_cost_per_meter < 0:
            raise ConfigError("repair costs must be >= 0")
        if not 0 < self.discount < 1:
            raise ConfigError("discount must be in (0, 1)")
        if self.n_monitored_meters < 1:
            raise ConfigError("n_monitored_meters must be >= 1")


@dataclass(frozen=True)
class SolverConfig:
    """Execution strategy for the scheduling-game solver.

    Nothing here changes *what* is solved — only how fast.  ``backend``
    picks the kernel implementation (all registered backends are
    bitwise-identical; see :mod:`repro.kernels`), ``batch_games`` turns
    on lockstep batching of independent solves
    (:func:`repro.scheduling.batch.solve_games`, also bitwise-identical
    to the sequential loop).  ``warm_start`` is the one knob that *does*
    change results: solves are seeded from the nearest cached
    equilibrium (within ``warm_start_max_distance`` in max-abs price
    gap) with the CE sampling density narrowed by ``ce_warm_std_scale``.
    Warm solutions live in their own cache namespace, so enabling it
    never contaminates cold-start (golden) results, and runs stay
    deterministic given the cache state.
    """

    backend: str = "auto"
    batch_games: bool = True
    warm_start: bool = False
    warm_start_max_distance: float = 0.05
    ce_warm_std_scale: float = 0.25

    def __post_init__(self) -> None:
        if not self.backend:
            raise ConfigError("backend must be a non-empty name or 'auto'")
        if self.warm_start_max_distance < 0:
            raise ConfigError("warm_start_max_distance must be >= 0")
        if not 0 < self.ce_warm_std_scale <= 1:
            raise ConfigError("ce_warm_std_scale must be in (0, 1]")


@dataclass(frozen=True)
class RetryPolicy:
    """Stall tolerance for the streaming engine's pump loop.

    A fault-injected (or real) telemetry feed can return "nothing yet"
    while it is stalled rather than exhausted.  The engine retries up to
    ``max_retries`` consecutive empty polls before giving up on the
    current :meth:`~repro.stream.pipeline.StreamEngine.run` call; the
    exponential backoff schedule (:meth:`delay`) is honoured wherever a
    sleeper is wired in (the deterministic test path never sleeps).

    The schedule is **jitter-free by design**: :meth:`delay` is a pure
    function of the attempt number and the policy's fields, with no RNG
    anywhere, so the total time a run spends backing off is exactly
    reproducible — for a given policy and a given seeded fault plan, two
    runs sleep for the same attempts and the same cumulative seconds
    (:meth:`total_backoff`).  Randomness belongs to the fault plan's
    seeded RNG, never to the retry clock.

    Parameters
    ----------
    max_retries:
        Consecutive empty polls tolerated before ``run`` returns early.
    backoff_base_s:
        First retry's backoff in seconds; each further retry doubles it.
        Zero (the default) disables sleeping entirely.
    backoff_max_s:
        Ceiling of the exponential schedule.
    """

    max_retries: int = 8
    backoff_base_s: float = 0.0
    backoff_max_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ConfigError(
                f"backoff_max_s must be >= backoff_base_s, got "
                f"{self.backoff_max_s} < {self.backoff_base_s}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff in seconds before retry ``attempt`` (1-based).

        Deterministic: no jitter is ever applied, so the full schedule
        is knowable up front (see :meth:`total_backoff`).
        """
        if attempt < 1:
            raise ConfigError(f"attempt must be >= 1, got {attempt}")
        if self.backoff_base_s <= 0.0:
            return 0.0
        return min(self.backoff_base_s * 2.0 ** (attempt - 1), self.backoff_max_s)

    def total_backoff(self, retries: int) -> float:
        """Exact cumulative sleep for ``retries`` consecutive stalls.

        ``sum(delay(a) for a in 1..retries)`` — because the schedule is
        jitter-free this is not an estimate but the precise wall-clock
        budget a stall burst costs, reproducible run to run.
        """
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        return sum(self.delay(attempt) for attempt in range(1, retries + 1))


@dataclass(frozen=True)
class CommunityConfig:
    """Top-level description of the simulated community.

    The paper simulates 500 customers; scale the count down for fast tests.
    ``appliances_per_customer`` bounds the synthetic task fleet per home.

    ``tariff`` selects the billing structure the scheduling game prices
    decisions through (:mod:`repro.tariffs`).  ``None`` — the default —
    is the paper's implicit flat net-metering tariff via the legacy code
    path: bitwise-identical results, identical cache keys, identical
    config fingerprints (serialization omits the field entirely).
    """

    n_customers: int = 500
    appliances_per_customer: tuple[int, int] = (4, 8)
    pv_adoption: float = 1.0
    time: TimeGrid = field(default_factory=TimeGrid)
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    solar: SolarConfig = field(default_factory=SolarConfig)
    pricing: PricingConfig = field(default_factory=PricingConfig)
    game: GameConfig = field(default_factory=GameConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    solver: SolverConfig = field(default_factory=SolverConfig)
    tariff: "Tariff | None" = None
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.n_customers < 1:
            raise ConfigError("n_customers must be >= 1")
        lo, hi = self.appliances_per_customer
        if not 1 <= lo <= hi:
            raise ConfigError(
                f"appliances_per_customer must satisfy 1 <= lo <= hi, got ({lo}, {hi})"
            )
        if not 0 <= self.pv_adoption <= 1:
            raise ConfigError("pv_adoption must be in [0, 1]")

    def with_updates(self, **changes: Any) -> "CommunityConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def config_to_dict(config: CommunityConfig) -> dict[str, Any]:
    """JSON-serializable representation of a community configuration.

    Used by the streaming checkpoint format: a checkpoint must be
    self-contained, so the config rides along and
    :func:`config_from_dict` rebuilds the identical (validated)
    dataclass tree on resume.

    ``tariff=None`` (the paper's implicit flat net metering) is omitted
    from the payload rather than serialized as ``null``: every config
    fingerprint computed before the tariff layer existed — golden-master
    ``config_sha256`` digests, checkpoint manifests — stays byte-stable.
    """
    data = asdict(config)
    if config.tariff is None:
        del data["tariff"]
    else:
        from repro.tariffs.base import tariff_to_dict

        data["tariff"] = tariff_to_dict(config.tariff)
    return data


def config_from_dict(payload: dict[str, Any]) -> CommunityConfig:
    """Rebuild a :class:`CommunityConfig` from :func:`config_to_dict` output."""
    data = dict(payload)
    tariff: "Tariff | None" = None
    if data.get("tariff") is not None:
        from repro.tariffs.base import tariff_from_dict

        tariff = tariff_from_dict(data["tariff"])
    return CommunityConfig(
        n_customers=int(data["n_customers"]),
        appliances_per_customer=tuple(data["appliances_per_customer"]),
        pv_adoption=float(data["pv_adoption"]),
        time=TimeGrid(**data["time"]),
        battery=BatteryConfig(**data["battery"]),
        solar=SolarConfig(**data["solar"]),
        pricing=PricingConfig(**data["pricing"]),
        game=GameConfig(**data["game"]),
        detection=DetectionConfig(**data["detection"]),
        # Checkpoints written before the solver layer existed carry no
        # "solver" section; defaults reproduce the historical behaviour.
        solver=SolverConfig(**data.get("solver", {})),
        tariff=tariff,
        seed=int(data["seed"]),
    )
