"""Core configuration and the integrated detection framework facade."""

from repro.core.config import (
    BatteryConfig,
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    PricingConfig,
    RetryPolicy,
    SolarConfig,
    TimeGrid,
)
from repro.core.framework import DetectionFramework, FrameworkResult
from repro.core.presets import (
    bench_preset,
    paper_preset,
    smoke_preset,
)

__all__ = [
    "BatteryConfig",
    "CommunityConfig",
    "DetectionConfig",
    "DetectionFramework",
    "FrameworkResult",
    "GameConfig",
    "PricingConfig",
    "RetryPolicy",
    "SolarConfig",
    "TimeGrid",
    "bench_preset",
    "paper_preset",
    "smoke_preset",
]
