"""Experiment presets at three scales.

- :func:`paper_preset` — the paper's setup: 500 customers, hourly grid.
- :func:`bench_preset` — the default for the benchmark harness: a smaller
  community with the same structure, so every table and figure regenerates
  in seconds while preserving the comparisons' shape.
- :func:`smoke_preset` — minimal, for fast unit/integration tests.
"""

from __future__ import annotations

from repro.core.config import (
    CommunityConfig,
    DetectionConfig,
    GameConfig,
    TimeGrid,
)


def paper_preset(*, seed: int = 2015) -> CommunityConfig:
    """The paper's simulation scale (500 customers, 24 slots/day)."""
    return CommunityConfig(
        n_customers=500,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        seed=seed,
    )


def bench_preset(*, seed: int = 2015) -> CommunityConfig:
    """Benchmark-harness scale: same structure, faster to solve."""
    return CommunityConfig(
        n_customers=120,
        appliances_per_customer=(2, 3),
        pv_adoption=0.5,
        time=TimeGrid(slots_per_day=24, n_days=1),
        game=GameConfig(max_rounds=6, ce_iterations=10, ce_samples=40),
        detection=DetectionConfig(n_monitored_meters=10),
        seed=seed,
    )


def smoke_preset(*, seed: int = 7) -> CommunityConfig:
    """Tiny configuration for fast tests."""
    return CommunityConfig(
        n_customers=12,
        appliances_per_customer=(2, 3),
        time=TimeGrid(slots_per_day=24, n_days=1),
        game=GameConfig(
            max_rounds=3,
            inner_iterations=1,
            ce_samples=16,
            ce_elites=4,
            ce_iterations=4,
        ),
        detection=DetectionConfig(n_monitored_meters=4),
        seed=seed,
    )
