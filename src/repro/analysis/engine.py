"""Core of the ``repro-lint`` static-analysis engine.

The engine walks Python sources with :mod:`ast`, runs a set of
repo-specific :class:`Rule` subclasses over each parsed module, and
collects :class:`Violation` records.  Rules are deliberately small — one
invariant each — and every rule can be

- scoped to path fragments (``include`` / ``exclude`` lists, merged
  from :class:`LintConfig`), and
- silenced on a single line with ``# repro: noqa[RULE001]`` (see
  :mod:`repro.analysis.suppressions`).

The rules themselves live in :mod:`repro.analysis.rules`; reporters in
:mod:`repro.analysis.reporters`; the CLI in :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import ast
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.suppressions import SuppressionIndex

#: Rule id used for files that fail to parse at all.
PARSE_ERROR_RULE = "E999"


@dataclass(frozen=True)
class Violation:
    """One rule hit at a concrete source position."""

    rule: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class FileContext:
    """Everything a rule may need about the module under analysis."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=rule,
            message=message,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class Rule:
    """Base class for one lint invariant.

    Subclasses set ``rule_id``/``summary`` and implement :meth:`check`
    as a generator of violations.  ``default_include`` restricts a rule
    to paths containing one of the fragments (empty = every scanned
    file); ``default_exclude`` carves out allowlisted paths.
    """

    rule_id: str = ""
    summary: str = ""
    #: Path fragments the rule is limited to (empty = all files).
    default_include: tuple[str, ...] = ()
    #: Path fragments the rule never fires on (per-rule allowlist).
    default_exclude: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def applies_to(self, ctx: FileContext, config: "LintConfig") -> bool:
        include, exclude = config.scope_for(self)
        posix = ctx.display_path.replace("\\", "/")
        if include and not any(fragment in posix for fragment in include):
            return False
        return not any(fragment in posix for fragment in exclude)


@dataclass
class LintConfig:
    """Per-rule scoping overrides, optionally loaded from pyproject.

    ``[tool.repro-lint.rules.DET002] exclude = ["src/repro/service/"]``
    replaces the rule's built-in allowlist; ``include`` likewise.  The
    defaults baked into each rule class apply when no override is set.
    """

    includes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    excludes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()

    def scope_for(self, rule: Rule) -> tuple[tuple[str, ...], tuple[str, ...]]:
        include = self.includes.get(rule.rule_id, rule.default_include)
        exclude = self.excludes.get(rule.rule_id, rule.default_exclude)
        return include, exclude

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        """Read ``[tool.repro-lint]`` overrides; missing file/table = defaults."""
        config = cls()
        if not pyproject.is_file():
            return config
        with pyproject.open("rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get("repro-lint", {})
        for rule_id, scope in table.get("rules", {}).items():
            if "include" in scope:
                config.includes[rule_id] = tuple(scope["include"])
            if "exclude" in scope:
                config.excludes[rule_id] = tuple(scope["exclude"])
        if "ignore" in table:
            config.ignore = frozenset(table["ignore"])
        return config


@dataclass
class LintReport:
    """Outcome of one engine run."""

    violations: list[Violation]
    files_scanned: int

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return dict(sorted(out.items()))

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


class LintEngine:
    """Run a rule set over files and directories."""

    def __init__(self, rules: Sequence[Rule], config: LintConfig | None = None) -> None:
        self.rules = list(rules)
        self.config = config or LintConfig()

    def run(self, paths: Iterable[Path | str], *, root: Path | None = None) -> LintReport:
        root = root or Path.cwd()
        violations: list[Violation] = []
        files = 0
        for path in self._iter_files(paths):
            files += 1
            violations.extend(self.check_file(path, root=root))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return LintReport(violations=violations, files_scanned=files)

    def check_file(self, path: Path, *, root: Path | None = None) -> list[Violation]:
        display = self._display_path(path, root or Path.cwd())
        source = path.read_text(encoding="utf-8")
        return self.check_source(source, display_path=display, path=path)

    def check_source(
        self, source: str, *, display_path: str = "<string>", path: Path | None = None
    ) -> list[Violation]:
        """Lint one module given as text (the unit used by the test suite)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Violation(
                    rule=PARSE_ERROR_RULE,
                    message=f"could not parse: {exc.msg}",
                    path=display_path,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                )
            ]
        ctx = FileContext(
            path=path or Path(display_path),
            display_path=display_path,
            source=source,
            tree=tree,
        )
        suppressions = SuppressionIndex.from_source(source)
        out: list[Violation] = []
        for rule in self.rules:
            if not self.config.rule_enabled(rule.rule_id):
                continue
            if not rule.applies_to(ctx, self.config):
                continue
            for violation in rule.check(ctx):
                if not suppressions.is_suppressed(violation.line, violation.rule):
                    out.append(violation)
        return out

    @staticmethod
    def _display_path(path: Path, root: Path) -> str:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    @staticmethod
    def _iter_files(paths: Iterable[Path | str]) -> Iterator[Path]:
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            candidates: Iterable[Path]
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield candidate
