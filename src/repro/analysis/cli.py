"""``repro-lint`` — the console entry point of the static-analysis gate.

Usage::

    repro-lint [paths ...]            # default: src tests
    repro-lint --format json src
    repro-lint --select DET001,FLT001 src
    repro-lint --list-rules
    repro-lint --program src          # whole-program passes (CONC/SEED/CTR)
    repro-lint --program --update-baseline src

In ``--program`` mode findings are matched against the committed
``.repro-lint-baseline.json`` (when present): only *new* findings fail
the gate, ``--update-baseline`` rewrites the file, ``--no-baseline``
compares against nothing.

Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.
Also reachable as ``repro lint ...`` and ``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import LintConfig, LintEngine, LintReport
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules

USAGE_ERROR = 2


def _split_rule_ids(raw: str) -> frozenset[str]:
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST lint for the repo's determinism and API contracts "
            "(see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run exclusively"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml with a [tool.repro-lint] table "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="run the whole-program passes (CONC/SEED/CTR) instead of "
        "the per-file rules",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file for --program mode "
        "(default: ./.repro-lint-baseline.json when present)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="with --program: rewrite the baseline from this run's "
        "findings and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="with --program: report every finding, ignoring any baseline",
    )
    return parser


def _run_program(args: argparse.Namespace, config: LintConfig) -> int:
    from repro.analysis.program import (
        BASELINE_FILENAME,
        Baseline,
        BaselineError,
        ProgramAnalyzer,
        apply_baseline,
    )

    analyzer = ProgramAnalyzer(config=config)
    report = analyzer.run(args.paths, root=Path.cwd())
    baseline_path = args.baseline or Path(BASELINE_FILENAME)

    if args.update_baseline:
        Baseline.from_violations(report.violations).save(baseline_path)
        print(
            f"repro-lint: wrote {len(report.violations)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    baselined = 0
    stale = 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return USAGE_ERROR
        result = apply_baseline(report.violations, baseline)
        report = LintReport(
            violations=result.new, files_scanned=report.files_scanned
        )
        baselined = result.baselined
        stale = len(result.stale)

    print(
        render_json(report, baselined=baselined, stale=stale)
        if args.fmt == "json"
        else render_text(report, baselined=baselined, stale=stale)
    )
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.program:
        from repro.analysis.program import program_rules

        rules: list = list(program_rules())
    else:
        rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    config = LintConfig.from_pyproject(args.config or Path("pyproject.toml"))
    if args.select:
        config.select = _split_rule_ids(args.select)
    if args.ignore:
        config.ignore = config.ignore | _split_rule_ids(args.ignore)

    known = {rule.rule_id for rule in rules}
    requested = (config.select or frozenset()) | frozenset(
        _split_rule_ids(args.ignore) if args.ignore else ()
    )
    unknown = sorted(requested - known)
    if unknown:
        print(f"repro-lint: unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
        return USAGE_ERROR

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return USAGE_ERROR

    if args.program:
        return _run_program(args, config)

    engine = LintEngine(rules, config)
    report = engine.run(args.paths)
    print(render_json(report) if args.fmt == "json" else render_text(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
