"""``repro-lint`` — the console entry point of the static-analysis gate.

Usage::

    repro-lint [paths ...]            # default: src tests
    repro-lint --format json src
    repro-lint --select DET001,FLT001 src
    repro-lint --list-rules

Exit codes: 0 = clean, 1 = violations found, 2 = usage or I/O error.
Also reachable as ``repro lint ...`` and ``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import LintConfig, LintEngine
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules

USAGE_ERROR = 2


def _split_rule_ids(raw: str) -> frozenset[str]:
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST lint for the repo's determinism and API contracts "
            "(see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select", default=None, help="comma-separated rule ids to run exclusively"
    )
    parser.add_argument(
        "--ignore", default=None, help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="pyproject.toml with a [tool.repro-lint] table "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    config = LintConfig.from_pyproject(args.config or Path("pyproject.toml"))
    if args.select:
        config.select = _split_rule_ids(args.select)
    if args.ignore:
        config.ignore = config.ignore | _split_rule_ids(args.ignore)

    known = {rule.rule_id for rule in rules}
    requested = (config.select or frozenset()) | frozenset(
        _split_rule_ids(args.ignore) if args.ignore else ()
    )
    unknown = sorted(requested - known)
    if unknown:
        print(f"repro-lint: unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
        return USAGE_ERROR

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return USAGE_ERROR

    engine = LintEngine(rules, config)
    report = engine.run(args.paths)
    print(render_json(report) if args.fmt == "json" else render_text(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
