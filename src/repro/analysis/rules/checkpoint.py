"""CKPT001 — checkpointed state must round-trip completely.

The stream layer's checkpoint/resume identity guarantee (a resumed
engine is bitwise-equal to an uninterrupted one) only holds if every
piece of *evolving* state reaches the serializer and comes back through
the deserializer.  This rule finds classes that expose a serializer
(``to_json``/``to_dict``/``state_dict``) together with a deserializer
(``from_json``/``from_dict``/``from_state``/``load_state``/``restore``)
and checks that every attribute which is (a) initialised in
``__init__`` and (b) mutated by some other method — i.e. genuine runtime
state, not frozen configuration — is mentioned by both sides.

"Mentioned" is deliberately loose (an exact data-flow proof is out of
scope for a linter): a ``self.attr``/``cls.attr`` access, a string key,
or a keyword argument whose name matches the attribute (modulo leading
underscores) counts; inside deserializers a plain local name does too,
covering the common ``history = ...; return cls(history, ...)`` shape.
Derived caches that are legitimately rebuilt on restore get a
``# repro: noqa[CKPT001]`` on their ``__init__`` assignment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, Violation

_SERIALIZERS = frozenset({"to_json", "to_dict", "state_dict"})
_DESERIALIZERS = frozenset(
    {"from_json", "from_dict", "from_state", "load_state", "restore"}
)


def _self_attr_writes(fn: ast.FunctionDef) -> dict[str, int]:
    """Attribute name -> first assignment line for ``self.X = ...`` writes."""
    out: dict[str, int] = {}
    for sub in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            targets = [sub.target]
        for target in targets:
            for node in ast.walk(target):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    out.setdefault(node.attr, node.lineno)
    return out


def _mentions(fn: ast.FunctionDef, *, include_locals: bool) -> set[str]:
    """Names the method plausibly serialises/restores."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in ("self", "cls"):
                out.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            out.add(node.arg)
        elif include_locals and isinstance(node, ast.Name):
            out.add(node.id)
    return out


def _matches(attr: str, mentioned: set[str]) -> bool:
    return attr in mentioned or attr.lstrip("_") in mentioned


class CheckpointRoundTripRule(Rule):
    """CKPT001 — every mutated ``__init__`` attribute must round-trip."""

    rule_id = "CKPT001"
    summary = (
        "state attributes of checkpointable classes (to_json/to_dict/"
        "state_dict + matching deserializer) must appear in both the "
        "serializer and the deserializer"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        methods = {n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)}
        serializers = [methods[n] for n in sorted(_SERIALIZERS & methods.keys())]
        deserializers = [methods[n] for n in sorted(_DESERIALIZERS & methods.keys())]
        init = methods.get("__init__")
        if not (serializers and deserializers and init):
            return
        init_attrs = _self_attr_writes(init)
        mutated: set[str] = set()
        for name, fn in methods.items():
            if name == "__init__" or name in _DESERIALIZERS:
                continue
            mutated.update(_self_attr_writes(fn))
        serialized: set[str] = set()
        for fn in serializers:
            serialized |= _mentions(fn, include_locals=False)
        restored: set[str] = set()
        for fn in deserializers:
            restored |= _mentions(fn, include_locals=True)
        for attr in sorted(init_attrs.keys() & mutated):
            missing = []
            if not _matches(attr, serialized):
                missing.append("serializer")
            if not _matches(attr, restored):
                missing.append("deserializer")
            if missing:
                line = init_attrs[attr]
                anchor = ast.copy_location(ast.Pass(), init)
                anchor.lineno = line
                anchor.col_offset = 0
                yield ctx.violation(
                    self.rule_id,
                    anchor,
                    f"{cls.name}.{attr} is mutated at runtime but missing from "
                    f"the {' and '.join(missing)}; checkpointed state must "
                    "round-trip completely",
                )
