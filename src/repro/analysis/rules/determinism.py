"""Determinism rules: DET001 (global RNG), DET002 (wall clock), DET003
(unordered iteration).

These protect the repo's replay guarantees: every simulation draw flows
through an explicit :class:`numpy.random.Generator` that the caller
seeds, no core path reads the wall clock, and nothing accumulates in an
order the hash seed can perturb.  One stray ``np.random.rand()`` breaks
bitwise stream-vs-batch equivalence silently — these rules catch that
class of regression at review time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, Violation
from repro.analysis.rules._names import ImportMap, dotted_name, resolve_call

#: numpy.random attributes that *construct* deterministic generators —
#: the only sanctioned way randomness enters the system.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: stdlib ``random`` attributes that construct local instances rather
#: than touching the hidden module-level RNG.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.asctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class GlobalRngRule(Rule):
    """DET001 — randomness must enter via an explicit Generator."""

    rule_id = "DET001"
    summary = (
        "no global-RNG calls (np.random.*, random.*, bare .seed()); pass a "
        "numpy.random.Generator instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        stdlib_random_names = {
            local
            for local, target in imports.aliases.items()
            if target == "random" or target.startswith("random.")
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _STDLIB_RANDOM_ALLOWED:
                        yield ctx.violation(
                            self.rule_id,
                            node,
                            f"import of global-RNG function random.{alias.name}; "
                            "use a seeded random.Random or numpy Generator",
                        )
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NP_RANDOM_ALLOWED:
                        yield ctx.violation(
                            self.rule_id,
                            node,
                            f"import of global-RNG function numpy.random.{alias.name}; "
                            "randomness must flow through numpy.random.Generator",
                        )
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, imports)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                attr = name.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_ALLOWED:
                    yield ctx.violation(
                        self.rule_id,
                        node,
                        f"global numpy RNG call {name}(); pass a "
                        "numpy.random.Generator parameter instead",
                    )
                continue
            head = name.split(".", 1)[0]
            if head in stdlib_random_names and "." in name:
                attr = name.rsplit(".", 1)[1]
                if attr not in _STDLIB_RANDOM_ALLOWED:
                    yield ctx.violation(
                        self.rule_id,
                        node,
                        f"global stdlib RNG call {name}(); use a seeded "
                        "random.Random instance or numpy Generator",
                    )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "seed"
                and not name.startswith("numpy.random.")
            ):
                yield ctx.violation(
                    self.rule_id,
                    node,
                    f"bare .seed() call ({name}()); construct a fresh seeded "
                    "generator instead of reseeding shared state",
                )


class WallClockRule(Rule):
    """DET002 — no wall-clock reads outside the service allowlist."""

    rule_id = "DET002"
    summary = (
        "no wall-clock reads (time.time, datetime.now/utcnow, ...) outside "
        "the perf/service allowlist"
    )
    default_exclude = ("src/repro/service/",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        imports = ImportMap.from_tree(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, imports)
            if name in _WALL_CLOCK:
                yield ctx.violation(
                    self.rule_id,
                    node,
                    f"wall-clock read {name}(); core paths must be replayable — "
                    "inject timestamps or stamp results outside the hot path",
                )


def _is_dict_view_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
    )


def _is_unordered(node: ast.expr) -> bool:
    """True for expressions whose iteration order is interpreter-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ) and (_is_unordered(node.func.value) or _is_dict_view_call(node.func.value)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # Set algebra: a & b, d.keys() - other, ... — a set either side
        # (or a dict view, whose set-operators yield sets) taints the result.
        for side in (node.left, node.right):
            if _is_unordered(side) or _is_dict_view_call(side):
                return True
    return False


class UnorderedIterationRule(Rule):
    """DET003 — iterate sets/dict-view algebra via sorted(), never directly."""

    rule_id = "DET003"
    summary = (
        "no direct iteration over sets or dict-view set algebra in loops/"
        "comprehensions; wrap in sorted(...) for a stable order"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                target = it
                # enumerate(X) / reversed(X) just forward the inner order.
                while (
                    isinstance(target, ast.Call)
                    and isinstance(target.func, ast.Name)
                    and target.func.id in ("enumerate", "reversed")
                    and target.args
                ):
                    target = target.args[0]
                if _is_unordered(target):
                    yield ctx.violation(
                        self.rule_id,
                        target,
                        "iteration over an unordered set expression; order can "
                        "vary with the hash seed — iterate sorted(...) instead",
                    )
