"""Import-alias tracking and dotted-name resolution for lint rules.

Rules that care about *which module* a call targets (the RNG and
wall-clock rules) need ``np.random.rand`` and
``from numpy import random as npr; npr.rand`` to resolve to the same
canonical dotted name.  :class:`ImportMap` records the module-level
aliases; :func:`dotted_name` flattens an attribute chain; and
:func:`resolve_call` combines the two.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.rand`` -> ``"np.random.rand"``; None if not a pure chain."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass
class ImportMap:
    """Local name -> canonical dotted module/object path."""

    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imports.aliases[local] = f"{node.module}.{alias.name}"
        return imports

    def resolve(self, name: str) -> str:
        """Canonicalise the head segment of a dotted name."""
        head, _, rest = name.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


def resolve_call(node: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted name of the call target, or None."""
    name = dotted_name(node.func)
    if name is None:
        return None
    return imports.resolve(name)
