"""Rule registry for ``repro-lint``.

Adding a rule = subclass :class:`repro.analysis.engine.Rule` in one of
the modules here and list it in :data:`ALL_RULES`.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.checkpoint import CheckpointRoundTripRule
from repro.analysis.rules.contracts import FloatEqualityRule, PublicApiAnnotationRule
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.observability import PrintCallRule

#: Every shipped rule class, in rule-id order.
ALL_RULES: tuple[type[Rule], ...] = (
    GlobalRngRule,
    WallClockRule,
    UnorderedIterationRule,
    CheckpointRoundTripRule,
    PublicApiAnnotationRule,
    FloatEqualityRule,
    PrintCallRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule_cls() for rule_cls in ALL_RULES]


__all__ = [
    "ALL_RULES",
    "default_rules",
    "CheckpointRoundTripRule",
    "FloatEqualityRule",
    "GlobalRngRule",
    "PrintCallRule",
    "PublicApiAnnotationRule",
    "UnorderedIterationRule",
    "WallClockRule",
]
