"""Observability rule: OBS001 (no ``print()`` in library code).

Progress and diagnostics from library modules must flow through
:mod:`repro.obs.logs` — structured, level-filtered, and stamped with the
active run/span ids — not through bare ``print()`` calls that bypass
every collector.  Terminal-facing surfaces are exempt: the CLI entry
points render for humans, and :mod:`repro.reporting` *is* the renderer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, Violation


class PrintCallRule(Rule):
    """OBS001 — library modules log via repro.obs, never print()."""

    rule_id = "OBS001"
    summary = (
        "no print() in library code; use repro.obs.logs.get_logger() "
        "(CLI entry points and repro.reporting are exempt)"
    )
    default_include = ("src/repro/",)
    default_exclude = ("cli.py", "/reporting/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.violation(
                    self.rule_id,
                    node,
                    "print() bypasses structured logging; use "
                    "repro.obs.logs.get_logger() so output carries the "
                    "run/span context",
                )
