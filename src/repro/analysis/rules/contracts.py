"""API-contract rules: API001 (full type annotations on the public
surface) and FLT001 (no bare float equality).

API001 keeps the ``py.typed`` promise honest: downstream type checkers
only see what is annotated, and mypy's strict gate on ``repro.core`` /
``repro.stream`` / ``repro.perf`` builds on the same coverage.  FLT001
guards the numeric contracts — an ``==`` against a float literal in a
detector threshold or billing comparison is almost always a latent
tolerance bug; exact sentinel checks carry an explicit noqa.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Rule, Violation


class PublicApiAnnotationRule(Rule):
    """API001 — public functions/methods must be fully annotated."""

    rule_id = "API001"
    summary = (
        "public functions and methods must annotate every parameter and "
        "the return type"
    )
    default_include = ("src/repro/",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._walk_body(ctx, ctx.tree.body)

    def _walk_body(
        self, ctx: FileContext, body: list[ast.stmt]
    ) -> Iterator[Violation]:
        # Module- and class-level defs only: a nested closure is an
        # implementation detail, not public API.
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._walk_body(ctx, node.body)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield from self._check_def(ctx, node)

    def _check_def(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        args = node.args
        positional = args.posonlyargs + args.args
        missing: list[str] = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(a.arg for a in args.kwonlyargs if a.annotation is None)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if missing:
            yield ctx.violation(
                self.rule_id,
                node,
                f"public function {node.name}() is missing parameter "
                f"annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            yield ctx.violation(
                self.rule_id,
                node,
                f"public function {node.name}() is missing a return annotation",
            )


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    """FLT001 — no ``==`` / ``!=`` against float literals."""

    rule_id = "FLT001"
    summary = (
        "no bare float equality; use math.isclose/pytest.approx, or noqa "
        "an intentionally exact sentinel check"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_literal(left) or _is_float_literal(right)
                ):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.violation(
                        self.rule_id,
                        node,
                        f"bare float {symbol} comparison against a literal; "
                        "floats compare exactly only by accident — use a "
                        "tolerance, or noqa a genuinely exact sentinel",
                    )
                left = right
