"""``# repro: noqa`` suppression comments.

Two spellings are recognised:

- ``# repro: noqa`` — silence every rule;
- ``# repro: noqa[DET001]`` / ``# repro: noqa[DET001,FLT001]`` —
  silence only the listed rule ids.

A suppression covers the **logical statement** it is written on: a
comment on any physical line of a multi-line expression (a call split
across lines, a comprehension, a parenthesised chain) silences the
whole statement, so the comment can sit on the readable line even when
the AST anchors the violation to the statement's first line.  A comment
on its own line covers only that line.

Anything after the closing bracket (or after bare ``noqa``) is free-form
commentary — stating *why* the suppression is justified is encouraged
and the convention throughout this repo.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES = "*"

_INSIGNIFICANT = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


def _parse_comment(comment: str) -> set[str] | None:
    """Rule ids a noqa comment names (``{ALL_RULES}`` for the bare form),
    or ``None`` when the comment is not a suppression."""
    match = _NOQA.search(comment)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return {ALL_RULES}
    return {part.strip().upper() for part in rules.split(",") if part.strip()}


@dataclass
class SuppressionIndex:
    """Line number -> set of suppressed rule ids (or :data:`ALL_RULES`)."""

    by_line: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        # Pending suppressions of the current logical line, with the
        # line the statement started on; a NEWLINE token closes the
        # logical line and spreads them over every physical line in it.
        logical_start: int | None = None
        pending: set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    rules = _parse_comment(token.string)
                    if rules is None:
                        continue
                    index._add(token.start[0], rules)
                    if logical_start is not None:
                        pending |= rules
                    continue
                if token.type == tokenize.NEWLINE:
                    if logical_start is not None and pending:
                        for line in range(logical_start, token.end[0] + 1):
                            index._add(line, pending)
                    logical_start = None
                    pending = set()
                    continue
                if token.type not in _INSIGNIFICANT and logical_start is None:
                    logical_start = token.start[0]
        except tokenize.TokenError:
            # Unterminated strings etc.; the parser reports those as E999.
            pass
        return index

    def _add(self, line: int, rules: set[str]) -> None:
        self.by_line.setdefault(line, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self.by_line.get(line)
        if not rules:
            return False
        return ALL_RULES in rules or rule.upper() in rules
