"""``# repro: noqa`` suppression comments.

Two spellings are recognised, always attached to the physical line the
violation is reported on:

- ``# repro: noqa`` — silence every rule on that line;
- ``# repro: noqa[DET001]`` / ``# repro: noqa[DET001,FLT001]`` —
  silence only the listed rule ids.

Anything after the closing bracket (or after bare ``noqa``) is free-form
commentary — stating *why* the suppression is justified is encouraged
and the convention throughout this repo.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES = "*"


@dataclass
class SuppressionIndex:
    """Line number -> set of suppressed rule ids (or :data:`ALL_RULES`)."""

    by_line: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        index = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _NOQA.search(token.string)
                if match is None:
                    continue
                line = token.start[0]
                rules = match.group("rules")
                if rules is None:
                    index.by_line.setdefault(line, set()).add(ALL_RULES)
                else:
                    for rule in rules.split(","):
                        rule = rule.strip().upper()
                        if rule:
                            index.by_line.setdefault(line, set()).add(rule)
        except tokenize.TokenError:
            # Unterminated strings etc.; the parser reports those as E999.
            pass
        return index

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self.by_line.get(line)
        if not rules:
            return False
        return ALL_RULES in rules or rule.upper() in rules
