"""Text and JSON reporters for lint results.

The JSON shape is a stable machine contract (consumed by CI annotations
and the reporter tests):

.. code-block:: json

    {
      "version": 1,
      "files_scanned": 12,
      "violations": [
        {"rule": "DET001", "message": "...", "path": "a.py", "line": 3, "col": 0}
      ],
      "counts": {"DET001": 1},
      "exit_code": 1
    }
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport

#: Bump when the JSON reporter shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def _baseline_note(baselined: int, stale: int) -> str:
    note = f"{baselined} baselined finding(s) suppressed"
    if stale:
        note += (
            f"; {stale} stale baseline entr(y/ies) no longer occur — "
            "run --update-baseline to shrink the file"
        )
    return note


def render_text(report: LintReport, *, baselined: int = 0, stale: int = 0) -> str:
    lines = [violation.format() for violation in report.violations]
    if report.violations:
        counts = ", ".join(f"{rule}: {n}" for rule, n in report.counts.items())
        lines.append("")
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_scanned} file(s) scanned ({counts})"
        )
    else:
        lines.append(f"ok: {report.files_scanned} file(s) scanned, no violations")
    if baselined or stale:
        lines.append(_baseline_note(baselined, stale))
    return "\n".join(lines)


def render_json(report: LintReport, *, baselined: int = 0, stale: int = 0) -> str:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "violations": [violation.to_dict() for violation in report.violations],
        "counts": report.counts,
        "exit_code": report.exit_code,
    }
    if baselined or stale:
        payload["baselined"] = baselined
        payload["stale_baseline_entries"] = stale
    return json.dumps(payload, indent=2, sort_keys=True)
