"""Static analysis for the repo's determinism and API contracts.

``repro.analysis`` is an AST-based lint engine (``repro-lint`` on the
command line, ``repro lint`` as a subcommand) with six repo-specific
rules:

=======  ==============================================================
DET001   no global-RNG calls; randomness enters via a Generator param
DET002   no wall-clock reads outside the service allowlist
DET003   no iteration over unordered set expressions
CKPT001  checkpointable classes must round-trip every mutated attribute
API001   public functions in ``src/repro`` must be fully annotated
FLT001   no bare float ``==`` / ``!=`` comparisons
=======  ==============================================================

See ``docs/STATIC_ANALYSIS.md`` for the rationale behind each rule and
the ``# repro: noqa[RULE]`` suppression syntax.
"""

from __future__ import annotations

from repro.analysis.engine import (
    FileContext,
    LintConfig,
    LintEngine,
    LintReport,
    Rule,
    Violation,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "Rule",
    "Violation",
    "default_rules",
    "render_json",
    "render_text",
]
