"""SEED — RNG and seed provenance dataflow.

The repo's determinism story hinges on one discipline: every random
stream is derived from an explicit seed (ultimately the experiment
config), and streams never migrate between execution contexts — a
``Generator`` is constructed *inside* the worker from a spawned
``SeedSequence`` child, never shipped across a thread/process boundary.

SEED001  every RNG construction takes an explicit seed.  A bare
         ``np.random.default_rng()`` pulls OS entropy and silently
         breaks run-to-run reproducibility.
SEED002  no RNG object reaches a boundary sink — a ``ParallelMap.map``
         task/item, a ``threading.Thread`` / ``multiprocessing.Process``
         constructor, or an executor ``submit``.  Provenance is tracked
         through helper calls with a ``returns_rng`` fixpoint over the
         call graph, so ``pm.map(task, self._make_rngs())`` is caught
         even though no Generator is visible at the call site.
SEED003  no RNG constructed inside a loop (or comprehension) from a
         loop-invariant seed — every iteration would replay the same
         stream.  Intentional lockstep replicas carry a reasoned
         ``# repro: noqa[SEED003]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Violation
from repro.analysis.program._shared import (
    free_names,
    iter_parallel_map_calls,
    local_task_function,
)
from repro.analysis.program.callgraph import CallGraph
from repro.analysis.program.framework import ProgramContext, ProgramRule
from repro.analysis.program.symbols import FunctionInfo, ModuleInfo, SymbolTable
from repro.analysis.rules._names import ImportMap, dotted_name, resolve_call

#: Constructors that must receive an explicit seed / entropy argument.
SEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.MT19937",
        "numpy.random.Philox",
        "numpy.random.SFC64",
        "random.Random",
    }
)

#: Constructors producing a *stream-bearing* RNG object that must not
#: cross a thread/process boundary (SeedSequence children may — that is
#: the sanctioned hand-off currency).
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

_THREAD_SINKS = frozenset({"threading.Thread", "multiprocessing.Process"})
_EXECUTOR_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
    }
)


def _is_rng_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    name = dotted_name(annotation)
    if name is None and isinstance(annotation, ast.Constant):
        name = annotation.value if isinstance(annotation.value, str) else None
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1]
    return tail in ("Generator", "RandomState")


class UnseededRngRule(ProgramRule):
    """SEED001 — no argument-free RNG construction anywhere."""

    rule_id = "SEED001"
    summary = (
        "RNG constructors must take an explicit seed (derived from "
        "SeedSequence or config); bare default_rng() pulls OS entropy"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for module in ctx.table.iter_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = resolve_call(node, module.imports)
                if name not in SEEDED_CONSTRUCTORS:
                    continue
                if node.args or node.keywords:
                    continue
                short = name.rsplit(".", 1)[-1]
                yield ctx.violation(
                    self.rule_id,
                    module,
                    node,
                    f"{short}() constructed without a seed — run-to-run "
                    "reproducibility is lost; thread the config seed or a "
                    "SeedSequence child through to this site",
                )


class _TaintScan:
    """Per-function RNG taint: which locals provably hold a Generator."""

    def __init__(
        self,
        table: SymbolTable,
        graph: CallGraph,
        fn: FunctionInfo,
        summaries: dict[str, bool],
    ) -> None:
        self.table = table
        self.fn = fn
        self.summaries = summaries
        module = table.modules.get(fn.module)
        self.imports: ImportMap | None = module.imports if module else None
        self._callee_by_node: dict[int, str | None] = {
            id(site.node): site.callee for site in graph.callees_of(fn.qualname)
        }
        self.tainted = self._collect()

    def _collect(self) -> set[str]:
        tainted: set[str] = set()
        args = self.fn.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if _is_rng_annotation(arg.annotation):
                tainted.add(arg.arg)
        # One pass is enough for straight-line `a = default_rng(s); b = a`
        # chains; re-run until stable for out-of-order aliasing.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self.fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if not self.expr_is_rng(node.value, tainted):
                    continue
                for target in node.targets:
                    names = (
                        [target]
                        if isinstance(target, ast.Name)
                        else [
                            elt
                            for elt in getattr(target, "elts", [])
                            if isinstance(elt, ast.Name)
                        ]
                    )
                    for name_node in names:
                        if name_node.id not in tainted:
                            tainted.add(name_node.id)
                            changed = True
        return tainted

    def call_returns_rng(self, node: ast.Call) -> bool:
        if self.imports is not None:
            resolved = resolve_call(node, self.imports)
            if resolved in RNG_CONSTRUCTORS:
                return True
        callee = self._callee_by_node.get(id(node))
        return bool(callee is not None and self.summaries.get(callee, False))

    def expr_is_rng(self, expr: ast.expr, tainted: set[str]) -> bool:
        """True when the expression's value provably contains an RNG."""
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            return self.call_returns_rng(expr)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_is_rng(elt, tainted) for elt in expr.elts)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_is_rng(expr.elt, tainted)
        if isinstance(expr, ast.DictComp):
            return self.expr_is_rng(expr.value, tainted)
        if isinstance(expr, ast.Dict):
            return any(
                value is not None and self.expr_is_rng(value, tainted)
                for value in expr.values
            )
        if isinstance(expr, ast.IfExp):
            return self.expr_is_rng(expr.body, tainted) or self.expr_is_rng(
                expr.orelse, tainted
            )
        if isinstance(expr, ast.Starred):
            return self.expr_is_rng(expr.value, tainted)
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_is_rng(v, tainted) for v in expr.values)
        return False

    def expr_mentions_rng(self, expr: ast.expr) -> str | None:
        """Name of the first RNG reference anywhere inside ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in self.tainted:
                return node.id
            if isinstance(node, ast.Call) and self.call_returns_rng(node):
                callee = self._callee_by_node.get(id(node))
                return (callee or "an RNG constructor").rsplit(".", 1)[-1] + "()"
        return None


def build_rng_summaries(table: SymbolTable, graph: CallGraph) -> dict[str, bool]:
    """``returns_rng`` per function qualname, via fixpoint over the graph."""
    summaries: dict[str, bool] = {fn.qualname: False for fn in table.iter_functions()}
    changed = True
    while changed:
        changed = False
        for fn in table.iter_functions():
            if summaries[fn.qualname]:
                continue
            scan = _TaintScan(table, graph, fn, summaries)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Return) and node.value is not None:
                    if scan.expr_is_rng(node.value, scan.tainted):
                        summaries[fn.qualname] = True
                        changed = True
                        break
    return summaries


def _executor_locals(fn: FunctionInfo, imports: ImportMap | None) -> set[str]:
    out: set[str] = set()
    if imports is None:
        return out
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if resolve_call(node.value, imports) in _EXECUTOR_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and resolve_call(item.context_expr, imports)
                    in _EXECUTOR_CONSTRUCTORS
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    out.add(item.optional_vars.id)
    return out


class RngBoundaryRule(ProgramRule):
    """SEED002 — no RNG object crosses a thread/process boundary."""

    rule_id = "SEED002"
    summary = (
        "Generators must not be passed across ParallelMap/Thread/Process/"
        "executor boundaries; ship SeedSequence children and construct "
        "the RNG inside the worker"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        summaries = build_rng_summaries(ctx.table, ctx.graph)
        for fn in ctx.table.iter_functions():
            module = ctx.table.modules.get(fn.module)
            if module is None:
                continue
            scan = _TaintScan(ctx.table, ctx.graph, fn, summaries)
            yield from self._check_parallel_map(ctx, module, fn, scan)
            yield from self._check_thread_sinks(ctx, module, fn, scan)

    def _check_parallel_map(
        self,
        ctx: ProgramContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        scan: _TaintScan,
    ) -> Iterator[Violation]:
        for call in iter_parallel_map_calls(ctx.table, fn):
            if not call.args:
                continue
            task = call.args[0]
            target = task if isinstance(task, ast.Lambda) else None
            if target is None and isinstance(task, ast.Name):
                target = local_task_function(fn, task.id)
            if target is not None:
                for name in sorted(free_names(target) & scan.tainted):
                    yield ctx.violation(
                        self.rule_id,
                        module,
                        task,
                        f"ParallelMap task captures RNG '{name}'; construct "
                        "the Generator inside the task from a spawned seed "
                        "(spawn_seeds)",
                    )
            for items in call.args[1:] + [kw.value for kw in call.keywords]:
                witness = scan.expr_mentions_rng(items)
                if witness is not None:
                    yield ctx.violation(
                        self.rule_id,
                        module,
                        items,
                        f"RNG ({witness}) crosses the ParallelMap boundary "
                        "via the items iterable; pass SeedSequence children "
                        "and construct Generators inside the worker",
                    )

    def _check_thread_sinks(
        self,
        ctx: ProgramContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        scan: _TaintScan,
    ) -> Iterator[Violation]:
        executors = _executor_locals(fn, module.imports)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            sink: str | None = None
            resolved = resolve_call(node, module.imports)
            if resolved in _THREAD_SINKS:
                sink = resolved.rsplit(".", 1)[-1]
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in executors
            ):
                sink = "executor.submit"
            if sink is None:
                continue
            for expr in list(node.args) + [kw.value for kw in node.keywords]:
                witness = scan.expr_mentions_rng(expr)
                if witness is not None:
                    yield ctx.violation(
                        self.rule_id,
                        module,
                        expr,
                        f"RNG ({witness}) handed to {sink}; generators are "
                        "not thread/process-portable — ship a SeedSequence "
                        "child instead",
                    )


def _bound_names(target: ast.expr) -> set[str]:
    return {
        node.id
        for node in ast.walk(target)
        if isinstance(node, ast.Name)
    }


def _assigned_in(nodes: list[ast.stmt]) -> set[str]:
    out: set[str] = set()
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                out.add(node.id)
    return out


class LoopRngRule(ProgramRule):
    """SEED003 — no loop-invariant RNG construction inside loops."""

    rule_id = "SEED003"
    summary = (
        "an RNG constructed in a loop must derive its seed from the "
        "iteration; a loop-invariant seed replays the identical stream "
        "every pass"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for module in ctx.table.iter_modules():
            yield from self._walk(ctx, module, module.tree, frozenset(), False)

    def _walk(
        self,
        ctx: ProgramContext,
        module: ModuleInfo,
        node: ast.AST,
        varying: frozenset[str],
        in_loop: bool,
    ) -> Iterator[Violation]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            inner = varying | _bound_names(node.target) | _assigned_in(node.body)
            for stmt in node.body + node.orelse:
                yield from self._walk(ctx, module, stmt, inner, True)
            yield from self._walk(ctx, module, node.iter, varying, in_loop)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = varying
            for gen in node.generators:
                inner = inner | _bound_names(gen.target)
                yield from self._walk(ctx, module, gen.iter, varying, in_loop)
            elts = (
                [node.key, node.value]
                if isinstance(node, ast.DictComp)
                else [node.elt]
            )
            for elt in elts:
                yield from self._walk(ctx, module, elt, inner, True)
            return
        if isinstance(node, ast.Call):
            yield from self._check_call(ctx, module, node, varying, in_loop)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, module, child, varying, in_loop)

    def _check_call(
        self,
        ctx: ProgramContext,
        module: ModuleInfo,
        node: ast.Call,
        varying: frozenset[str],
        in_loop: bool,
    ) -> Iterator[Violation]:
        if not in_loop or not (node.args or node.keywords):
            return
        name = resolve_call(node, module.imports)
        if name not in SEEDED_CONSTRUCTORS and name not in RNG_CONSTRUCTORS:
            return
        seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
        mentioned: set[str] = set()
        for expr in seed_exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    # A call in the seed expression may vary per
                    # iteration (next(...), .spawn(...)) — cannot prove
                    # invariance, stay quiet.
                    return
                if isinstance(sub, ast.Name):
                    mentioned.add(sub.id)
        if mentioned & varying:
            return
        short = (name or "rng").rsplit(".", 1)[-1]
        yield ctx.violation(
            self.rule_id,
            module,
            node,
            f"{short}(...) constructed inside a loop with a loop-invariant "
            "seed — every iteration replays the same stream; derive the "
            "seed from the loop variable or SeedSequence.spawn",
        )
