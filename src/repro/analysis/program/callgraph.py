"""Best-effort static call graph over the symbol table.

Each function/method body contributes :class:`CallSite` records.  A
site resolves to a project symbol when the callee is

- a module-level function or class visible through the module's imports
  (``build_fleet(...)``, ``FleetEngine(...)`` — constructors resolve to
  ``Class.__init__`` when the class defines one);
- a ``self.method(...)`` / ``cls.method(...)`` call inside a class
  (resolved through the class, then its project-internal bases);
- an explicit ``Module.symbol(...)`` attribute chain.

Calls on values of unknown type (``obj.method()``) stay unresolved but
keep their attribute name, which the lock-discipline pass uses for
same-class reasoning.  The graph is deliberately an over-approximation
in neither direction — rules that consume it treat resolution failures
conservatively (no finding), never speculatively.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.program.symbols import ClassInfo, FunctionInfo, SymbolTable
from repro.analysis.rules._names import dotted_name


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a known function."""

    caller: str
    callee: str | None
    #: Attribute name for unresolved ``<expr>.name(...)`` calls.
    attr: str | None
    node: ast.Call
    #: True for ``self.x(...)`` / ``cls.x(...)`` receivers.
    on_self: bool = False


class CallGraph:
    """Call sites grouped by caller, with reverse edges."""

    def __init__(self) -> None:
        self.sites_by_caller: dict[str, list[CallSite]] = {}
        self._callers_of: dict[str, set[str]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls()
        for fn in table.iter_functions():
            graph.sites_by_caller[fn.qualname] = list(
                _collect_sites(table, fn)
            )
        for caller, sites in graph.sites_by_caller.items():
            for site in sites:
                if site.callee is not None:
                    graph._callers_of.setdefault(site.callee, set()).add(caller)
        return graph

    def callees_of(self, qualname: str) -> list[CallSite]:
        return self.sites_by_caller.get(qualname, [])

    def callers_of(self, qualname: str) -> set[str]:
        return set(self._callers_of.get(qualname, set()))


def _collect_sites(table: SymbolTable, fn: FunctionInfo) -> Iterator[CallSite]:
    cls_info = (
        table.classes.get(fn.class_qualname)
        if fn.class_qualname is not None
        else None
    )
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        yield _resolve_site(table, fn, cls_info, node)


def _resolve_site(
    table: SymbolTable,
    fn: FunctionInfo,
    cls_info: ClassInfo | None,
    node: ast.Call,
) -> CallSite:
    func = node.func
    # self.method(...) / cls.method(...)
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
        and cls_info is not None
    ):
        callee = _resolve_method(table, cls_info, func.attr)
        return CallSite(
            caller=fn.qualname,
            callee=callee,
            attr=func.attr,
            node=node,
            on_self=True,
        )
    name = dotted_name(func)
    if name is None:
        attr = func.attr if isinstance(func, ast.Attribute) else None
        return CallSite(caller=fn.qualname, callee=None, attr=attr, node=node)
    resolved = table.resolve_name(fn.module, name)
    if resolved is not None and resolved in table.classes:
        # Constructor call: edge onto __init__ when the class defines one.
        init = table.classes[resolved].method("__init__")
        resolved = init.qualname if init is not None else resolved
    attr = name.rsplit(".", 1)[-1] if "." in name else None
    return CallSite(caller=fn.qualname, callee=resolved, attr=attr, node=node)


def _resolve_method(
    table: SymbolTable, cls_info: ClassInfo, method: str
) -> str | None:
    found = cls_info.method(method)
    if found is not None:
        return found.qualname
    for base in sorted(table.base_chain(cls_info.qualname)):
        base_cls = table.classes.get(base)
        if base_cls is not None:
            inherited = base_cls.method(method)
            if inherited is not None:
                return inherited.qualname
    return None
