"""Helpers shared by the CONC and SEED passes.

Both families care about the same *boundary sinks* — places where a
value leaves the current thread/process: :class:`repro.perf.parallel.
ParallelMap` task submission, ``threading.Thread`` /
``multiprocessing.Process`` construction, and executor ``submit``
calls.  The detection here is deliberately conservative: a receiver
only counts as a ``ParallelMap`` when the AST proves it (constructed
locally, annotated as one, the shared ``SERIAL_MAP`` instance, or a
``self`` attribute assigned one in ``__init__``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.program.symbols import FunctionInfo, SymbolTable
from repro.analysis.rules._names import dotted_name, resolve_call

#: Resolved names that construct a ParallelMap.
_PARALLEL_MAP = "repro.perf.parallel.ParallelMap"
_SERIAL_MAP = "repro.perf.parallel.SERIAL_MAP"

#: Mutable-container constructors whose capture in a task closure is a
#: shared-state hazard.
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


def is_parallel_map_name(name: str | None) -> bool:
    """True when a resolved dotted name denotes the ParallelMap class."""
    return name is not None and (
        name == _PARALLEL_MAP or name.endswith(".ParallelMap") or name == "ParallelMap"
    )


def _annotation_is_parallel_map(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    name = dotted_name(annotation)
    if name is None and isinstance(annotation, ast.Constant):
        name = annotation.value if isinstance(annotation.value, str) else None
    return is_parallel_map_name(name)


def parallel_map_receivers(
    table: SymbolTable, fn: FunctionInfo
) -> tuple[set[str], set[str]]:
    """Names proven to hold a ParallelMap inside ``fn``.

    Returns ``(locals_, self_attrs)``: local/parameter names, and
    ``self.X`` attribute names assigned one in the owning class's
    ``__init__``.
    """
    module = table.modules.get(fn.module)
    imports = module.imports if module is not None else None
    locals_: set[str] = set()
    args = fn.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if _annotation_is_parallel_map(arg.annotation):
            locals_.add(arg.arg)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = (
                resolve_call(node.value, imports) if imports is not None else None
            )
            if is_parallel_map_name(name):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        locals_.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_parallel_map(node.annotation):
                locals_.add(node.target.id)
    if imports is not None:
        for local, target in imports.aliases.items():
            if target == _SERIAL_MAP or target.endswith(".SERIAL_MAP"):
                locals_.add(local)
    locals_.add("SERIAL_MAP")
    self_attrs: set[str] = set()
    if fn.class_qualname is not None:
        cls_info = table.classes.get(fn.class_qualname)
        init = cls_info.method("__init__") if cls_info is not None else None
        if init is not None:
            for node in ast.walk(init.node):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and imports is not None
                    and is_parallel_map_name(resolve_call(node.value, imports))
                ):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self_attrs.add(target.attr)
    return locals_, self_attrs


def iter_parallel_map_calls(
    table: SymbolTable, fn: FunctionInfo
) -> Iterator[ast.Call]:
    """Every ``<parallel-map>.map(...)`` call inside ``fn``."""
    module = table.modules.get(fn.module)
    imports = module.imports if module is not None else None
    locals_, self_attrs = parallel_map_receivers(table, fn)
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "map"
        ):
            continue
        recv = node.func.value
        if isinstance(recv, ast.Name) and recv.id in locals_:
            yield node
        elif (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and recv.attr in self_attrs
        ):
            yield node
        elif isinstance(recv, ast.Call) and imports is not None:
            if is_parallel_map_name(resolve_call(recv, imports)):
                yield node
        elif isinstance(recv, ast.Name) and imports is not None:
            resolved = imports.resolve(recv.id)
            if resolved == _SERIAL_MAP or resolved.endswith(".SERIAL_MAP"):
                yield node


def free_names(node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names a task callable reads but does not bind itself."""
    bound: set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    body: list[ast.AST] = (
        list(node.body) if isinstance(node.body, list) else [node.body]
    )
    loaded: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loaded.add(sub.id)
                else:
                    bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(sub.name)
    return loaded - bound


def local_task_function(
    fn: FunctionInfo, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """A nested ``def`` named ``name`` inside ``fn``, if any."""
    for node in ast.walk(fn.node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn.node
            and node.name == name
        ):
            return node
    return None


def mutable_locals(fn: FunctionInfo) -> set[str]:
    """Local names assigned a mutable container inside ``fn``."""
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        mutable = isinstance(
            value, (ast.List, ast.ListComp, ast.Dict, ast.DictComp, ast.Set, ast.SetComp)
        )
        if not mutable and isinstance(value, ast.Call):
            name = dotted_name(value.func)
            mutable = name is not None and (
                name in MUTABLE_CONSTRUCTORS
                or name.rsplit(".", 1)[-1] in ("defaultdict", "deque", "Counter")
            )
        if mutable:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out
