"""Project-wide symbol table for the whole-program passes.

One :class:`SymbolTable` indexes every module under the scanned roots:
its AST, import aliases, module-level functions, classes with their
methods, and the per-file suppression index.  Symbols are addressed by
*qualified name* — the dotted module path (derived from the file's
location under ``src/``) joined with the class/function name, e.g.
``repro.fleet.aggregator.FleetAggregator.checkpoint``.

The table deliberately stays syntactic: it records what each module
*writes*, and the resolution helpers (:meth:`SymbolTable.resolve_name`,
:meth:`SymbolTable.base_chain`) answer the cross-module questions the
rule passes ask — "which project class does this name refer to?",
"does this exception class ultimately derive from ValueError?" —
without importing any analysed code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.rules._names import ImportMap, dotted_name
from repro.analysis.suppressions import SuppressionIndex


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None
    decorators: tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    @property
    def is_staticmethod(self) -> bool:
        return "staticmethod" in self.decorators

    @property
    def is_classmethod(self) -> bool:
        return "classmethod" in self.decorators

    @property
    def is_property(self) -> bool:
        return "property" in self.decorators or any(
            d.endswith(".setter") or d.endswith(".getter") for d in self.decorators
        )


@dataclass
class ClassInfo:
    """One class definition with its methods and raw base names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)

    def method(self, name: str) -> FunctionInfo | None:
        return self.methods.get(name)


@dataclass
class ModuleInfo:
    """One analysed source file."""

    name: str
    path: Path
    display_path: str
    source: str
    tree: ast.Module
    imports: ImportMap
    suppressions: SuppressionIndex
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name for a file (``src/`` prefix stripped).

    Files outside a recognisable package root still get a stable name
    derived from their relative path so two files never collide.
    """
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


class SymbolTable:
    """Every module/class/function under the scanned roots, by name."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.parse_errors: list[tuple[str, int, str]] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[tuple[Path, str]], *, root: Path) -> "SymbolTable":
        """Index ``(path, display_path)`` pairs (unparsable files are
        recorded in :attr:`parse_errors`, not raised)."""
        table = cls()
        for path, display in files:
            source = path.read_text(encoding="utf-8")
            table.add_source(
                source, module=module_name_for(path, root), path=path, display=display
            )
        return table

    def add_source(
        self,
        source: str,
        *,
        module: str,
        path: Path | None = None,
        display: str | None = None,
    ) -> ModuleInfo | None:
        """Index one module given as text (the unit used by the tests)."""
        display = display or (path.as_posix() if path is not None else f"<{module}>")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            self.parse_errors.append((display, exc.lineno or 1, exc.msg or "syntax error"))
            return None
        info = ModuleInfo(
            name=module,
            path=path or Path(display),
            display_path=display,
            source=source,
            tree=tree,
            imports=ImportMap.from_tree(tree),
            suppressions=SuppressionIndex.from_source(source),
        )
        self._index_module(info)
        self.modules[module] = info
        return info

    def _index_module(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(info, node, class_qualname=None)
                info.functions[node.name] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(node, ast.ClassDef):
                cls_info = self._class_info(info, node)
                info.classes[node.name] = cls_info
                self.classes[cls_info.qualname] = cls_info

    def _class_info(self, info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        qualname = f"{info.name}.{node.name}"
        bases = tuple(
            name for name in (dotted_name(base) for base in node.bases) if name
        )
        cls_info = ClassInfo(
            qualname=qualname,
            module=info.name,
            name=node.name,
            node=node,
            bases=bases,
        )
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._function_info(info, sub, class_qualname=qualname)
                cls_info.methods[sub.name] = fn
                self.functions[fn.qualname] = fn
        return cls_info

    @staticmethod
    def _function_info(
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        class_qualname: str | None,
    ) -> FunctionInfo:
        prefix = class_qualname if class_qualname is not None else info.name
        decorators = tuple(
            name
            for name in (dotted_name(dec) for dec in node.decorator_list)
            if name
        )
        return FunctionInfo(
            qualname=f"{prefix}.{node.name}",
            module=info.name,
            name=node.name,
            node=node,
            class_qualname=class_qualname,
            decorators=decorators,
        )

    # -- resolution -----------------------------------------------------
    def resolve_name(self, module: str, name: str) -> str | None:
        """Qualified name of the project symbol ``name`` refers to inside
        ``module`` (via its import aliases), or ``None`` if the name does
        not land on an indexed symbol."""
        info = self.modules.get(module)
        if info is None:
            return None
        # Local definitions shadow imports.
        if name in info.classes:
            return info.classes[name].qualname
        if name in info.functions:
            return info.functions[name].qualname
        target = info.imports.resolve(name)
        if target in self.classes or target in self.functions:
            return target
        # ``import repro.fleet.engine as eng; eng.build_fleet`` resolves
        # the head; the tail may name a symbol of that module.
        head, _, tail = target.rpartition(".")
        if head in self.modules and tail:
            mod = self.modules[head]
            if tail in mod.classes:
                return mod.classes[tail].qualname
            if tail in mod.functions:
                return mod.functions[tail].qualname
        return None

    def base_chain(self, class_qualname: str, *, _seen: frozenset[str] = frozenset()) -> set[str]:
        """Every base name reachable from the class, transitively.

        Project-internal bases are followed across modules; external
        bases (builtins, third-party) appear by their resolved dotted
        name and terminate the walk.
        """
        if class_qualname in _seen:
            return set()
        cls_info = self.classes.get(class_qualname)
        if cls_info is None:
            return set()
        out: set[str] = set()
        for base in cls_info.bases:
            head, _, tail = base.partition(".")
            resolved = self.resolve_name(cls_info.module, base) or (
                self.resolve_name(cls_info.module, head) if not tail else None
            )
            if resolved is not None and resolved in self.classes:
                out.add(resolved)
                out |= self.base_chain(
                    resolved, _seen=_seen | {class_qualname}
                )
            else:
                info = self.modules.get(cls_info.module)
                out.add(info.imports.resolve(base) if info is not None else base)
        return out

    # -- iteration ------------------------------------------------------
    def iter_classes(self) -> Iterator[ClassInfo]:
        for name in sorted(self.classes):
            yield self.classes[name]

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for name in sorted(self.functions):
            yield self.functions[name]

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            yield self.modules[name]

    def module_of(self, qualname: str) -> ModuleInfo | None:
        fn = self.functions.get(qualname)
        if fn is not None:
            return self.modules.get(fn.module)
        cls_info = self.classes.get(qualname)
        if cls_info is not None:
            return self.modules.get(cls_info.module)
        return self.modules.get(qualname)
