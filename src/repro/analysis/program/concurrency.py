"""CONC — lock-discipline race detection.

CONC001 infers each class's *guarding lock* from its own usage: any
attribute that is written (or whose interior — elements, sub-attributes,
methods — is touched) inside a ``with self._lock:`` body is treated as
lock-guarded.  The pass then walks every method reachable from a public
entry point **without** the lock (directly, or through helper-method
calls — the interprocedural part) and flags accesses to guarded
attributes outside the lock:

- attributes *reassigned* under the lock: any unlocked read or write is
  a race (a torn or stale value can be observed);
- attributes only *used* under the lock (``self.fleet.advance()``):
  unlocked interior access or rebinding is a race; an unlocked plain
  reference read (``return self.fleet``) is not flagged — handing out
  the reference is the caller's concern.

Helpers called exclusively from within the lock are recognised as
lock-held and never flagged (``DetectionService._manifest``).  Known
benign racy reads (a lock-free ``enabled`` fast path) carry a reasoned
``# repro: noqa[CONC001]``.

CONC002 guards the ParallelMap determinism contract ahead of the
process-worker migration: task callables must be self-contained, so a
closure passed to ``ParallelMap.map`` must not capture ``self`` or a
locally-built mutable container (the classic accumulator race, and a
silent pickle-time failure on the process backend).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import Violation
from repro.analysis.program._shared import (
    free_names,
    iter_parallel_map_calls,
    local_task_function,
    mutable_locals,
)
from repro.analysis.program.framework import ProgramContext, ProgramRule
from repro.analysis.program.symbols import ClassInfo, FunctionInfo, ModuleInfo
from repro.analysis.rules._names import ImportMap, resolve_call

_LOCK_CONSTRUCTORS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)
_THREAD_LOCAL = frozenset({"threading.local"})


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _Access:
    attr: str
    kind: str  # "load" | "store" | "interior"
    node: ast.AST
    held: frozenset[str]


@dataclass
class _SelfCall:
    method: str
    held: frozenset[str]
    node: ast.Call


@dataclass
class _MethodScan:
    accesses: list[_Access] = field(default_factory=list)
    self_calls: list[_SelfCall] = field(default_factory=list)


class _LockWalker:
    """One method body, annotated with the set of locks held per node."""

    def __init__(self, lock_attrs: frozenset[str]) -> None:
        self.lock_attrs = lock_attrs
        self.scan = _MethodScan()

    def walk(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> _MethodScan:
        for stmt in fn.body:
            self._visit(stmt, frozenset())
        return self.scan

    # ------------------------------------------------------------------
    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable runs in an unknown lock context later;
            # its body is out of scope for this pass (CONC002/SEED002
            # police what closures may capture).
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: set[str] = set()
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.lock_attrs:
                    acquired.add(attr)
                else:
                    self._visit(item.context_expr, held)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, held)
            return
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            self._visit_access(node, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit_call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) and (
            func.value.id == "self"
        ):
            # self.m(...) — a self-call, not an attribute access.
            self.scan.self_calls.append(
                _SelfCall(method=func.attr, held=held, node=node)
            )
        else:
            self._visit(func, held)
        for arg in node.args:
            self._visit(arg, held)
        for kw in node.keywords:
            self._visit(kw.value, held)

    def _visit_access(
        self, node: ast.Attribute | ast.Subscript, held: frozenset[str]
    ) -> None:
        base = _self_attr(node.value)
        if base is not None:
            # self.X.y / self.X[...] — interior access of X.
            if base not in self.lock_attrs:
                self.scan.accesses.append(
                    _Access(attr=base, kind="interior", node=node, held=held)
                )
            if isinstance(node, ast.Subscript):
                self._visit(node.slice, held)
            return
        direct = _self_attr(node)
        if direct is not None:
            if direct not in self.lock_attrs:
                kind = (
                    "store"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "load"
                )
                self.scan.accesses.append(
                    _Access(attr=direct, kind=kind, node=node, held=held)
                )
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)


def _lock_and_local_attrs(
    cls_info: ClassInfo, imports: ImportMap
) -> tuple[frozenset[str], frozenset[str]]:
    """Lock attributes and thread-local attributes assigned in __init__."""
    init = cls_info.method("__init__")
    locks: set[str] = set()
    locals_: set[str] = set()
    if init is None:
        return frozenset(), frozenset()
    for node in ast.walk(init.node):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
            continue
        name = resolve_call(node.value, imports)
        if name is None:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            if name in _LOCK_CONSTRUCTORS:
                locks.add(attr)
            elif name in _THREAD_LOCAL:
                locals_.add(attr)
    return frozenset(locks), frozenset(locals_)


class LockDisciplineRule(ProgramRule):
    """CONC001 — no guarded-attribute access outside the inferred lock."""

    rule_id = "CONC001"
    summary = (
        "attributes used under 'with self._lock:' must not be read/"
        "written on any unlocked path reachable from a public entry "
        "point (helper calls included)"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for cls_info in ctx.table.iter_classes():
            module = ctx.table.modules.get(cls_info.module)
            if module is None:
                continue
            yield from self._check_class(ctx, module, cls_info)

    def _check_class(
        self, ctx: ProgramContext, module: ModuleInfo, cls_info: ClassInfo
    ) -> Iterator[Violation]:
        locks, thread_locals = _lock_and_local_attrs(cls_info, module.imports)
        if not locks:
            return
        scans: dict[str, _MethodScan] = {}
        for name, fn in cls_info.methods.items():
            if fn.is_staticmethod or fn.is_classmethod:
                continue
            scans[name] = _LockWalker(locks).walk(fn.node)

        # Guarded sets, inferred from under-lock usage outside __init__.
        stored_under: dict[str, set[str]] = {}
        interior_under: dict[str, set[str]] = {}
        for name, scan in scans.items():
            if name == "__init__":
                continue
            for access in scan.accesses:
                if not access.held or access.attr in thread_locals:
                    continue
                if access.kind == "store":
                    stored_under.setdefault(access.attr, set()).update(access.held)
                elif access.kind == "interior":
                    interior_under.setdefault(access.attr, set()).update(access.held)
        if not stored_under and not interior_under:
            return

        # Methods reachable with the lock NOT held: public entries, plus
        # anything the call graph reaches from them through unlocked
        # call sites, plus private methods called from outside the class.
        witness: dict[str, str] = {}
        worklist: list[str] = []
        for name, fn in cls_info.methods.items():
            if name == "__init__" or name not in scans:
                continue
            externally_called = any(
                not caller.startswith(cls_info.qualname + ".")
                for caller in ctx.graph.callers_of(fn.qualname)
            )
            if fn.is_public or externally_called:
                witness[name] = name
                worklist.append(name)
        while worklist:
            current = worklist.pop()
            for call in scans[current].self_calls:
                if call.held:
                    continue
                callee = call.method
                if callee in scans and callee not in witness and callee != "__init__":
                    witness[callee] = witness[current]
                    worklist.append(callee)

        for name in sorted(witness):
            scan = scans[name]
            entry = witness[name]
            for access in scan.accesses:
                if access.held or access.attr in thread_locals:
                    continue
                guards = stored_under.get(access.attr, set()) | interior_under.get(
                    access.attr, set()
                )
                if not guards:
                    continue
                mutated = access.attr in stored_under
                if not mutated and access.kind == "load":
                    # Plain reference read of an interior-guarded attr.
                    continue
                lock_name = sorted(guards)[0]
                verb = {
                    "store": "write to",
                    "interior": "unsynchronised use of",
                    "load": "read of",
                }[access.kind]
                via = (
                    ""
                    if entry == name
                    else f" (reachable without the lock via {cls_info.name}.{entry})"
                )
                yield ctx.violation(
                    self.rule_id,
                    module,
                    access.node,
                    f"{cls_info.name}.{name}: {verb} lock-guarded attribute "
                    f"'{access.attr}' outside 'with self.{lock_name}:'{via}",
                )


class ParallelMapCaptureRule(ProgramRule):
    """CONC002 — ParallelMap task closures must be self-contained."""

    rule_id = "CONC002"
    summary = (
        "task callables passed to ParallelMap.map must not capture self "
        "or locally-built mutable containers; pass data through items"
    )

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for fn in ctx.table.iter_functions():
            module = ctx.table.modules.get(fn.module)
            if module is None:
                continue
            shared = mutable_locals(fn)
            for call in iter_parallel_map_calls(ctx.table, fn):
                if not call.args:
                    continue
                task = call.args[0]
                captured = self._captured_hazards(fn, task, shared)
                for name, node in captured:
                    what = (
                        "the enclosing instance 'self'"
                        if name == "self"
                        else f"locally-built mutable container '{name}'"
                    )
                    yield ctx.violation(
                        self.rule_id,
                        module,
                        node,
                        f"ParallelMap task closure captures {what}; tasks "
                        "must be self-contained (module-level function + "
                        "per-item data) to survive the process-worker "
                        "migration",
                    )

    @staticmethod
    def _captured_hazards(
        fn: FunctionInfo, task: ast.expr, shared: set[str]
    ) -> list[tuple[str, ast.AST]]:
        target: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef | None = None
        anchor: ast.AST = task
        if isinstance(task, ast.Lambda):
            target = task
        elif isinstance(task, ast.Name):
            nested = local_task_function(fn, task.id)
            if nested is not None:
                target = nested
                anchor = task
        if target is None:
            return []
        hazards: list[tuple[str, ast.AST]] = []
        for name in sorted(free_names(target)):
            if name == "self" or name in shared:
                hazards.append((name, anchor))
        return hazards
