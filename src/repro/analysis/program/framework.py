"""The interprocedural pass framework behind ``repro-lint --program``.

A :class:`ProgramRule` sees the whole :class:`ProgramContext` — symbol
table, call graph, config — instead of one file, and yields ordinary
:class:`~repro.analysis.engine.Violation` records anchored to concrete
source positions.  :class:`ProgramAnalyzer` builds the context once per
run, executes every registered pass, and then routes findings through
the *same* machinery the per-file rules use: per-rule path scoping from
``[tool.repro-lint]`` and ``# repro: noqa[RULE]`` line suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    LintConfig,
    LintEngine,
    LintReport,
    Rule,
    Violation,
)
from repro.analysis.program.callgraph import CallGraph
from repro.analysis.program.symbols import ModuleInfo, SymbolTable


@dataclass
class ProgramContext:
    """Everything a whole-program pass may consult."""

    table: SymbolTable
    graph: CallGraph
    config: LintConfig

    def violation(
        self, rule: str, module: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=rule,
            message=message,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


class ProgramRule(Rule):
    """Base class for one interprocedural invariant.

    Subclasses implement :meth:`check_program` over the shared context.
    Path scoping (``default_include``/``default_exclude`` plus pyproject
    overrides) is applied *per finding*, since one pass may report into
    many files.
    """

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        raise NotImplementedError

    def check(self, ctx: object) -> Iterator[Violation]:  # pragma: no cover
        # Program rules never run in the per-file engine loop.
        return iter(())


def program_rules() -> list[ProgramRule]:
    """Fresh instances of every shipped whole-program rule, in id order."""
    from repro.analysis.program.concurrency import (
        LockDisciplineRule,
        ParallelMapCaptureRule,
    )
    from repro.analysis.program.contracts import (
        ErrorTaxonomyRule,
        StateKeyContractRule,
    )
    from repro.analysis.program.seeds import (
        LoopRngRule,
        RngBoundaryRule,
        UnseededRngRule,
    )

    return [
        LockDisciplineRule(),
        ParallelMapCaptureRule(),
        UnseededRngRule(),
        RngBoundaryRule(),
        LoopRngRule(),
        StateKeyContractRule(),
        ErrorTaxonomyRule(),
    ]


class ProgramAnalyzer:
    """Build the program view once, run every pass, filter, report."""

    def __init__(
        self,
        rules: Sequence[ProgramRule] | None = None,
        config: LintConfig | None = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else program_rules()
        self.config = config or LintConfig()

    def run(
        self, paths: Iterable[Path | str], *, root: Path | None = None
    ) -> LintReport:
        root = root or Path.cwd()
        files: list[tuple[Path, str]] = []
        for path in LintEngine._iter_files(paths):
            files.append((path, LintEngine._display_path(path, root)))
        table = SymbolTable.build(files, root=root)
        violations = [
            Violation(
                rule=PARSE_ERROR_RULE,
                message=f"could not parse: {msg}",
                path=display,
                line=line,
                col=0,
            )
            for display, line, msg in table.parse_errors
        ]
        violations.extend(self.check_table(table))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return LintReport(violations=violations, files_scanned=len(files))

    def check_table(self, table: SymbolTable) -> list[Violation]:
        """Run the passes over an already-built table (the test unit)."""
        ctx = ProgramContext(
            table=table, graph=CallGraph.build(table), config=self.config
        )
        suppressions = {
            info.display_path: info.suppressions for info in table.iter_modules()
        }
        out: list[Violation] = []
        for rule in self.rules:
            if not self.config.rule_enabled(rule.rule_id):
                continue
            include, exclude = self.config.scope_for(rule)
            for violation in rule.check_program(ctx):
                posix = violation.path.replace("\\", "/")
                if include and not any(frag in posix for frag in include):
                    continue
                if any(frag in posix for frag in exclude):
                    continue
                index = suppressions.get(violation.path)
                if index is not None and index.is_suppressed(
                    violation.line, violation.rule
                ):
                    continue
                out.append(violation)
        return out
