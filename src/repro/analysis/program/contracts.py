"""CTR — cross-class and cross-module contract checking.

CTR001 pairs each serializer with its deserializer *by convention*
(``to_dict`` ↔ ``from_dict``, ``state_dict`` ↔ ``load_state`` /
``from_state`` / ``restore``) and compares the key sets computed from
both method bodies: keys the reader consumes must be keys the writer
produces, and vice versa.  Extraction is deliberately conservative —
a writer that does not return a literal-keyed dict, or a reader that
walks the payload dynamically, opts the pair out rather than guessing.

CTR002 enforces the repo error taxonomy: every exception class defined
in the project derives — transitively, across modules, through the
symbol table's base-chain resolution — from ``ValueError``, matching
``ConfigError`` / ``CheckpointError`` / ``ServiceError`` et al.  A
module that subclasses a taxonomy error defined elsewhere is resolved
through its imports, which is what makes the check interprocedural.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Violation
from repro.analysis.program.framework import ProgramContext, ProgramRule
from repro.analysis.program.symbols import ClassInfo, FunctionInfo, ModuleInfo

#: serializer method -> accepted deserializer counterparts, checked in
#: declaration order; the first counterpart the class defines is paired.
SERIALIZER_PAIRS: dict[str, tuple[str, ...]] = {
    "to_dict": ("from_dict",),
    "state_dict": ("load_state", "from_state", "restore"),
}

#: The root(s) of the repo error taxonomy.
TAXONOMY_ROOTS = frozenset({"ValueError"})

_BUILTIN_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "RuntimeError",
        "TypeError",
        "KeyError",
        "OSError",
        "IOError",
        "ArithmeticError",
        "LookupError",
        "StopIteration",
        "NotImplementedError",
    }
)


def _literal_key(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def produced_keys(fn: FunctionInfo) -> set[str] | None:
    """Keys a serializer writes, or None when not statically knowable.

    Handles the two repo idioms: ``return {literal dict}``, and a local
    dict built from a literal then extended with ``payload["k"] = ...``
    subscript stores before ``return payload``.
    """
    returned_dicts: list[ast.Dict] = []
    returned_names: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        if isinstance(node.value, ast.Dict):
            returned_dicts.append(node.value)
        elif isinstance(node.value, ast.Name):
            returned_names.add(node.value.id)
        else:
            return None
    if not returned_dicts and not returned_names:
        return None
    keys: set[str] = set()
    for dict_node in returned_dicts:
        for key in dict_node.keys:
            literal = _literal_key(key)
            if literal is None:
                return None  # **splat or computed key — bail.
            keys.add(literal)
    for name in returned_names:
        local = _local_dict_keys(fn, name)
        if local is None:
            return None
        keys |= local
    return keys


def _local_dict_keys(fn: FunctionInfo, name: str) -> set[str] | None:
    keys: set[str] = set()
    seeded = False
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        value = node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if not isinstance(value, ast.Dict):
                    return None
                for key in value.keys:
                    literal = _literal_key(key)
                    if literal is None:
                        return None
                    keys.add(literal)
                seeded = True
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == name
            ):
                literal = _literal_key(target.slice)
                if literal is None:
                    return None
                keys.add(literal)
    return keys if seeded else None


def consumed_keys(fn: FunctionInfo) -> set[str] | None:
    """Keys a deserializer reads from its payload parameter, or None
    when the payload is used dynamically (iterated, splatted, passed on
    whole) and the key set cannot be trusted."""
    args = fn.node.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    if not positional:
        return None
    payload = positional[0].arg
    keys: set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == payload
        ):
            literal = _literal_key(node.slice)
            if literal is None:
                return None
            keys.add(literal)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == payload
        ):
            literal = _literal_key(node.args[0]) if node.args else None
            if literal is None:
                return None
            keys.add(literal)
    if not _payload_only_structured(fn.node, payload):
        return None
    return keys


def _payload_only_structured(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef, payload: str
) -> bool:
    """True when every use of the payload name is a keyed access."""
    structured: set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            if node.value.id == payload:
                structured.add(id(node.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("get", "pop")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == payload
        ):
            structured.add(id(node.func.value))
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Name)
            and node.id == payload
            and isinstance(node.ctx, ast.Load)
            and id(node) not in structured
        ):
            return False
    return True


class StateKeyContractRule(ProgramRule):
    """CTR001 — serializer/deserializer key sets must agree."""

    rule_id = "CTR001"
    summary = (
        "to_dict/from_dict and state_dict/load_state key sets must "
        "match, computed statically from both method bodies"
    )
    default_include = ("src/repro/",)

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for cls_info in ctx.table.iter_classes():
            module = ctx.table.modules.get(cls_info.module)
            if module is None:
                continue
            yield from self._check_class(ctx, module, cls_info)

    def _check_class(
        self, ctx: ProgramContext, module: ModuleInfo, cls_info: ClassInfo
    ) -> Iterator[Violation]:
        for writer_name, reader_names in SERIALIZER_PAIRS.items():
            writer = cls_info.method(writer_name)
            if writer is None:
                continue
            reader = next(
                (
                    found
                    for name in reader_names
                    if (found := cls_info.method(name)) is not None
                ),
                None,
            )
            if reader is None:
                continue  # One-way DTOs are allowed.
            written = produced_keys(writer)
            read = consumed_keys(reader)
            if written is None or read is None:
                continue  # Dynamic on either side — opt out, don't guess.
            for key in sorted(read - written):
                yield ctx.violation(
                    self.rule_id,
                    module,
                    reader.node,
                    f"{cls_info.name}.{reader.name} reads key '{key}' that "
                    f"{writer.name} never writes",
                )
            for key in sorted(written - read):
                yield ctx.violation(
                    self.rule_id,
                    module,
                    writer.node,
                    f"{cls_info.name}.{writer.name} writes key '{key}' that "
                    f"{reader.name} never reads — dead state or a missed "
                    "restore",
                )


class ErrorTaxonomyRule(ProgramRule):
    """CTR002 — project exception classes derive from the taxonomy."""

    rule_id = "CTR002"
    summary = (
        "exception classes defined in the project must derive "
        "(transitively, across modules) from the ValueError taxonomy"
    )
    default_include = ("src/repro/",)

    def check_program(self, ctx: ProgramContext) -> Iterator[Violation]:
        for cls_info in ctx.table.iter_classes():
            module = ctx.table.modules.get(cls_info.module)
            if module is None:
                continue
            chain = ctx.table.base_chain(cls_info.qualname)
            tails = {base.rsplit(".", 1)[-1] for base in chain}
            looks_like_exception = cls_info.name.endswith(
                ("Error", "Exception")
            ) or bool(tails & _BUILTIN_EXCEPTIONS)
            if not looks_like_exception:
                continue
            if tails & TAXONOMY_ROOTS:
                continue
            roots = "/".join(sorted(TAXONOMY_ROOTS))
            yield ctx.violation(
                self.rule_id,
                module,
                cls_info.node,
                f"exception class '{cls_info.name}' does not derive from "
                f"the repo error taxonomy ({roots} family); subclass an "
                "existing *Error or ValueError directly",
            )
