"""Whole-program analysis for ``repro-lint --program``.

Where :mod:`repro.analysis.rules` lints one file at a time, this
subpackage builds a **project-wide view** — a symbol table of every
module/class/function under the scanned roots plus a call graph over
them — and runs *interprocedural* passes on top:

=========  ===========================================================
CONC001    lock-guarded attributes must not be touched outside the lock
           (lock inferred from ``with self._lock:`` bodies; helper
           methods called only under the lock are recognised)
CONC002    ``ParallelMap`` task closures must not capture shared
           mutable state (``self``, locally-built containers)
SEED001    every RNG construction must be seeded — no ``default_rng()``
           falling back to OS entropy
SEED002    no RNG object may cross a thread/process boundary
           (``ParallelMap`` items, ``Thread``/``Process``/``submit``
           args), including through helper-method returns
SEED003    no RNG constructed inside a loop with a loop-invariant seed
CTR001     ``state_dict``/``to_dict`` key sets must match their
           ``load_state``/``from_dict``/``from_state``/``restore``
           consumers key-for-key, computed from both method bodies
CTR002     exception classes defined in the project must derive from
           the repo error taxonomy (the ``ValueError`` family),
           resolved transitively across modules
=========  ===========================================================

Findings flow through the same reporter/suppression/config machinery as
the per-file rules, plus a JSON baseline file
(:mod:`repro.analysis.program.baseline`) so CI fails only on
*regressions*.  See ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.analysis.program.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineError,
    BaselineResult,
    apply_baseline,
)
from repro.analysis.program.callgraph import CallGraph, CallSite
from repro.analysis.program.framework import (
    ProgramAnalyzer,
    ProgramContext,
    ProgramRule,
    program_rules,
)
from repro.analysis.program.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineError",
    "BaselineResult",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramAnalyzer",
    "ProgramContext",
    "ProgramRule",
    "SymbolTable",
    "apply_baseline",
    "program_rules",
]
