"""The ``.repro-lint-baseline.json`` regression gate.

A baseline records *accepted* findings so the program-analysis gate
fails only when new violations appear.  Entries match on
``(rule, path, message)`` with a count — line numbers are deliberately
excluded so unrelated edits that shift code do not invalidate the
baseline.  The committed repo policy (enforced by tests) is that the
baseline never carries CONC or SEED entries: races and seed leaks get
*fixed*, not baselined.

File shape (stable, sorted, committed to the repo root)::

    {
      "version": 1,
      "entries": [
        {"rule": "CTR001", "path": "src/...", "message": "...", "count": 1}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import Violation

#: Default baseline file name, looked up in the working directory.
BASELINE_FILENAME = ".repro-lint-baseline.json"

#: Bump when the baseline file shape changes incompatibly.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """A baseline file that cannot be read or has the wrong shape."""


def _key(violation: Violation) -> tuple[str, str, str]:
    return (violation.rule, violation.path, violation.message)


@dataclass
class Baseline:
    """Accepted-finding counts keyed by ``(rule, path, message)``."""

    counts: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        baseline = cls()
        for violation in violations:
            key = _key(violation)
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"baseline {path} has version {version!r}; "
                f"this tool reads version {BASELINE_VERSION}"
            )
        entries = payload["entries"]
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path}: 'entries' must be a list")
        baseline = cls()
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise BaselineError(f"baseline {path}: entry {index} is not an object")
            try:
                key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
                count = int(entry.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(
                    f"baseline {path}: entry {index} needs rule/path/message"
                ) from exc
            if count < 1:
                raise BaselineError(
                    f"baseline {path}: entry {index} count must be >= 1"
                )
            baseline.counts[key] = baseline.counts.get(key, 0) + count
        return baseline

    def to_payload(self) -> dict[str, object]:
        entries = [
            {"rule": rule, "path": path, "message": message, "count": count}
            for (rule, path, message), count in sorted(self.counts.items())
        ]
        return {"version": BASELINE_VERSION, "entries": entries}

    def save(self, path: Path) -> Path:
        path.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rules_present(self) -> set[str]:
        return {rule for rule, _, _ in self.counts}


@dataclass
class BaselineResult:
    """Outcome of matching a run's violations against a baseline."""

    #: Violations NOT covered by the baseline — these fail the gate.
    new: list[Violation]
    #: Number of violations absorbed by baseline entries.
    baselined: int
    #: Entries whose counted findings no longer occur (fixed since the
    #: baseline was recorded) — candidates for a baseline refresh.
    stale: list[tuple[str, str, str]]


def apply_baseline(violations: list[Violation], baseline: Baseline) -> BaselineResult:
    """Split violations into new vs baselined, consuming entry counts.

    When a file has more identical findings than the baseline recorded,
    the surplus is new; when it has fewer, the difference is stale.
    """
    remaining = dict(baseline.counts)
    new: list[Violation] = []
    baselined = 0
    for violation in violations:
        key = _key(violation)
        left = remaining.get(key, 0)
        if left > 0:
            remaining[key] = left - 1
            baselined += 1
        else:
            new.append(violation)
    stale = sorted(key for key, count in remaining.items() if count > 0)
    return BaselineResult(new=new, baselined=baselined, stale=stale)
