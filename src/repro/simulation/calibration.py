"""Monte-Carlo calibration of the single-event detector.

The POMDP observation function requires the per-meter true-positive and
false-positive rates of the single-event layer ("trained based on the
historical data" in the paper).  This module measures them the honest
way: by running the actual PAR-comparison detector against clean and
attacked price vectors drawn from the same distributions the long-term
scenario uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.attacks.hacking import MeterHackingProcess
from repro.detection.single_event import SingleEventDetector
from repro.perf.parallel import ParallelMap, spawn_seeds


@dataclass(frozen=True)
class SingleEventRates:
    """Measured detector quality over a calibration run."""

    tp_rate: float
    fp_rate: float
    n_attacked_trials: int
    n_clean_trials: int

    def __post_init__(self) -> None:
        for name, rate in (("tp_rate", self.tp_rate), ("fp_rate", self.fp_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.n_attacked_trials < 1 or self.n_clean_trials < 1:
            raise ValueError("calibration needs at least one trial of each kind")

    def clipped(self, *, floor: float = 0.02, ceil: float = 0.98) -> "SingleEventRates":
        """Rates clipped away from 0/1 so the POMDP stays well-conditioned.

        A measured rate of exactly 0 or 1 makes some observations
        impossible under the model; any model-reality mismatch then breaks
        the belief update.  Clipping encodes the usual Laplace caution.
        """
        return SingleEventRates(
            tp_rate=float(np.clip(self.tp_rate, floor, ceil)),
            fp_rate=float(np.clip(self.fp_rate, floor, ceil)),
            n_attacked_trials=self.n_attacked_trials,
            n_clean_trials=self.n_clean_trials,
        )


def _count_flags(
    item: tuple[SingleEventDetector, tuple[NDArray[np.float64], ...], int],
) -> int:
    """Flag count for one chunk of price vectors (module-level for pickling)."""
    detector, price_vectors, seed = item
    chunk_rng = np.random.default_rng(seed)
    hits = 0
    for prices in price_vectors:
        if detector.check(prices, rng=chunk_rng).flagged:
            hits += 1
    return hits


def measure_single_event_rates(
    detector: SingleEventDetector,
    clean_prices: NDArray[np.float64],
    hacking: MeterHackingProcess,
    *,
    n_trials: int = 60,
    rng: np.random.Generator | None = None,
    parallel: ParallelMap | None = None,
) -> SingleEventRates:
    """Estimate per-meter TP/FP rates of a single-event detector.

    Parameters
    ----------
    detector:
        The detector under calibration (already bound to its predicted
        prices).
    clean_prices:
        The genuine guideline-price vector for the calibration day.
    hacking:
        Used only as an attack *sampler* (its ``draw_attack``
        distribution defines attack difficulty); its state is untouched.
    n_trials:
        Number of attacked and clean checks each.
    parallel:
        Optional process-pool backend for the Monte-Carlo trials.  The
        attacks are drawn up front (consuming the sampler exactly as the
        serial path does) and the checks are split into per-worker chunks
        with measurement-noise streams spawned from ``rng``; the
        estimates are statistically equivalent to — but not draw-for-draw
        identical with — the serial path, which remains the default.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    rng = rng if rng is not None else np.random.default_rng(0)
    prices = np.asarray(clean_prices, dtype=float)

    if parallel is not None and parallel.backend != "serial":
        attacked = tuple(
            hacking.draw_attack().apply(prices) for _ in range(n_trials)
        )
        clean = tuple(prices for _ in range(n_trials))
        n_chunks = min(parallel.effective_workers, n_trials)
        seeds = spawn_seeds(int(rng.integers(2**63 - 1)), 2 * n_chunks)
        items = [
            (detector, chunk, seed)
            for vectors, chunk_seeds in (
                (attacked, seeds[:n_chunks]),
                (clean, seeds[n_chunks:]),
            )
            for chunk, seed in zip(_chunks(vectors, n_chunks), chunk_seeds)
        ]
        counts = parallel.map(_count_flags, items)
        tp_hits = sum(counts[:n_chunks])
        fp_hits = sum(counts[n_chunks:])
    else:
        # Phase split: replay the serial path's rng consumption exactly
        # (attack, noise, attack, noise, ..., then the clean noises),
        # then batch-solve every distinct attacked game in one lockstep
        # prefetch, then evaluate the flags against the predrawn noises.
        # Draw-for-draw and flag-for-flag identical to checking inline.
        attacked: list[NDArray[np.float64]] = []
        attack_noises: list[float] = []
        for _ in range(n_trials):
            attack = hacking.draw_attack()
            attacked.append(attack.apply(prices))
            attack_noises.append(detector.draw_noise(rng))
        clean_noises = [detector.draw_noise(rng) for _ in range(n_trials)]

        detector.simulator.prefetch(attacked + [prices])

        tp_hits = sum(
            1
            for vector, noise in zip(attacked, attack_noises)
            if detector.evaluate(vector, noise=noise).flagged
        )
        fp_hits = sum(
            1
            for noise in clean_noises
            if detector.evaluate(prices, noise=noise).flagged
        )

    return SingleEventRates(
        tp_rate=tp_hits / n_trials,
        fp_rate=fp_hits / n_trials,
        n_attacked_trials=n_trials,
        n_clean_trials=n_trials,
    )


def _chunks(
    vectors: tuple[NDArray[np.float64], ...], n_chunks: int
) -> list[tuple[NDArray[np.float64], ...]]:
    """Split price vectors into ``n_chunks`` near-equal contiguous runs."""
    bounds = np.linspace(0, len(vectors), n_chunks + 1).astype(int)
    return [tuple(vectors[lo:hi]) for lo, hi in zip(bounds[:-1], bounds[1:])]
