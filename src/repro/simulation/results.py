"""Serialization of scenario results.

Long-running experiments (the 48-hour scenarios, parameter sweeps) save
their outcomes as JSON so the CLI and downstream analyses can compare
runs without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.simulation.scenario import ScenarioResult

SCHEMA_VERSION = 1


def scenario_to_dict(result: ScenarioResult) -> dict[str, Any]:
    """JSON-serializable representation of a scenario run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "detector": result.detector,
        "slots_per_day": result.slots_per_day,
        "tp_rate": result.tp_rate,
        "fp_rate": result.fp_rate,
        "truth": result.truth.astype(int).tolist(),
        "flags": result.flags.astype(int).tolist(),
        "observations": result.observations.tolist(),
        "repairs": result.repairs.astype(int).tolist(),
        "repaired_counts": result.repaired_counts.tolist(),
        "realized_grid": result.realized_grid.tolist(),
        "summary": {
            "observation_accuracy": result.observation_accuracy,
            "mean_par": result.mean_par,
            "n_repairs": result.n_repairs,
            "mean_hacked": result.mean_hacked,
        },
    }


def scenario_from_dict(payload: dict[str, Any]) -> ScenarioResult:
    """Rebuild a :class:`ScenarioResult` from its JSON representation."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    return ScenarioResult(
        detector=payload["detector"],
        truth=np.asarray(payload["truth"], dtype=bool),
        flags=np.asarray(payload["flags"], dtype=bool),
        observations=np.asarray(payload["observations"], dtype=int),
        repairs=np.asarray(payload["repairs"], dtype=bool),
        repaired_counts=np.asarray(payload["repaired_counts"], dtype=int),
        realized_grid=np.asarray(payload["realized_grid"], dtype=float),
        slots_per_day=int(payload["slots_per_day"]),
        tp_rate=float(payload["tp_rate"]),
        fp_rate=float(payload["fp_rate"]),
    )


def save_scenario(result: ScenarioResult, path: str | Path) -> None:
    """Write a scenario result to a JSON file."""
    Path(path).write_text(json.dumps(scenario_to_dict(result), indent=2))


def load_scenario(path: str | Path) -> ScenarioResult:
    """Read a scenario result from a JSON file."""
    return scenario_from_dict(json.loads(Path(path).read_text()))
