"""Generic parameter sweeps over the long-term scenario.

Powers the sensitivity studies: vary one configuration knob (PV
adoption, sell-back divisor, hack probability, detector threshold, ...)
across a grid and collect the detection metrics at each point.  Sweeps
express the paper's "impact assessment" framing as a first-class
operation: *how does the detection advantage move as net metering
penetration grows?*
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.config import CommunityConfig
from repro.metrics.cost import LaborCostModel
from repro.perf.parallel import SERIAL_MAP, ParallelMap
from repro.simulation.scenario import DetectorKind, run_long_term_scenario

ConfigTransform = Callable[[CommunityConfig, Any], CommunityConfig]


@dataclass(frozen=True)
class SweepPoint:
    """Metrics of one (parameter value, detector) cell."""

    value: Any
    detector: DetectorKind
    observation_accuracy: float
    mean_par: float
    labor_cost: float
    n_repairs: int


@dataclass(frozen=True)
class SweepResult:
    """A full grid of sweep points."""

    parameter: str
    points: tuple[SweepPoint, ...]

    def series(self, detector: DetectorKind, metric: str) -> list[tuple[Any, float]]:
        """Extract one (value, metric) series for a detector variant."""
        if metric not in (
            "observation_accuracy",
            "mean_par",
            "labor_cost",
            "n_repairs",
        ):
            raise ValueError(f"unknown metric {metric!r}")
        return [
            (point.value, float(getattr(point, metric)))
            for point in self.points
            if point.detector == detector
        ]


def _set_dotted(config: CommunityConfig, dotted: str, value: Any) -> CommunityConfig:
    """Replace a (possibly nested) config field addressed as ``a.b``."""
    parts = dotted.split(".")
    if len(parts) == 1:
        return config.with_updates(**{parts[0]: value})
    if len(parts) == 2:
        section_name, field_name = parts
        section = getattr(config, section_name)
        return config.with_updates(
            **{section_name: replace(section, **{field_name: value})}
        )
    raise ValueError(f"at most one level of nesting supported, got {dotted!r}")


def _run_one_cell(
    item: tuple[Any, DetectorKind, CommunityConfig, int, int | None, int],
) -> SweepPoint:
    """One self-contained sweep cell (module-level for pickling)."""
    value, detector, cell_config, n_slots, seed, calibration_trials = item
    labor_model = LaborCostModel(
        fixed_cost=cell_config.detection.repair_fixed_cost,
        per_meter_cost=cell_config.detection.repair_cost_per_meter,
    )
    result = run_long_term_scenario(
        cell_config,
        detector=detector,
        n_slots=n_slots,
        seed=seed,
        calibration_trials=calibration_trials,
    )
    return SweepPoint(
        value=value,
        detector=detector,
        observation_accuracy=result.observation_accuracy,
        mean_par=result.mean_par,
        labor_cost=result.labor_cost(labor_model),
        n_repairs=result.n_repairs,
    )


def sweep_scenario(
    config: CommunityConfig,
    *,
    parameter: str,
    values: tuple[Any, ...],
    detectors: tuple[DetectorKind, ...] = ("aware", "unaware"),
    n_slots: int = 24,
    seed: int | None = None,
    calibration_trials: int = 15,
    parallel: ParallelMap | None = None,
) -> SweepResult:
    """Run the scenario across a parameter grid.

    Parameters
    ----------
    parameter:
        Dotted config address, e.g. ``"pv_adoption"``,
        ``"pricing.sellback_divisor"``, ``"detection.par_threshold"`` or
        ``"detection.hack_probability"``.
    values:
        Grid of values assigned to the parameter.
    detectors:
        Which detector variants to evaluate at each point.
    n_slots:
        Scenario length per cell (a single day by default — sweeps trade
        horizon for grid coverage).
    parallel:
        Execution backend for the grid cells.  Every cell is a pure
        function of its (value, detector) pair, so results are identical
        across backends; the process backend spreads cells over cores.
    """
    if not values:
        raise ValueError("need at least one sweep value")
    if not detectors:
        raise ValueError("need at least one detector variant")
    pmap = parallel if parallel is not None else SERIAL_MAP
    items = [
        (value, detector, _set_dotted(config, parameter, value), n_slots, seed,
         calibration_trials)
        for value in values
        for detector in detectors
    ]
    points = pmap.map(_run_one_cell, items)
    return SweepResult(parameter=parameter, points=tuple(points))
