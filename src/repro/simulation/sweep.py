"""Generic parameter sweeps over the long-term scenario.

Powers the sensitivity studies: vary one configuration knob (PV
adoption, sell-back divisor, hack probability, detector threshold, ...)
across a grid and collect the detection metrics at each point.  Sweeps
express the paper's "impact assessment" framing as a first-class
operation: *how does the detection advantage move as net metering
penetration grows?*

:func:`sweep_matrix` generalizes the one-knob sweep into the scenario
matrix of ``docs/SCENARIOS.md``: a full tariff × attack-family ×
PV-penetration × detector grid.  Every cell is one
:func:`~repro.simulation.scenario.run_long_term_scenario` call, and the
``("flat", "peak_increase")`` column at the config's own PV adoption is
*bitwise* the paper's Table 1 run — the flat tariff resolves to
``tariff=None``, so those cells take the exact pre-tariff code path the
golden-master fixtures pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np
from numpy.typing import NDArray

from repro.core.config import CommunityConfig, config_to_dict
from repro.metrics.cost import LaborCostModel
from repro.obs.scoreboard import scoreboard_from_arrays
from repro.perf.parallel import SERIAL_MAP, ParallelMap
from repro.simulation.scenario import DetectorKind, run_long_term_scenario

ConfigTransform = Callable[[CommunityConfig, Any], CommunityConfig]

MATRIX_FORMAT = "repro-sweep-matrix"
MATRIX_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """Metrics of one (parameter value, detector) cell."""

    value: Any
    detector: DetectorKind
    observation_accuracy: float
    mean_par: float
    labor_cost: float
    n_repairs: int


@dataclass(frozen=True)
class SweepResult:
    """A full grid of sweep points."""

    parameter: str
    points: tuple[SweepPoint, ...]

    def series(self, detector: DetectorKind, metric: str) -> list[tuple[Any, float]]:
        """Extract one (value, metric) series for a detector variant."""
        if metric not in (
            "observation_accuracy",
            "mean_par",
            "labor_cost",
            "n_repairs",
        ):
            raise ValueError(f"unknown metric {metric!r}")
        return [
            (point.value, float(getattr(point, metric)))
            for point in self.points
            if point.detector == detector
        ]


def _set_dotted(config: CommunityConfig, dotted: str, value: Any) -> CommunityConfig:
    """Replace a (possibly nested) config field addressed as ``a.b``."""
    parts = dotted.split(".")
    if len(parts) == 1:
        return config.with_updates(**{parts[0]: value})
    if len(parts) == 2:
        section_name, field_name = parts
        section = getattr(config, section_name)
        return config.with_updates(
            **{section_name: replace(section, **{field_name: value})}
        )
    raise ValueError(f"at most one level of nesting supported, got {dotted!r}")


def _run_one_cell(
    item: tuple[Any, DetectorKind, CommunityConfig, int, int | None, int],
) -> SweepPoint:
    """One self-contained sweep cell (module-level for pickling)."""
    value, detector, cell_config, n_slots, seed, calibration_trials = item
    labor_model = LaborCostModel(
        fixed_cost=cell_config.detection.repair_fixed_cost,
        per_meter_cost=cell_config.detection.repair_cost_per_meter,
    )
    result = run_long_term_scenario(
        cell_config,
        detector=detector,
        n_slots=n_slots,
        seed=seed,
        calibration_trials=calibration_trials,
    )
    return SweepPoint(
        value=value,
        detector=detector,
        observation_accuracy=result.observation_accuracy,
        mean_par=result.mean_par,
        labor_cost=result.labor_cost(labor_model),
        n_repairs=result.n_repairs,
    )


def sweep_scenario(
    config: CommunityConfig,
    *,
    parameter: str,
    values: tuple[Any, ...],
    detectors: tuple[DetectorKind, ...] = ("aware", "unaware"),
    n_slots: int = 24,
    seed: int | None = None,
    calibration_trials: int = 15,
    parallel: ParallelMap | None = None,
) -> SweepResult:
    """Run the scenario across a parameter grid.

    Parameters
    ----------
    parameter:
        Dotted config address, e.g. ``"pv_adoption"``,
        ``"pricing.sellback_divisor"``, ``"detection.par_threshold"`` or
        ``"detection.hack_probability"``.
    values:
        Grid of values assigned to the parameter.
    detectors:
        Which detector variants to evaluate at each point.
    n_slots:
        Scenario length per cell (a single day by default — sweeps trade
        horizon for grid coverage).
    parallel:
        Execution backend for the grid cells.  Every cell is a pure
        function of its (value, detector) pair, so results are identical
        across backends; the process backend spreads cells over cores.
    """
    if not values:
        raise ValueError("need at least one sweep value")
    if not detectors:
        raise ValueError("need at least one detector variant")
    pmap = parallel if parallel is not None else SERIAL_MAP
    items = [
        (value, detector, _set_dotted(config, parameter, value), n_slots, seed,
         calibration_trials)
        for value in values
        for detector in detectors
    ]
    points = pmap.map(_run_one_cell, items)
    return SweepResult(parameter=parameter, points=tuple(points))


# ----------------------------------------------------------------------
# Tariff × attack × PV-penetration scenario matrix (docs/SCENARIOS.md)


def _array_sha256(array: NDArray[Any]) -> str:
    """Content digest of an array's raw bytes (C order)."""
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


@dataclass(frozen=True)
class MatrixCell:
    """Metrics and artifact digests of one matrix cell.

    The SHA-256 fields digest the scenario's boolean truth/flag rasters
    and the realized grid-demand trace, so a committed matrix fixture
    pins cell behaviour bitwise — the same convention the golden-master
    files under ``tests/golden/`` use.

    ``scoreboard`` is the cell's resilience block
    (:meth:`~repro.obs.scoreboard.ResilienceScoreboard.report`): MTTD,
    MTTR, availability and false-alarm rate folded from the same
    truth/flags/repairs arrays the digests pin, with every episode
    attributed to the cell's attack family.
    """

    tariff: str
    attack_family: str
    pv_adoption: float
    detector: DetectorKind
    observation_accuracy: float
    mean_par: float
    labor_cost: float
    n_repairs: int
    truth_sha256: str
    flags_sha256: str
    realized_grid_sha256: str
    scoreboard: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON payload of this cell (one entry of the artifact's list)."""
        return {
            "tariff": self.tariff,
            "attack_family": self.attack_family,
            "pv_adoption": self.pv_adoption,
            "detector": self.detector,
            "observation_accuracy": self.observation_accuracy,
            "mean_par": self.mean_par,
            "labor_cost": self.labor_cost,
            "n_repairs": self.n_repairs,
            "truth_sha256": self.truth_sha256,
            "flags_sha256": self.flags_sha256,
            "realized_grid_sha256": self.realized_grid_sha256,
            "scoreboard": self.scoreboard,
        }


@dataclass(frozen=True)
class MatrixResult:
    """A full tariff × attack × PV × detector grid."""

    tariffs: tuple[str, ...]
    attack_families: tuple[str, ...]
    pv_adoptions: tuple[float, ...]
    detectors: tuple[DetectorKind, ...]
    n_slots: int
    config_sha256: str
    cells: tuple[MatrixCell, ...]

    def cell(
        self,
        *,
        tariff: str,
        attack_family: str,
        pv_adoption: float,
        detector: DetectorKind,
    ) -> MatrixCell:
        """Look up one cell by its full coordinate."""
        for candidate in self.cells:
            if (
                candidate.tariff == tariff
                and candidate.attack_family == attack_family
                and candidate.pv_adoption == pv_adoption
                and candidate.detector == detector
            ):
                return candidate
        raise KeyError(
            f"no cell at tariff={tariff!r} attack_family={attack_family!r} "
            f"pv_adoption={pv_adoption!r} detector={detector!r}"
        )

    def to_dict(self) -> dict[str, Any]:
        """The ``repro-sweep-matrix`` JSON artifact."""
        return {
            "format": MATRIX_FORMAT,
            "version": MATRIX_VERSION,
            "axes": {
                "tariff": list(self.tariffs),
                "attack_family": list(self.attack_families),
                "pv_adoption": list(self.pv_adoptions),
                "detector": list(self.detectors),
            },
            "n_slots": self.n_slots,
            "config_sha256": self.config_sha256,
            "cells": [cell.to_dict() for cell in self.cells],
        }


def _run_matrix_cell(
    item: tuple[str, str, float, DetectorKind, CommunityConfig, int, int | None, int],
) -> MatrixCell:
    """One self-contained matrix cell (module-level for pickling)."""
    from repro.tariffs import named_tariff

    tariff_name, family, pv, detector, config, n_slots, seed, trials = item
    cell_config = config.with_updates(
        pv_adoption=pv, tariff=named_tariff(tariff_name)
    )
    labor_model = LaborCostModel(
        fixed_cost=cell_config.detection.repair_fixed_cost,
        per_meter_cost=cell_config.detection.repair_cost_per_meter,
    )
    result = run_long_term_scenario(
        cell_config,
        detector=detector,
        n_slots=n_slots,
        seed=seed,
        calibration_trials=trials,
        attack_family=family,
    )
    scoreboard = scoreboard_from_arrays(
        truth=result.truth,
        flags=result.flags,
        repairs=result.repairs,
        family=family,
    )
    return MatrixCell(
        tariff=tariff_name,
        attack_family=family,
        pv_adoption=pv,
        detector=detector,
        observation_accuracy=result.observation_accuracy,
        mean_par=result.mean_par,
        labor_cost=result.labor_cost(labor_model),
        n_repairs=result.n_repairs,
        truth_sha256=_array_sha256(result.truth),
        flags_sha256=_array_sha256(result.flags),
        realized_grid_sha256=_array_sha256(result.realized_grid),
        scoreboard=scoreboard.report(),
    )


def sweep_matrix(
    config: CommunityConfig,
    *,
    tariffs: tuple[str, ...] = ("flat", "nem3_spread"),
    attack_families: tuple[str, ...] = ("peak_increase", "meter_outage"),
    pv_adoptions: tuple[float, ...] | None = None,
    detectors: tuple[DetectorKind, ...] = ("aware", "unaware", "none"),
    n_slots: int = 48,
    seed: int | None = None,
    calibration_trials: int = 30,
    parallel: ParallelMap | None = None,
) -> MatrixResult:
    """Run the scenario across a tariff × attack × PV × detector grid.

    Parameters
    ----------
    tariffs:
        Named tariffs from :data:`repro.tariffs.NAMED_TARIFFS`.
        ``"flat"`` resolves to ``tariff=None`` — the legacy flat
        net-metering path — so its cells are bitwise-identical to the
        pre-tariff Table 1 pipeline.
    attack_families:
        Entries of :data:`repro.attacks.ATTACK_FAMILIES` driving the
        meter-hacking campaigns.
    pv_adoptions:
        PV-penetration grid; defaults to the config's own adoption (one
        point), which keeps the flat column golden-comparable.
    detectors:
        Detector variants per grid point (Table 1's three columns by
        default).
    n_slots / seed / calibration_trials:
        Forwarded to every
        :func:`~repro.simulation.scenario.run_long_term_scenario` call;
        the defaults match the golden-master fixtures.
    parallel:
        Execution backend for the cells.  Every cell is a pure function
        of its coordinate, so the serial and process backends produce
        identical matrices.
    """
    if not tariffs:
        raise ValueError("need at least one tariff")
    if not attack_families:
        raise ValueError("need at least one attack family")
    if not detectors:
        raise ValueError("need at least one detector variant")
    if pv_adoptions is None:
        pv_adoptions = (config.pv_adoption,)
    if not pv_adoptions:
        raise ValueError("need at least one PV adoption level")
    pmap = parallel if parallel is not None else SERIAL_MAP
    items = [
        (tariff, family, pv, detector, config, n_slots, seed, calibration_trials)
        for tariff in tariffs
        for family in attack_families
        for pv in pv_adoptions
        for detector in detectors
    ]
    cells = pmap.map(_run_matrix_cell, items)
    return MatrixResult(
        tariffs=tuple(tariffs),
        attack_families=tuple(attack_families),
        pv_adoptions=tuple(pv_adoptions),
        detectors=tuple(detectors),
        n_slots=n_slots,
        config_sha256=hashlib.sha256(
            json.dumps(config_to_dict(config), sort_keys=True).encode("utf-8")
        ).hexdigest(),
        cells=tuple(cells),
    )


def render_matrix_table(result: MatrixResult) -> str:
    """ASCII table of the matrix: one row per (tariff, attack, PV) point.

    Columns pair observation accuracy and mean PAR per detector; the
    ``flat``/``peak_increase`` row at the config's PV adoption is the
    paper's net-metering-vs-flat Table 1 comparison.
    """
    from repro.reporting.tables import fixed_table

    header = ["tariff", "attack", "pv"]
    for detector in result.detectors:
        header.extend([f"acc({detector})", f"par({detector})"])
    rows = []
    for tariff in result.tariffs:
        for family in result.attack_families:
            for pv in result.pv_adoptions:
                row = [tariff, family, f"{pv:.2f}"]
                for detector in result.detectors:
                    cell = result.cell(
                        tariff=tariff,
                        attack_family=family,
                        pv_adoption=pv,
                        detector=detector,
                    )
                    row.extend(
                        [f"{cell.observation_accuracy:.4f}", f"{cell.mean_par:.4f}"]
                    )
                rows.append(row)
    return fixed_table(header, rows)
