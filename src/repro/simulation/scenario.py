"""Multi-day monitored-community scenario (Figure 6 and Table 1).

One scenario run couples every subsystem:

1. a guideline-price **history** is generated and the chosen price
   predictor (net-metering aware or unaware) is trained on it;
2. a **community** is built; the monitored smart meters stand for equal
   shares of it;
3. the single-event detector is **calibrated** (Monte-Carlo TP/FP rates)
   and the **POMDP** observation model built from the measured rates;
4. the per-slot loop runs the ground-truth **hacking process**, collects
   single-event flags, feeds the flag count to the **long-term detector**
   and applies its repair decisions;
5. the realized **grid demand** mixes the benign community response with
   the hacked shares' manipulated responses (all cached game solutions),
   giving the PAR column of Table 1.

The ``detector="none"`` variant skips the policy (attacks are never
repaired), reproducing Table 1's "No Detection" column.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

import numpy as np
from numpy.typing import NDArray

from repro.attacks.hacking import MeterHackingProcess
from repro.core.config import CommunityConfig
from repro.data.community import build_community
from repro.data.weather import DEFAULT_WEATHER
from repro.data.pricing import (
    GuidelinePriceModel,
    PriceHistory,
    baseline_demand_profile,
    generate_history,
)
from repro.detection.long_term import LongTermDetector
from repro.detection.pomdp import build_detection_pomdp
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.detection.solvers import PbviPolicy, QmdpPolicy
from repro.metrics.accuracy import confusion_counts, per_meter_accuracy
from repro.metrics.cost import LaborCostModel
from repro.metrics.par import par
from repro.obs.trace import TRACER
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.simulation.cache import GameSolutionCache, global_game_cache
from repro.simulation.calibration import measure_single_event_rates

DetectorKind = Literal["aware", "unaware", "none"]


@dataclass(frozen=True)
class ScenarioResult:
    """Everything the Figure 6 / Table 1 analyses need from one run."""

    detector: DetectorKind
    truth: NDArray[np.bool_]
    flags: NDArray[np.bool_]
    observations: NDArray[np.int_]
    repairs: NDArray[np.bool_]
    repaired_counts: NDArray[np.int_]
    realized_grid: NDArray[np.float64]
    slots_per_day: int
    tp_rate: float
    fp_rate: float

    @property
    def n_slots(self) -> int:
        return self.truth.shape[0]

    @property
    def observation_accuracy(self) -> float:
        """Per-meter classification accuracy (the Figure 6 metric)."""
        return per_meter_accuracy(self.truth, self.flags)

    @property
    def accuracy_per_slot(self) -> NDArray[np.float64]:
        """Per-slot fraction of correctly classified meters (Fig. 6 series)."""
        correct = self.truth == self.flags
        return correct.mean(axis=1)

    @property
    def mean_par(self) -> float:
        """Mean daily PAR of the realized grid demand (Table 1)."""
        days = self.realized_grid.reshape(-1, self.slots_per_day)
        return float(np.mean([par(day) for day in days]))

    @property
    def n_repairs(self) -> int:
        return int(self.repairs.sum())

    @property
    def mean_hacked(self) -> float:
        """Average number of simultaneously hacked meters."""
        return float(self.truth.sum(axis=1).mean())

    def labor_cost(self, model: LaborCostModel) -> float:
        """Total labor cost of the run's repair dispatches."""
        counts = self.repaired_counts[self.repairs]
        return model.total_cost(counts)

    def rates_summary(self) -> tuple[float, float]:
        """Realized (TP, FP) rates over the run (not the calibration)."""
        counts = confusion_counts(self.truth, self.flags)
        has_pos = counts.true_positives + counts.false_negatives > 0
        has_neg = counts.false_positives + counts.true_negatives > 0
        tp = counts.true_positive_rate if has_pos else 0.0
        fp = counts.false_positive_rate if has_neg else 0.0
        return tp, fp


def run_long_term_scenario(
    config: CommunityConfig,
    *,
    detector: DetectorKind,
    n_slots: int = 48,
    history: PriceHistory | None = None,
    policy: Literal["qmdp", "pbvi"] = "qmdp",
    calibration_trials: int = 30,
    seed: int | None = None,
    cache: GameSolutionCache | None = None,
    attack_family: str = "peak_increase",
) -> ScenarioResult:
    """Run the 48-hour monitored scenario of Section 5.

    Parameters
    ----------
    config:
        Community and detection parameters.  ``config.time`` must be a
        one-day grid; the scenario spans ``n_slots`` slots across
        consecutive days.
    detector:
        ``"aware"``, ``"unaware"`` or ``"none"`` (Table 1's three columns;
        the "none" column keeps monitoring but never repairs).
    n_slots:
        Length of the monitoring horizon (48 in the paper's Fig. 6).
    history:
        Price history for predictor training; generated when omitted.
    policy:
        POMDP policy for the long-term layer.
    calibration_trials:
        Monte-Carlo trials per class when measuring the single-event
        TP/FP rates.
    seed:
        Overrides ``config.seed``.
    cache:
        Game-solution cache shared by the run's simulators; defaults to
        the process-global cache, so repeated runs (aggregation seeds,
        detector variants over the same community, benchmark sessions)
        solve each distinct game exactly once.  Solutions are
        content-addressed over the full solve input, so cached runs are
        numerically identical to cold ones.
    attack_family:
        What each compromise campaign installs (see
        :data:`repro.attacks.hacking.ATTACK_FAMILIES`).  The default is
        the paper's cheap-window attack through the historical code
        path; the telemetry families additionally decouple the reading
        the detector sees from the price the home responded to.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    spd = config.time.slots_per_day
    if n_slots % spd != 0:
        raise ValueError(f"n_slots {n_slots} must be a multiple of {spd}")
    n_days = n_slots // spd
    rng = np.random.default_rng(config.seed if seed is None else seed)
    cache = cache if cache is not None else global_game_cache()
    scenario_span = TRACER.begin(
        "scenario.run", detector=str(detector), n_slots=n_slots
    )
    setup_span = TRACER.begin("scenario.setup", parent_id=scenario_span)

    day_config = config.with_updates(time=replace(config.time, n_days=1))
    community = build_community(day_config, rng=rng)
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    if history is None:
        history = generate_history(
            rng,
            n_customers=config.n_customers,
            pricing=config.pricing,
            solar=config.solar,
            slots_per_day=spd,
            mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
        )

    aware = detector != "unaware"
    if aware:
        predictor: AwarePricePredictor | UnawarePricePredictor = AwarePricePredictor()
    else:
        predictor = UnawarePricePredictor()
    predictor.fit(history)

    # --- day-level environment -------------------------------------------
    base_demand = baseline_demand_profile(day_config.time) * config.n_customers
    day_clean_prices: list[NDArray[np.float64]] = []
    day_predicted: list[NDArray[np.float64]] = []
    for _ in range(n_days):
        weather = DEFAULT_WEATHER.daily_factor(rng)
        pv = community.total_pv * weather
        demand = base_demand * float(np.clip(rng.normal(1.0, 0.03), 0.8, 1.2))
        clean = price_model.price(demand, pv, rng=rng)
        day_clean_prices.append(clean)
        if aware:
            predicted = predictor.predict_day(
                demand_forecast=demand, renewable_forecast=pv
            )
        else:
            predicted = predictor.predict_day()
        day_predicted.append(predicted)
        # Roll the history forward so the next day's lags see this day.
        history = PriceHistory(
            prices=np.concatenate([history.prices, clean]),
            demand=np.concatenate([history.demand, demand]),
            renewable=np.concatenate([history.renewable, pv]),
            nm_active=np.concatenate([history.nm_active, np.ones(spd, dtype=bool)]),
            slots_per_day=spd,
        )

    # --- detection stack ---------------------------------------------------
    # Ground truth responses always include net metering; the received
    # price is simulated on this model for both detectors.
    truth_simulator = CommunityResponseSimulator(
        community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
        cache=cache,
        solver=config.solver,
        tariff=config.tariff,
    )
    # The detector's own expectation model: the unaware detector does not
    # model net metering at all (ref. [8]), so its predicted PAR carries a
    # systematic offset — the compromise the paper analyzes.
    if aware:
        predicted_simulator = truth_simulator
    else:
        # The unaware detector's model predates tariffs entirely: it
        # keeps the legacy flat pricing regardless of ``config.tariff``.
        predicted_simulator = CommunityResponseSimulator(
            community.without_net_metering(),
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
            cache=cache,
            solver=config.solver,
        )
    # Batch-solve the day-level games up front: every detector
    # construction below (predicted PAR) and every slot's clean response
    # then hits the cache.  Prefetching consumes nothing from the
    # scenario rng and is bitwise-identical to solving lazily.
    if predicted_simulator is truth_simulator:
        truth_simulator.prefetch(day_predicted + day_clean_prices)
    else:
        predicted_simulator.prefetch(day_predicted)
        truth_simulator.prefetch(day_clean_prices)
    n_meters = config.detection.n_monitored_meters
    hacking = MeterHackingProcess(
        n_meters,
        config.detection.hack_probability,
        slots_per_day=spd,
        attack_family=attack_family,
        rng=rng,
    )
    day_detectors = [
        SingleEventDetector(
            truth_simulator,
            day_predicted[d],
            predicted_simulator=predicted_simulator,
            threshold=config.detection.par_threshold,
            margin_noise_std=config.detection.margin_noise_std,
        )
        for d in range(n_days)
    ]

    long_term: LongTermDetector | None = None
    tp_rate = fp_rate = 0.0
    if detector != "none":
        rates = measure_single_event_rates(
            day_detectors[0],
            day_clean_prices[0],
            hacking,
            n_trials=calibration_trials,
            rng=rng,
        ).clipped()
        tp_rate, fp_rate = rates.tp_rate, rates.fp_rate
        model = build_detection_pomdp(
            n_meters,
            hack_probability=config.detection.hack_probability,
            tp_rate=tp_rate,
            fp_rate=fp_rate,
            damage_per_meter=config.detection.damage_per_meter,
            repair_fixed_cost=config.detection.repair_fixed_cost,
            repair_cost_per_meter=config.detection.repair_cost_per_meter,
            discount=config.detection.discount,
        )
        chosen_policy = (
            PbviPolicy(model, rng=np.random.default_rng(int(rng.integers(2**31 - 1))))
            if policy == "pbvi"
            else QmdpPolicy(model)
        )
        long_term = LongTermDetector(model, policy=chosen_policy)

    # --- per-slot loop -------------------------------------------------------
    TRACER.end(setup_span)
    truth = np.zeros((n_slots, n_meters), dtype=bool)
    flags = np.zeros((n_slots, n_meters), dtype=bool)
    observations = np.zeros(n_slots, dtype=int)
    repairs = np.zeros(n_slots, dtype=bool)
    repaired_counts = np.zeros(n_slots, dtype=int)
    realized_grid = np.zeros(n_slots)

    for slot in range(n_slots):
        day = slot // spd
        slot_in_day = slot % spd
        clean = day_clean_prices[day]
        with TRACER.span("scenario.slot", slot=slot, day=day):
            if slot > 0 and slot_in_day == 0:
                # New day, new guideline-price vector: the attacker rolls a
                # fresh manipulation of it.
                hacking.new_campaign()
            hacking.step()
            truth[slot] = hacking.hacked_mask

            # ``received`` is what each home responded to; ``reported``
            # is what its meter told the utility.  Honest families keep
            # the two bitwise-identical; the telemetry families spoof or
            # blank the reading, blinding the PAR check.
            received = np.tile(clean, (n_meters, 1))
            reported = np.tile(clean, (n_meters, 1))
            for meter in hacking.hacked_meters:
                attacked = meter.attack.apply(clean)
                received[meter.meter_id] = attacked
                reported[meter.meter_id] = meter.attack.report(clean, attacked)
            flags[slot] = day_detectors[day].observe_meters(reported, rng=rng)
            observations[slot] = int(flags[slot].sum())

            # Realized grid demand: each monitored meter stands for 1/n of
            # the community; hacked shares respond to their manipulated
            # prices.
            benign = truth_simulator.response(clean).grid_demand
            demand = benign[slot_in_day]
            for meter in hacking.hacked_meters:
                attacked = truth_simulator.response(
                    received[meter.meter_id]
                ).grid_demand
                demand += (attacked[slot_in_day] - benign[slot_in_day]) / n_meters
            realized_grid[slot] = max(demand, 0.0)

            if long_term is not None:
                with TRACER.span("detector.update", observation=int(observations[slot])):
                    step = long_term.step(observations[slot])
                if step.repaired:
                    repaired_counts[slot] = hacking.repair_all()
                    repairs[slot] = True

    TRACER.end(scenario_span)
    return ScenarioResult(
        detector=detector,
        truth=truth,
        flags=flags,
        observations=observations,
        repairs=repairs,
        repaired_counts=repaired_counts,
        realized_grid=realized_grid,
        slots_per_day=spd,
        tp_rate=tp_rate,
        fp_rate=fp_rate,
    )
