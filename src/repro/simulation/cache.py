"""Content-addressed cache of scheduling-game solutions.

The detection pipeline solves the same game over and over: a 48-hour
scenario replays each day's clean and attacked price vectors every slot,
calibration Monte-Carlo re-checks the same prices, and the benchmark
harness runs three detector variants over identical communities.  The
game solver is deterministic given ``(community, prices, config,
sellback divisor, solver seed)``, so solutions can be shared across
simulators, scenario runs and — with the on-disk layer — across
processes and sessions.

Keys are SHA-256 digests over the full solve input; two simulators with
different communities or configs can therefore share one cache with no
risk of collision.  The in-memory tier is a bounded LRU; the optional
on-disk tier persists each solution as an ``.npz`` of the strategy
arrays (plus a JSON manifest) and reconstructs the full
:class:`~repro.scheduling.game.GameResult` against the live community.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np
from numpy.typing import NDArray

from repro.core.config import GameConfig
from repro.perf.counters import PERF
from repro.scheduling.appliance import ApplianceSchedule
from repro.scheduling.customer import CustomerState
from repro.scheduling.game import Community, GameResult

if TYPE_CHECKING:
    from repro.tariffs.base import Tariff

PRICE_DECIMALS = 9
"""Prices are rounded to this many decimals before hashing, matching the
historical memoization key of ``CommunityResponseSimulator``."""


def community_fingerprint(community: Community) -> str:
    """Stable content digest of a community's full static description."""
    hasher = hashlib.sha256()
    hasher.update(repr(community.counts).encode())
    for customer in community.customers:
        battery = customer.battery
        hasher.update(
            repr(
                (
                    customer.customer_id,
                    battery.capacity_kwh,
                    battery.initial_kwh,
                    battery.max_charge_kw,
                    battery.max_discharge_kw,
                    customer.pv,
                    customer.base_load,
                )
            ).encode()
        )
        for task in customer.tasks:
            hasher.update(
                repr(
                    (
                        task.name,
                        task.power_levels,
                        task.energy_kwh,
                        task.earliest_start,
                        task.deadline,
                    )
                ).encode()
            )
    return hasher.hexdigest()


def game_config_fingerprint(config: GameConfig) -> str:
    """Digest of every convergence control that shapes a solve."""
    payload = repr(
        (
            config.max_rounds,
            config.inner_iterations,
            config.convergence_tol,
            config.hysteresis,
            config.ce_samples,
            config.ce_elites,
            config.ce_iterations,
            config.ce_smoothing,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def solve_context_key(
    community: Community,
    config: GameConfig,
    *,
    sellback_divisor: float,
    seed: int,
    tariff: "Tariff | None" = None,
) -> str:
    """Digest of everything except the price vector.

    Simulators compute this once and extend it per price with
    :func:`solution_key`, so the per-solve hashing cost is one SHA-256
    over ~200 bytes.

    ``tariff=None`` (the legacy flat net-metering billing) hashes the
    exact historical payload, so every pre-tariff cache entry — in
    memory or on disk — remains addressable; a non-default tariff
    appends its content fingerprint, giving each billing structure its
    own key space.
    """
    parts = [
        community_fingerprint(community),
        game_config_fingerprint(config),
        repr(float(sellback_divisor)),
        repr(int(seed)),
    ]
    if tariff is not None:
        from repro.tariffs.base import tariff_fingerprint

        parts.append(tariff_fingerprint(tariff))
    payload = "|".join(parts)
    return hashlib.sha256(payload.encode()).hexdigest()


def solution_key(context_key: str, prices: NDArray[np.float64]) -> str:
    """Full cache key for one (solve context, price vector) pair."""
    hasher = hashlib.sha256(context_key.encode())
    hasher.update(np.round(np.asarray(prices, dtype=float), PRICE_DECIMALS).tobytes())
    return hasher.hexdigest()


def warm_context_key(
    context_key: str,
    *,
    ce_std_scale: float,
    max_distance: float,
) -> str:
    """Context digest for warm-started solving.

    Warm-started solutions depend on the cache state they were seeded
    from, so they are *not* interchangeable with cold solutions of the
    same context.  Namespacing the context key keeps the two populations
    separate: a warm-starting simulator never reads (or pollutes) the
    cold entries that golden-master runs rely on.  Both warm-start knobs
    enter the digest because either changes which equilibrium a solve
    lands on.
    """
    payload = "|".join(
        (
            context_key,
            "warm",
            repr(float(ce_std_scale)),
            repr(float(max_distance)),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class NearHit:
    """A cached solution for the nearest previously solved price vector."""

    key: str
    result: GameResult
    distance: float


def _result_to_arrays(result: GameResult) -> dict[str, np.ndarray]:
    """Flatten a GameResult into the arrays an ``.npz`` can hold."""
    arrays: dict[str, np.ndarray] = {
        "counts": np.asarray(result.counts, dtype=np.int64),
        "rounds": np.asarray(result.rounds, dtype=np.int64),
        "converged": np.asarray(result.converged, dtype=bool),
        "residuals": np.asarray(result.residuals, dtype=float),
    }
    for i, state in enumerate(result.states):
        arrays[f"a{i}_battery"] = np.asarray(state.battery_decision, dtype=float)
        for j, schedule in enumerate(state.schedules):
            arrays[f"a{i}_t{j}_power"] = np.asarray(schedule.power, dtype=float)
    return arrays


def _result_from_arrays(
    arrays: dict[str, np.ndarray], community: Community
) -> GameResult:
    """Rebuild a GameResult from persisted arrays and the live community."""
    states = []
    for i, customer in enumerate(community.customers):
        schedules = tuple(
            ApplianceSchedule(task=task, power=tuple(arrays[f"a{i}_t{j}_power"]))
            for j, task in enumerate(customer.tasks)
        )
        states.append(
            CustomerState(
                customer=customer,
                schedules=schedules,
                battery_decision=tuple(arrays[f"a{i}_battery"]),
            )
        )
    return GameResult(
        states=tuple(states),
        counts=tuple(int(c) for c in arrays["counts"]),
        rounds=int(arrays["rounds"]),
        converged=bool(arrays["converged"]),
        residuals=tuple(float(r) for r in arrays["residuals"]),
    )


class GameSolutionCache:
    """Bounded LRU of game solutions with optional on-disk persistence.

    Parameters
    ----------
    max_entries:
        In-memory LRU bound; the least recently used solution is evicted
        past it.  Solutions are small (per-archetype strategy arrays),
        so the default comfortably covers a multi-day scenario.
    directory:
        Optional persistence directory.  Solutions are written as
        ``<key>.npz`` plus a ``manifest.json`` index; a later process
        (or a cold in-memory tier) reloads them instead of re-solving.
    """

    def __init__(
        self,
        *,
        max_entries: int = 512,
        directory: str | Path | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, GameResult] = OrderedDict()
        # Per-context index of solved price vectors, for near-hit lookup
        # (equilibrium warm-starting): context key -> key -> prices.
        self._price_index: dict[str, OrderedDict[str, NDArray[np.float64]]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of solutions currently held in memory."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def get_or_solve(
        self,
        key: str,
        solve: Callable[[], GameResult],
        *,
        community: Community | None = None,
    ) -> GameResult:
        """Return the cached solution for ``key``, solving on a miss.

        ``community`` enables the on-disk tier: persisted strategy arrays
        are reconstructed against it, and fresh solutions are written
        back.  The caller is responsible for ``key`` covering everything
        ``solve`` depends on (use :func:`solution_key`).
        """
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            PERF.add("cache.hits")
            return cached
        if self.directory is not None and community is not None:
            loaded = self._load(key, community)
            if loaded is not None:
                self.hits += 1
                PERF.add("cache.hits")
                self._store(key, loaded)
                return loaded
        self.misses += 1
        PERF.add("cache.misses")
        result = solve()
        self._store(key, result)
        if self.directory is not None:
            self._persist(key, result)
        return result

    def peek(
        self, key: str, *, community: Community | None = None
    ) -> GameResult | None:
        """Return the solution for ``key`` if available, without counting.

        Unlike :meth:`get_or_solve` this neither solves nor touches the
        hit/miss counters; prefetchers use it to decide which keys still
        need solving.  With ``community`` the on-disk tier is consulted
        (and a found solution promoted into memory).
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        if self.directory is not None and community is not None:
            loaded = self._load(key, community)
            if loaded is not None:
                self._store(key, loaded)
                return loaded
        return None

    def put(
        self,
        key: str,
        result: GameResult,
        *,
        community: Community | None = None,
    ) -> None:
        """Insert an externally computed solution for ``key``.

        Counts as a miss — the solution *was* computed rather than served
        — so a prefetch-then-lookup sequence reports the same hit/miss
        totals as the lookup-solves-on-miss sequence it replaces.
        """
        self.misses += 1
        PERF.add("cache.misses")
        self._store(key, result)
        if self.directory is not None and community is not None:
            self._persist(key, result)

    # ------------------------------------------------------------------
    # Near-hit lookup (equilibrium warm-starting)
    # ------------------------------------------------------------------
    def register_prices(
        self,
        context_key: str,
        prices: NDArray[np.float64],
        key: str,
    ) -> None:
        """Record that ``key`` solves ``prices`` within ``context_key``.

        Builds the per-context price index that :meth:`nearest` scans.
        Prices are rounded exactly as :func:`solution_key` rounds them,
        so one registration per distinct key suffices.
        """
        index = self._price_index.setdefault(context_key, OrderedDict())
        if key not in index:
            index[key] = np.round(
                np.asarray(prices, dtype=float), PRICE_DECIMALS
            )

    def nearest(
        self,
        context_key: str,
        prices: NDArray[np.float64],
        *,
        max_distance: float = np.inf,
    ) -> NearHit | None:
        """Closest previously solved price vector in the same context.

        Distance is the max-abs (Chebyshev) gap between rounded price
        vectors — the same geometry as the game's convergence residual.
        Returns ``None`` when nothing registered lies within
        ``max_distance`` or the best candidate was evicted.  The scan is
        deterministic given the cache state: insertion order, strict
        improvement, first-registered wins ties.
        """
        index = self._price_index.get(context_key)
        if not index:
            return None
        target = np.round(np.asarray(prices, dtype=float), PRICE_DECIMALS)
        best_key: str | None = None
        best_distance = np.inf
        stale: list[str] = []
        for key, candidate in index.items():
            if key not in self._entries:
                stale.append(key)
                continue
            distance = float(np.max(np.abs(candidate - target)))
            if distance < best_distance:
                best_key = key
                best_distance = distance
        for key in stale:
            del index[key]
        if best_key is None or best_distance > max_distance:
            return None
        return NearHit(
            key=best_key,
            result=self._entries[best_key],
            distance=best_distance,
        )

    def clear(self) -> None:
        """Drop every in-memory entry and reset the hit/miss counters."""
        self._entries.clear()
        self._price_index.clear()
        self.hits = 0
        self.misses = 0

    def _store(self, key: str, result: GameResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # On-disk tier
    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.npz"

    def _persist(self, key: str, result: GameResult) -> None:
        path = self._path(key)
        if path.exists():
            return
        np.savez(path, **_result_to_arrays(result))
        manifest_path = self.directory / "manifest.json"  # type: ignore[operator]
        manifest: dict[str, dict[str, object]] = {}
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
        manifest[key] = {
            "archetypes": len(result.states),
            "rounds": result.rounds,
            "converged": result.converged,
        }
        manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    def _load(self, key: str, community: Community) -> GameResult | None:
        path = self._path(key)
        if not path.exists():
            return None
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        return _result_from_arrays(arrays, community)


_GLOBAL_CACHE: GameSolutionCache | None = None


def global_game_cache() -> GameSolutionCache:
    """The process-wide shared cache used by the scenario engine.

    Created lazily so importing this module costs nothing; parallel
    workers each get their own instance (caches are process-local).
    """
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = GameSolutionCache()
    return _GLOBAL_CACHE
