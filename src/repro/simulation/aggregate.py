"""Multi-seed aggregation of scenario runs.

A 48-hour scenario sees only a couple of attack campaigns, so single-run
metrics carry real variance.  This module repeats scenarios across seeds
and reports mean and spread — the numbers EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CommunityConfig
from repro.metrics.cost import LaborCostModel
from repro.perf.parallel import SERIAL_MAP, ParallelMap
from repro.simulation.scenario import DetectorKind, ScenarioResult, run_long_term_scenario


@dataclass(frozen=True)
class AggregateMetric:
    """Mean and spread of one metric across seeds."""

    mean: float
    std: float
    values: tuple[float, ...]

    @classmethod
    def from_values(cls, values: list[float]) -> "AggregateMetric":
        if not values:
            raise ValueError("need at least one value")
        arr = np.asarray(values, dtype=float)
        return cls(mean=float(arr.mean()), std=float(arr.std()), values=tuple(arr))

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={len(self.values)})"


@dataclass(frozen=True)
class AggregateResult:
    """Aggregated outcomes of one detector variant across seeds."""

    detector: DetectorKind
    observation_accuracy: AggregateMetric
    mean_par: AggregateMetric
    labor_cost: AggregateMetric
    n_repairs: AggregateMetric
    mean_hacked: AggregateMetric
    runs: tuple[ScenarioResult, ...]


def _run_one_scenario(
    item: tuple[CommunityConfig, DetectorKind, int, int, int],
) -> ScenarioResult:
    """One self-contained scenario task (module-level for pickling)."""
    config, detector, n_slots, calibration_trials, seed = item
    return run_long_term_scenario(
        config,
        detector=detector,
        n_slots=n_slots,
        calibration_trials=calibration_trials,
        seed=seed,
    )


def run_aggregate_scenario(
    config: CommunityConfig,
    *,
    detector: DetectorKind,
    seeds: tuple[int, ...],
    n_slots: int = 48,
    calibration_trials: int = 30,
    parallel: ParallelMap | None = None,
) -> AggregateResult:
    """Run the long-term scenario once per seed and aggregate the metrics.

    Each seed is a self-contained task (the per-run generator is seeded
    from the item itself), so the result is bitwise identical across
    ``parallel`` backends and worker counts; the process backend simply
    spreads the seeds over cores.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    pmap = parallel if parallel is not None else SERIAL_MAP
    labor_model = LaborCostModel(
        fixed_cost=config.detection.repair_fixed_cost,
        per_meter_cost=config.detection.repair_cost_per_meter,
    )
    runs = pmap.map(
        _run_one_scenario,
        [(config, detector, n_slots, calibration_trials, seed) for seed in seeds],
    )
    return AggregateResult(
        detector=detector,
        observation_accuracy=AggregateMetric.from_values(
            [run.observation_accuracy for run in runs]
        ),
        mean_par=AggregateMetric.from_values([run.mean_par for run in runs]),
        labor_cost=AggregateMetric.from_values(
            [run.labor_cost(labor_model) for run in runs]
        ),
        n_repairs=AggregateMetric.from_values(
            [float(run.n_repairs) for run in runs]
        ),
        mean_hacked=AggregateMetric.from_values(
            [run.mean_hacked for run in runs]
        ),
        runs=tuple(runs),
    )
