"""Scenario engine: multi-day monitored community simulations.

Submodules are loaded lazily through module ``__getattr__``: the
detection layer imports :mod:`repro.simulation.cache` at import time,
and an eager package ``__init__`` would close an import cycle back
through :mod:`repro.simulation.scenario` (which imports detection).
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    "AggregateMetric": "repro.simulation.aggregate",
    "AggregateResult": "repro.simulation.aggregate",
    "run_aggregate_scenario": "repro.simulation.aggregate",
    "GameSolutionCache": "repro.simulation.cache",
    "global_game_cache": "repro.simulation.cache",
    "SingleEventRates": "repro.simulation.calibration",
    "measure_single_event_rates": "repro.simulation.calibration",
    "load_scenario": "repro.simulation.results",
    "save_scenario": "repro.simulation.results",
    "DetectorKind": "repro.simulation.scenario",
    "ScenarioResult": "repro.simulation.scenario",
    "run_long_term_scenario": "repro.simulation.scenario",
    "SweepPoint": "repro.simulation.sweep",
    "SweepResult": "repro.simulation.sweep",
    "sweep_scenario": "repro.simulation.sweep",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
