"""Scenario engine: multi-day monitored community simulations."""

from repro.simulation.aggregate import (
    AggregateMetric,
    AggregateResult,
    run_aggregate_scenario,
)
from repro.simulation.calibration import SingleEventRates, measure_single_event_rates
from repro.simulation.results import load_scenario, save_scenario
from repro.simulation.scenario import (
    DetectorKind,
    ScenarioResult,
    run_long_term_scenario,
)
from repro.simulation.sweep import SweepPoint, SweepResult, sweep_scenario

__all__ = [
    "AggregateMetric",
    "AggregateResult",
    "DetectorKind",
    "ScenarioResult",
    "SingleEventRates",
    "SweepPoint",
    "SweepResult",
    "load_scenario",
    "measure_single_event_rates",
    "run_aggregate_scenario",
    "run_long_term_scenario",
    "save_scenario",
    "sweep_scenario",
]
