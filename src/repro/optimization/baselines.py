"""Baseline optimizers for the cross-entropy ablation (Ablation A).

These deliberately simple methods put the CE optimizer's sample efficiency
in context on the non-convex battery cost:

- :func:`random_search` — uniform sampling over the box;
- :func:`coordinate_descent` — cyclic one-dimensional grid refinement;
- :func:`projected_gradient` — finite-difference gradient steps with box
  projection (finds local minima of the piecewise-quadratic cost only).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.optimization.cross_entropy import OptimizationResult, Projection

Objective = Callable[[NDArray[np.float64]], float]


def _check_bounds(lower: ArrayLike, upper: ArrayLike) -> tuple[np.ndarray, np.ndarray]:
    lo = np.atleast_1d(np.asarray(lower, dtype=float))
    hi = np.atleast_1d(np.asarray(upper, dtype=float))
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(f"bounds must be matching 1-D arrays: {lo.shape} vs {hi.shape}")
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound")
    return lo, hi


def random_search(
    objective: Objective,
    lower: ArrayLike,
    upper: ArrayLike,
    *,
    n_samples: int = 500,
    rng: np.random.Generator | None = None,
    projection: Projection | None = None,
) -> OptimizationResult:
    """Uniform random sampling over the box; returns the best sample."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    lo, hi = _check_bounds(lower, upper)
    rng = rng if rng is not None else np.random.default_rng(0)
    best_x = (lo + hi) / 2.0
    if projection is not None:
        best_x = projection(best_x)
    best_f = objective(best_x)
    for _ in range(n_samples):
        x = rng.uniform(lo, hi)
        if projection is not None:
            x = projection(x)
        f = objective(x)
        if f < best_f:
            best_f, best_x = f, x
    return OptimizationResult(
        x=best_x,
        fun=float(best_f),
        n_evaluations=n_samples + 1,
        n_iterations=1,
        converged=False,
    )


def coordinate_descent(
    objective: Objective,
    lower: ArrayLike,
    upper: ArrayLike,
    *,
    x0: ArrayLike | None = None,
    n_grid: int = 9,
    n_sweeps: int = 6,
    projection: Projection | None = None,
) -> OptimizationResult:
    """Cyclic coordinate minimization on a per-coordinate grid.

    Each sweep visits every coordinate and replaces it with the best of
    ``n_grid`` evenly spaced candidate values (keeping the others fixed).
    Stops early when a sweep makes no improvement.
    """
    if n_grid < 2:
        raise ValueError(f"n_grid must be >= 2, got {n_grid}")
    if n_sweeps < 1:
        raise ValueError(f"n_sweeps must be >= 1, got {n_sweeps}")
    lo, hi = _check_bounds(lower, upper)
    x = (
        np.clip(np.asarray(x0, dtype=float), lo, hi)
        if x0 is not None
        else (lo + hi) / 2.0
    )
    if projection is not None:
        x = projection(x)
    best_f = objective(x)
    n_evaluations = 1
    history = [float(best_f)]
    for _ in range(n_sweeps):
        improved = False
        for i in range(lo.size):
            candidates = np.linspace(lo[i], hi[i], n_grid)
            for value in candidates:
                trial = x.copy()
                trial[i] = value
                if projection is not None:
                    trial = projection(trial)
                f = objective(trial)
                n_evaluations += 1
                if f < best_f - 1e-12:
                    best_f, x = f, trial
                    improved = True
        history.append(float(best_f))
        if not improved:
            break
    return OptimizationResult(
        x=x,
        fun=float(best_f),
        n_evaluations=n_evaluations,
        n_iterations=len(history) - 1,
        converged=not improved,
        history=tuple(history),
    )


def projected_gradient(
    objective: Objective,
    lower: ArrayLike,
    upper: ArrayLike,
    *,
    x0: ArrayLike | None = None,
    step: float = 0.1,
    n_iterations: int = 100,
    fd_epsilon: float = 1e-4,
    projection: Projection | None = None,
) -> OptimizationResult:
    """Finite-difference projected gradient descent with backtracking.

    A local method: on the non-convex battery cost it converges to the
    nearest local minimum, which is exactly the failure mode the paper's
    cross-entropy choice avoids.
    """
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    lo, hi = _check_bounds(lower, upper)
    x = (
        np.clip(np.asarray(x0, dtype=float), lo, hi)
        if x0 is not None
        else (lo + hi) / 2.0
    )
    if projection is not None:
        x = projection(x)
    f = objective(x)
    n_evaluations = 1
    history = [float(f)]
    converged = False
    for _ in range(n_iterations):
        grad = np.zeros_like(x)
        for i in range(x.size):
            bumped = x.copy()
            bumped[i] = min(x[i] + fd_epsilon, hi[i])
            actual_eps = bumped[i] - x[i]
            if actual_eps == 0.0:  # repro: noqa[FLT001] exact: bump clipped to bound
                bumped[i] = max(x[i] - fd_epsilon, lo[i])
                actual_eps = bumped[i] - x[i]
            if actual_eps == 0.0:  # repro: noqa[FLT001] exact: avoids 0/0 gradient
                continue
            grad[i] = (objective(bumped) - f) / actual_eps
            n_evaluations += 1
        current_step = step
        improved = False
        for _ in range(8):
            trial = np.clip(x - current_step * grad, lo, hi)
            if projection is not None:
                trial = projection(trial)
            f_trial = objective(trial)
            n_evaluations += 1
            if f_trial < f - 1e-12:
                x, f = trial, f_trial
                improved = True
                break
            current_step /= 2.0
        history.append(float(f))
        if not improved:
            converged = True
            break
    return OptimizationResult(
        x=x,
        fun=float(f),
        n_evaluations=n_evaluations,
        n_iterations=len(history) - 1,
        converged=converged,
        history=tuple(history),
    )
