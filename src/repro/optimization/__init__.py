"""Stochastic optimization: cross-entropy method and ablation baselines."""

from repro.optimization.annealing import simulated_annealing
from repro.optimization.baselines import (
    coordinate_descent,
    projected_gradient,
    random_search,
)
from repro.optimization.battery import BatteryOptimizer, BatteryProblem
from repro.optimization.cross_entropy import (
    CrossEntropyOptimizer,
    OptimizationResult,
)

__all__ = [
    "BatteryOptimizer",
    "BatteryProblem",
    "CrossEntropyOptimizer",
    "OptimizationResult",
    "coordinate_descent",
    "projected_gradient",
    "random_search",
    "simulated_annealing",
]
