"""Simulated annealing — a second global-search baseline for Ablation A.

Where the cross-entropy method is population-based, simulated annealing
is a single-chain Metropolis walk with a cooling temperature.  Both
handle the battery cost's non-convexity; comparing them (and the local
baselines) at matched budgets contextualizes the paper's choice of CE.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.optimization.cross_entropy import Objective, OptimizationResult, Projection


def simulated_annealing(
    objective: Objective,
    lower: ArrayLike,
    upper: ArrayLike,
    *,
    x0: ArrayLike | None = None,
    n_iterations: int = 1000,
    initial_temperature: float = 1.0,
    cooling: float = 0.995,
    step_fraction: float = 0.1,
    rng: np.random.Generator | None = None,
    projection: Projection | None = None,
) -> OptimizationResult:
    """Minimize ``objective`` over a box with Metropolis annealing.

    Parameters
    ----------
    objective:
        Scalar objective to minimize.
    lower, upper:
        Box bounds, shape ``(d,)``.
    x0:
        Starting point; defaults to the box center.
    n_iterations:
        Number of proposal steps (one objective evaluation each).
    initial_temperature:
        Metropolis temperature at step 0, in objective units.
    cooling:
        Geometric cooling factor per step, in (0, 1).
    step_fraction:
        Proposal standard deviation as a fraction of each box span.
    projection:
        Optional feasibility repair applied to proposals.
    """
    lo = np.atleast_1d(np.asarray(lower, dtype=float))
    hi = np.atleast_1d(np.asarray(upper, dtype=float))
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(f"bounds must be matching 1-D arrays: {lo.shape} vs {hi.shape}")
    if np.any(lo > hi):
        raise ValueError("lower bound exceeds upper bound")
    if n_iterations < 1:
        raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
    if initial_temperature <= 0:
        raise ValueError(f"initial_temperature must be > 0, got {initial_temperature}")
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0, 1), got {cooling}")
    if step_fraction <= 0:
        raise ValueError(f"step_fraction must be > 0, got {step_fraction}")
    rng = rng if rng is not None else np.random.default_rng(0)

    span = hi - lo
    if x0 is not None:
        x0_arr = np.atleast_1d(np.asarray(x0, dtype=float))
        if x0_arr.shape != lo.shape:
            raise ValueError(f"x0 must have shape {lo.shape}, got {x0_arr.shape}")
        current = np.clip(x0_arr, lo, hi)
    else:
        current = (lo + hi) / 2.0
    if projection is not None:
        current = projection(current)
    current_value = float(objective(current))
    best = current.copy()
    best_value = current_value
    temperature = initial_temperature
    history = [best_value]
    n_evaluations = 1

    step_scale = np.maximum(span * step_fraction, 1e-9)
    for _ in range(n_iterations):
        proposal = np.clip(current + rng.normal(0.0, step_scale), lo, hi)
        if projection is not None:
            proposal = projection(proposal)
        value = float(objective(proposal))
        n_evaluations += 1
        delta = value - current_value
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-12)):
            current, current_value = proposal, value
            if value < best_value:
                best, best_value = proposal.copy(), value
        history.append(best_value)
        temperature *= cooling

    return OptimizationResult(
        x=best,
        fun=best_value,
        n_evaluations=n_evaluations,
        n_iterations=n_iterations,
        converged=temperature < 1e-6,
        history=tuple(history),
    )
