"""Battery-storage optimization via the cross-entropy method.

Problem **P1** of the paper is non-convex in the battery trajectory: the
selling branch of the cost (Eqn. 2) is a concave quadratic, so the
per-customer cost as a function of ``b`` is piecewise quadratic with both
convex and concave pieces.  The paper's remedy is the cross-entropy
method; this module wires the generic optimizer to the battery problem:

- decision vector: ``(b^2, ..., b^{H+1})`` with ``b^1`` pinned to the
  initial charge;
- box constraints: ``0 <= b^h <= B_n``;
- rate constraints: handled by projecting samples onto the reachable set
  (:func:`repro.netmetering.battery.clamp_trajectory`);
- objective: the customer's total cost given fixed appliance loads and
  the rest of the community's trading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import BatteryConfig
from repro.kernels import KernelBackend, get_backend
from repro.netmetering.battery import clamp_trajectory, clamp_trajectory_batch
from repro.netmetering.cost import NetMeteringCostModel
from repro.optimization.cross_entropy import CrossEntropyOptimizer, OptimizationResult
from repro.tariffs.model import TariffCostModel


@dataclass(frozen=True)
class BatteryProblem:
    """A fixed-load battery scheduling instance for one customer.

    ``multiplicity > 1`` models an archetype instance whose identical
    siblings move in lockstep: ``others_trading`` must then exclude all
    instances, and the community total is ``others + multiplicity * y``
    while the customer pays for its own quantity only.
    """

    load: tuple[float, ...]
    pv: tuple[float, ...]
    others_trading: tuple[float, ...]
    spec: BatteryConfig
    cost_model: NetMeteringCostModel | TariffCostModel
    slot_hours: float = 1.0
    multiplicity: int = 1

    def __post_init__(self) -> None:
        load = tuple(float(v) for v in self.load)
        pv = tuple(float(v) for v in self.pv)
        others = tuple(float(v) for v in self.others_trading)
        object.__setattr__(self, "load", load)
        object.__setattr__(self, "pv", pv)
        object.__setattr__(self, "others_trading", others)
        h = len(load)
        if h == 0:
            raise ValueError("load must be non-empty")
        if len(pv) != h or len(others) != h:
            raise ValueError(
                f"load/pv/others_trading lengths differ: {h}, {len(pv)}, {len(others)}"
            )
        if self.cost_model.horizon != h:
            raise ValueError(
                f"cost model horizon {self.cost_model.horizon} != load length {h}"
            )
        if self.slot_hours <= 0:
            raise ValueError(f"slot_hours must be > 0, got {self.slot_hours}")
        if self.multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {self.multiplicity}")

    @property
    def horizon(self) -> int:
        return len(self.load)

    def full_trajectory(self, decision: ArrayLike) -> NDArray[np.float64]:
        """Prepend the pinned initial charge to a decision vector."""
        d = np.asarray(decision, dtype=float)
        if d.shape != (self.horizon,):
            raise ValueError(f"decision must have shape ({self.horizon},), got {d.shape}")
        return np.concatenate(([self.spec.initial_kwh], d))

    def project(self, decision: NDArray[np.float64]) -> NDArray[np.float64]:
        """Repair a raw CE sample onto the feasible trajectory set."""
        full = clamp_trajectory(
            self.full_trajectory(decision), self.spec, slot_hours=self.slot_hours
        )
        return full[1:]

    def project_batch(self, decisions: NDArray[np.float64]) -> NDArray[np.float64]:
        """Repair a whole ``(K, H)`` CE population in one vectorized pass.

        Row-for-row identical to :meth:`project`; this is the
        ``batch_projection`` hook that removes the per-sample Python loop
        from the CE battery step.
        """
        d = np.asarray(decisions, dtype=float)
        if d.ndim != 2 or d.shape[1] != self.horizon:
            raise ValueError(
                f"decisions must have shape (K, {self.horizon}), got {d.shape}"
            )
        b0 = np.full((d.shape[0], 1), self.spec.initial_kwh)
        full = clamp_trajectory_batch(
            np.hstack([b0, d]), self.spec, slot_hours=self.slot_hours
        )
        return full[:, 1:]

    def trading(self, decision: ArrayLike) -> NDArray[np.float64]:
        """Trading amounts implied by a (feasible) decision vector."""
        b = self.full_trajectory(decision)
        load = np.asarray(self.load, dtype=float)
        pv = np.asarray(self.pv, dtype=float)
        return load + np.diff(b) - pv

    def cost(self, decision: ArrayLike) -> float:
        """Customer cost for a (feasible) decision vector."""
        y = self.trading(decision)
        per_slot = self.cost_model.customer_cost_per_slot(
            y, np.asarray(self.others_trading), multiplicity=self.multiplicity
        )
        return float(per_slot.sum())

    def cost_batch(self, decisions: NDArray[np.float64]) -> NDArray[np.float64]:
        """Vectorized cost over a ``(K, H)`` population of decision vectors."""
        if decisions.ndim != 2 or decisions.shape[1] != self.horizon:
            raise ValueError(
                f"decisions must have shape (K, {self.horizon}), got {decisions.shape}"
            )
        if not self._flat_net_metering():
            return self._tariff_model().battery_costs(
                decisions,
                initial_level=self.spec.initial_kwh,
                load=np.asarray(self.load, dtype=float),
                pv=np.asarray(self.pv, dtype=float),
                others_trading=np.asarray(self.others_trading, dtype=float),
                multiplicity=self.multiplicity,
            )
        b0 = np.full((decisions.shape[0], 1), self.spec.initial_kwh)
        full = np.hstack([b0, decisions])
        load = np.asarray(self.load, dtype=float)
        pv = np.asarray(self.pv, dtype=float)
        y = load[None, :] + np.diff(full, axis=1) - pv[None, :]
        p = self.cost_model.price_array[None, :]
        others = np.asarray(self.others_trading, dtype=float)[None, :]
        total = np.maximum(others + self.multiplicity * y, 0.0)
        cost = np.where(
            y >= 0,
            p * total * y,
            (p / self.cost_model.sellback_divisor) * total * y,
        )
        return cost.sum(axis=1)

    def _flat_net_metering(self) -> bool:
        """Whether the fast legacy/kernel formula prices this problem.

        Only the default-sign flat model qualifies; paper-literal or
        generalized-tariff models route through
        :meth:`TariffCostModel.battery_costs` (pure numpy, identical on
        every backend).
        """
        return (
            isinstance(self.cost_model, NetMeteringCostModel)
            and not self.cost_model.paper_literal
        )

    def _tariff_model(self) -> TariffCostModel:
        if isinstance(self.cost_model, TariffCostModel):
            return self.cost_model
        return TariffCostModel.from_net_metering(self.cost_model)


class BatteryOptimizer:
    """Cross-entropy search over battery trajectories for one customer.

    ``backend`` selects the kernel implementation running the projection
    and cost evaluations (see :mod:`repro.kernels`); all backends are
    bitwise-identical, so the choice only affects speed.
    """

    def __init__(
        self,
        *,
        n_samples: int = 48,
        n_elites: int = 8,
        n_iterations: int = 12,
        smoothing: float = 0.7,
        backend: KernelBackend | str | None = None,
    ) -> None:
        self.n_samples = n_samples
        self.n_elites = n_elites
        self.n_iterations = n_iterations
        self.smoothing = smoothing
        self.backend = get_backend(backend)

    def _hooks(
        self, problem: BatteryProblem
    ) -> tuple[
        Callable[[NDArray[np.float64]], NDArray[np.float64]],
        Callable[[NDArray[np.float64]], NDArray[np.float64]],
    ]:
        """Backend-routed (batch projection, batch objective) closures.

        Row-for-row these match :meth:`BatteryProblem.project_batch` and
        :meth:`BatteryProblem.cost_batch`; the kernel backend supplies
        the (possibly fused) implementation.
        """
        spec = problem.spec
        backend = self.backend
        load = np.asarray(problem.load, dtype=float)
        pv = np.asarray(problem.pv, dtype=float)
        others = np.asarray(problem.others_trading, dtype=float)

        def project(decisions: NDArray[np.float64]) -> NDArray[np.float64]:
            return backend.clamp_decisions(
                decisions,
                initial=spec.initial_kwh,
                capacity=spec.capacity_kwh,
                max_charge=spec.max_charge_kw * problem.slot_hours,
                max_discharge=spec.max_discharge_kw * problem.slot_hours,
            )

        if not problem._flat_net_metering():
            # Generalized tariffs price through one pure-numpy path, so
            # every kernel backend sees identical numbers by construction.
            tariff_model = problem._tariff_model()

            def tariff_cost(
                decisions: NDArray[np.float64],
            ) -> NDArray[np.float64]:
                return tariff_model.battery_costs(
                    decisions,
                    initial_level=spec.initial_kwh,
                    load=load,
                    pv=pv,
                    others_trading=others,
                    multiplicity=problem.multiplicity,
                )

            return project, tariff_cost

        prices = problem.cost_model.price_array

        def cost(decisions: NDArray[np.float64]) -> NDArray[np.float64]:
            return backend.battery_costs(
                decisions,
                initial=spec.initial_kwh,
                load=load,
                pv=pv,
                others=others,
                prices=prices,
                sellback_divisor=problem.cost_model.sellback_divisor,
                multiplicity=problem.multiplicity,
            )

        return project, cost

    def optimize(
        self,
        problem: BatteryProblem,
        *,
        x0: ArrayLike | None = None,
        rng: np.random.Generator | None = None,
        std_scale: float = 1.0,
    ) -> OptimizationResult:
        """Return the best feasible battery decision found by CE.

        The result's ``x`` is the decision vector ``(b^2, ..., b^{H+1})``;
        prepend the initial charge with
        :meth:`BatteryProblem.full_trajectory` to get the full trajectory.
        Degenerate problems (zero-capacity battery) short-circuit to the
        only feasible trajectory.
        """
        h = problem.horizon
        if problem.spec.capacity_kwh == 0.0:  # repro: noqa[FLT001] exact: no-battery spec
            x = np.zeros(h)
            return OptimizationResult(
                x=x,
                fun=problem.cost(x),
                n_evaluations=1,
                n_iterations=0,
                converged=True,
            )
        project, cost = self._hooks(problem)
        optimizer = CrossEntropyOptimizer(
            lower=np.zeros(h),
            upper=np.full(h, problem.spec.capacity_kwh),
            n_samples=self.n_samples,
            n_elites=self.n_elites,
            n_iterations=self.n_iterations,
            smoothing=self.smoothing,
            projection=problem.project,
            batch_projection=project,
        )
        # The optimizer projects the warm start through its own hook, so
        # projecting here would repair the same point twice.  (For a
        # feasible x0 — every in-pipeline caller — the Gaussian mean is
        # unchanged by this; an infeasible x0 now centers sampling on its
        # box clip rather than its projection.)
        start = (
            np.asarray(x0, dtype=float)
            if x0 is not None
            else np.full(h, problem.spec.initial_kwh)
        )
        result = optimizer.minimize(
            cost, x0=start, rng=rng, batch=True, std_scale=std_scale
        )
        # Every candidate the optimizer scored was already projected, so
        # result.x is feasible and result.fun is its exact cost — no
        # re-projection or re-evaluation needed.
        return result
