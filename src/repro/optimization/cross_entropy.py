"""Cross-entropy (CE) stochastic optimization (Section 3.2 of the paper).

The CE method maintains a parametric sampling density ``rho(b, p)`` —
here an axis-aligned Gaussian — draws a population, scores it, and refits
the density to the elite fraction (the importance-sampling update that
minimizes the Kullback-Leibler distance to the theoretically optimal
density).  Smoothing interpolates between the old and refitted parameters
to prevent premature collapse.

The paper applies CE to the battery-storage trajectory, whose cost is
piecewise quadratic and non-convex (the selling branch is concave).  The
optimizer here is generic: it minimizes any callable over a box, with an
optional projection hook for problem-specific feasibility repair (the
battery version projects onto the rate-limited reachable set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.obs.trace import TRACER
from repro.perf.counters import PERF

Objective = Callable[[NDArray[np.float64]], float]
BatchObjective = Callable[[NDArray[np.float64]], NDArray[np.float64]]
Projection = Callable[[NDArray[np.float64]], NDArray[np.float64]]
BatchProjection = Callable[[NDArray[np.float64]], NDArray[np.float64]]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a stochastic optimization run."""

    x: NDArray[np.float64]
    fun: float
    n_evaluations: int
    n_iterations: int
    converged: bool
    history: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not np.isfinite(self.fun):
            raise ValueError(f"optimal value must be finite, got {self.fun}")


class CrossEntropyOptimizer:
    """Gaussian cross-entropy minimizer over a box.

    Parameters
    ----------
    lower, upper:
        Box bounds, shape ``(d,)`` each, with ``lower <= upper``.
    n_samples:
        Population size ``K`` per iteration.
    n_elites:
        Number of elite samples refitting the density (``1 <= n_elites <=
        n_samples``).
    n_iterations:
        Maximum CE iterations.
    smoothing:
        Parameter-smoothing factor ``alpha`` in ``(0, 1]``; the new density
        parameters are ``alpha * fitted + (1 - alpha) * previous``.
    std_floor:
        Convergence threshold: iteration stops early once every coordinate
        standard deviation falls below this value.
    projection:
        Optional feasibility repair applied to each raw sample before
        evaluation (after box clipping).
    batch_projection:
        Optional vectorized repair mapping the whole ``(K, d)`` sample
        array at once; must agree row-for-row with ``projection``.  When
        provided it replaces the per-sample Python loop — the dominant
        cost of projection-heavy problems such as the battery step.
    """

    def __init__(
        self,
        lower: ArrayLike,
        upper: ArrayLike,
        *,
        n_samples: int = 64,
        n_elites: int = 10,
        n_iterations: int = 20,
        smoothing: float = 0.7,
        std_floor: float = 1e-3,
        projection: Projection | None = None,
        batch_projection: BatchProjection | None = None,
    ) -> None:
        self.lower = np.atleast_1d(np.asarray(lower, dtype=float))
        self.upper = np.atleast_1d(np.asarray(upper, dtype=float))
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValueError(
                f"bounds must be 1-D and matching: {self.lower.shape} vs {self.upper.shape}"
            )
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        if not 1 <= n_elites <= n_samples:
            raise ValueError(f"need 1 <= n_elites <= n_samples, got {n_elites}")
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        if not 0 < smoothing <= 1:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if std_floor <= 0:
            raise ValueError(f"std_floor must be > 0, got {std_floor}")
        self.n_samples = n_samples
        self.n_elites = n_elites
        self.n_iterations = n_iterations
        self.smoothing = smoothing
        self.std_floor = std_floor
        self.projection = projection
        self.batch_projection = batch_projection

    @property
    def dimension(self) -> int:
        return self.lower.size

    def minimize(
        self,
        objective: Objective | BatchObjective,
        *,
        x0: ArrayLike | None = None,
        rng: np.random.Generator | None = None,
        batch: bool = False,
        std_scale: float = 1.0,
    ) -> OptimizationResult:
        """Minimize ``objective`` over the box.

        Parameters
        ----------
        objective:
            Scalar objective ``f(x)``, or a batch objective mapping an
            ``(K, d)`` sample array to a ``(K,)`` score array when
            ``batch=True`` (much faster for vectorizable costs).
        x0:
            Initial mean; defaults to the box center.
        rng:
            Source of randomness; a fresh default generator if omitted.
        batch:
            Whether ``objective`` accepts the whole population at once.
        std_scale:
            Scale on the initial sampling standard deviation (floored at
            ``std_floor``).  Warm-started solves pass a value below 1 to
            seed the CE density tightly around a near-equilibrium ``x0``,
            which makes the ``std_floor`` early break fire several
            iterations sooner.  The default 1.0 is an exact no-op.
        """
        if std_scale <= 0:
            raise ValueError(f"std_scale must be > 0, got {std_scale}")
        rng = rng if rng is not None else np.random.default_rng(0)
        span = self.upper - self.lower
        if x0 is not None:
            x0_arr = np.atleast_1d(np.asarray(x0, dtype=float))
            if x0_arr.shape != (self.dimension,):
                raise ValueError(
                    f"x0 must have shape ({self.dimension},), got {x0_arr.shape}"
                )
            mean = np.clip(x0_arr, self.lower, self.upper)
        else:
            mean = (self.lower + self.upper) / 2.0
        std = np.maximum(span / 4.0 * std_scale, self.std_floor)

        # Score the starting point so a short run can never do worse than
        # its warm start.
        if self.batch_projection is not None:
            start = self.batch_projection(mean[None, :].copy())[0]
        elif self.projection is not None:
            start = self.projection(mean.copy())
        else:
            start = mean
        if batch:
            start_score = float(np.asarray(objective(start[None, :]), dtype=float)[0])
        else:
            start_score = float(objective(start))
        best_x = start.copy()
        best_f = start_score if np.isfinite(start_score) else np.inf
        history: list[float] = []
        n_evaluations = 0
        converged = False

        solve_span = TRACER.begin(
            "ce.minimize",
            category="optimization",
            parent_id=TRACER.current_span_id,
            dimension=self.dimension,
            n_samples=self.n_samples,
        )
        for iteration in range(self.n_iterations):
            samples = rng.normal(mean, std, size=(self.n_samples, self.dimension))
            samples = np.clip(samples, self.lower, self.upper)
            if self.batch_projection is not None:
                samples = self.batch_projection(samples)
            elif self.projection is not None:
                samples = np.stack([self.projection(s) for s in samples])
            if batch:
                scores = np.asarray(objective(samples), dtype=float)
                if scores.shape != (self.n_samples,):
                    raise ValueError(
                        f"batch objective must return shape ({self.n_samples},), "
                        f"got {scores.shape}"
                    )
            else:
                scores = np.array([objective(s) for s in samples], dtype=float)
            n_evaluations += self.n_samples
            PERF.add("ce.evaluations", self.n_samples)
            scores = np.where(np.isfinite(scores), scores, np.inf)

            elite_idx = np.argsort(scores)[: self.n_elites]
            elites = samples[elite_idx]
            if scores[elite_idx[0]] < best_f:
                best_f = float(scores[elite_idx[0]])
                best_x = samples[elite_idx[0]].copy()
            history.append(best_f)

            new_mean = elites.mean(axis=0)
            new_std = elites.std(axis=0)
            mean = self.smoothing * new_mean + (1 - self.smoothing) * mean
            std = self.smoothing * new_std + (1 - self.smoothing) * std
            if np.all(std < self.std_floor):
                converged = True
                break

        TRACER.end(solve_span)
        PERF.observe("ce.iterations", len(history))
        if not np.isfinite(best_f):
            raise RuntimeError(
                "cross-entropy optimization never found a finite objective value"
            )
        return OptimizationResult(
            x=best_x,
            fun=best_f,
            n_evaluations=n_evaluations,
            n_iterations=len(history),
            converged=converged,
            history=tuple(history),
        )


def minimize_ce(
    objective: Objective,
    lower: Sequence[float],
    upper: Sequence[float],
    *,
    rng: np.random.Generator | None = None,
    **kwargs: object,
) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`CrossEntropyOptimizer`."""
    optimizer = CrossEntropyOptimizer(lower, upper, **kwargs)  # type: ignore[arg-type]
    return optimizer.minimize(objective, rng=rng)
