"""Event sources: scenario replay and a deterministic synthetic generator.

Two sources feed the online pipeline:

- :class:`ReplaySource` replays the exact world of the batch scenario
  (:func:`repro.simulation.scenario.run_long_term_scenario`) as an
  ordered event stream.  :func:`build_replay_world` reproduces the batch
  path's construction *draw for draw* — community, history, day
  environments, calibration, policy — and shares one RNG between the
  hacking process (event generation) and the detection pipeline
  (measurement noise), so pumping the stream yields bitwise-identical
  detection decisions to the batch run.
- :class:`SyntheticSource` is a fully deterministic generator (no RNG at
  all): smooth double-peak guideline prices with a weekly modulation and
  a scripted compromise window.  It exists so the service layer and the
  examples can exercise the pipeline without building the heavy world.

Both satisfy the :class:`EventSource` protocol the engine pumps:
``next_event`` advances the stream one event, ``apply_repair`` is the
feedback edge for the monitor's repair dispatches, and
``state_dict``/``load_state`` round-trip the source's cursor for
checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Protocol, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.attacks.hacking import MeterHackingProcess
from repro.attacks.pricing import PeakIncreaseAttack, PricingAttack
from repro.attacks.registry import attack_from_dict, attack_kind, attack_to_dict
from repro.core.config import CommunityConfig
from repro.data.community import build_community
from repro.data.pricing import (
    GuidelinePriceModel,
    PriceHistory,
    baseline_demand_profile,
    generate_history,
)
from repro.data.weather import DEFAULT_WEATHER
from repro.detection.long_term import LongTermDetector
from repro.detection.pomdp import build_detection_pomdp
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetector,
)
from repro.detection.solvers import PbviPolicy, QmdpPolicy
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.simulation.cache import GameSolutionCache, global_game_cache
from repro.simulation.calibration import measure_single_event_rates
from repro.simulation.scenario import DetectorKind
from repro.stream.events import (
    AttackOccurrence,
    DayBoundary,
    MeterReading,
    PriceUpdate,
    StreamEvent,
)


class EventSource(Protocol):
    """What the stream engine pumps: an ordered, resumable event feed.

    ``next_event`` may return ``None`` for a *non*-exhausted source (a
    stalled feed — see :class:`repro.faults.injector.FaultInjector`);
    the engine distinguishes the two via ``exhausted`` and retries
    stalls under its :class:`~repro.core.config.RetryPolicy`.
    """

    def next_event(self) -> StreamEvent | None: ...

    def apply_repair(self) -> int: ...

    def state_dict(self) -> dict[str, Any]: ...

    def load_state(self, state: dict[str, Any]) -> None: ...

    @property
    def exhausted(self) -> bool: ...


@dataclass
class ReplayWorld:
    """Everything a scenario-equivalent stream needs, built in batch order.

    The ``rng`` is the *shared* generator: the replay source draws
    compromise dynamics from it and the pipeline draws measurement noise
    from it, interleaved exactly as the batch per-slot loop does.
    """

    config: CommunityConfig
    detector: DetectorKind
    n_slots: int
    day_clean_prices: list[NDArray[np.float64]]
    day_predicted: list[NDArray[np.float64]]
    day_detectors: list[SingleEventDetector]
    truth_simulator: CommunityResponseSimulator
    predicted_simulator: CommunityResponseSimulator
    hacking: MeterHackingProcess
    long_term: LongTermDetector | None
    tp_rate: float
    fp_rate: float
    rng: np.random.Generator

    @property
    def slots_per_day(self) -> int:
        return self.config.time.slots_per_day

    @property
    def n_days(self) -> int:
        return self.n_slots // self.slots_per_day

    @property
    def n_meters(self) -> int:
        return self.config.detection.n_monitored_meters


def build_replay_world(
    config: CommunityConfig,
    *,
    detector: DetectorKind,
    n_slots: int = 48,
    history: PriceHistory | None = None,
    policy: str = "qmdp",
    calibration_trials: int = 30,
    seed: int | None = None,
    cache: GameSolutionCache | None = None,
    attack_family: str = "peak_increase",
) -> ReplayWorld:
    """Construct the streaming world exactly as the batch scenario does.

    Every RNG draw happens in the same order as
    :func:`~repro.simulation.scenario.run_long_term_scenario` —
    community build, history generation, per-day environment, detector
    calibration, policy seeding — so that the generator handed to the
    per-event loop is in the identical state the batch per-slot loop
    starts from.  This is the invariant the stream-vs-batch equivalence
    test asserts.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    spd = config.time.slots_per_day
    if n_slots % spd != 0:
        raise ValueError(f"n_slots {n_slots} must be a multiple of {spd}")
    n_days = n_slots // spd
    rng = np.random.default_rng(config.seed if seed is None else seed)
    cache = cache if cache is not None else global_game_cache()

    day_config = config.with_updates(time=replace(config.time, n_days=1))
    community = build_community(day_config, rng=rng)
    price_model = GuidelinePriceModel(
        config=config.pricing, n_customers=config.n_customers
    )
    if history is None:
        history = generate_history(
            rng,
            n_customers=config.n_customers,
            pricing=config.pricing,
            solar=config.solar,
            slots_per_day=spd,
            mean_pv_per_customer_kw=config.solar.peak_kw * config.pv_adoption,
        )

    aware = detector != "unaware"
    if aware:
        predictor: AwarePricePredictor | UnawarePricePredictor = AwarePricePredictor()
    else:
        predictor = UnawarePricePredictor()
    predictor.fit(history)

    base_demand = baseline_demand_profile(day_config.time) * config.n_customers
    day_clean_prices: list[NDArray[np.float64]] = []
    day_predicted: list[NDArray[np.float64]] = []
    for _ in range(n_days):
        weather = DEFAULT_WEATHER.daily_factor(rng)
        pv = community.total_pv * weather
        demand = base_demand * float(np.clip(rng.normal(1.0, 0.03), 0.8, 1.2))
        clean = price_model.price(demand, pv, rng=rng)
        day_clean_prices.append(clean)
        if aware:
            predicted = predictor.predict_day(
                demand_forecast=demand, renewable_forecast=pv
            )
        else:
            predicted = predictor.predict_day()
        day_predicted.append(predicted)
        history = PriceHistory(
            prices=np.concatenate([history.prices, clean]),
            demand=np.concatenate([history.demand, demand]),
            renewable=np.concatenate([history.renewable, pv]),
            nm_active=np.concatenate([history.nm_active, np.ones(spd, dtype=bool)]),
            slots_per_day=spd,
        )

    truth_simulator = CommunityResponseSimulator(
        community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
        cache=cache,
        tariff=config.tariff,
    )
    if aware:
        predicted_simulator = truth_simulator
    else:
        predicted_simulator = CommunityResponseSimulator(
            community.without_net_metering(),
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
            cache=cache,
        )
    n_meters = config.detection.n_monitored_meters
    hacking = MeterHackingProcess(
        n_meters,
        config.detection.hack_probability,
        slots_per_day=spd,
        attack_family=attack_family,
        rng=rng,
    )
    day_detectors = [
        SingleEventDetector(
            truth_simulator,
            day_predicted[d],
            predicted_simulator=predicted_simulator,
            threshold=config.detection.par_threshold,
            margin_noise_std=config.detection.margin_noise_std,
        )
        for d in range(n_days)
    ]

    long_term: LongTermDetector | None = None
    tp_rate = fp_rate = 0.0
    if detector != "none":
        rates = measure_single_event_rates(
            day_detectors[0],
            day_clean_prices[0],
            hacking,
            n_trials=calibration_trials,
            rng=rng,
        ).clipped()
        tp_rate, fp_rate = rates.tp_rate, rates.fp_rate
        model = build_detection_pomdp(
            n_meters,
            hack_probability=config.detection.hack_probability,
            tp_rate=tp_rate,
            fp_rate=fp_rate,
            damage_per_meter=config.detection.damage_per_meter,
            repair_fixed_cost=config.detection.repair_fixed_cost,
            repair_cost_per_meter=config.detection.repair_cost_per_meter,
            discount=config.detection.discount,
        )
        chosen_policy = (
            PbviPolicy(model, rng=np.random.default_rng(int(rng.integers(2**31 - 1))))
            if policy == "pbvi"
            else QmdpPolicy(model)
        )
        long_term = LongTermDetector(model, policy=chosen_policy)

    return ReplayWorld(
        config=config,
        detector=detector,
        n_slots=n_slots,
        day_clean_prices=day_clean_prices,
        day_predicted=day_predicted,
        day_detectors=day_detectors,
        truth_simulator=truth_simulator,
        predicted_simulator=predicted_simulator,
        hacking=hacking,
        long_term=long_term,
        tp_rate=tp_rate,
        fp_rate=fp_rate,
        rng=rng,
    )


class ReplaySource:
    """Ordered event feed over a :class:`ReplayWorld`.

    Per day the source emits ``PriceUpdate``, then one ``MeterReading``
    per slot, then ``DayBoundary``.  Side effects mirror the batch
    per-slot loop exactly: a day-boundary ``PriceUpdate`` (day > 0)
    rolls a fresh attack campaign, and every reading advances the
    ground-truth hacking process by one slot *before* building the
    per-meter received prices.
    """

    def __init__(self, world: ReplayWorld) -> None:
        self.world = world
        self._next_index = 0

    @property
    def events_per_day(self) -> int:
        return self.world.slots_per_day + 2

    @property
    def n_events(self) -> int:
        """Total stream length in events."""
        return self.world.n_days * self.events_per_day

    @property
    def exhausted(self) -> bool:
        return self._next_index >= self.n_events

    def next_event(self) -> StreamEvent | None:
        world = self.world
        spd = world.slots_per_day
        day, pos = divmod(self._next_index, self.events_per_day)
        if day >= world.n_days:
            return None
        self._next_index += 1
        if pos == 0:
            if day > 0:
                # New day, new guideline-price vector: the attacker
                # rolls a fresh manipulation of it.
                world.hacking.new_campaign()
            return PriceUpdate(
                day=day,
                clean_prices=world.day_clean_prices[day],
                predicted_prices=world.day_predicted[day],
            )
        if pos <= spd:
            slot = day * spd + (pos - 1)
            world.hacking.step()
            truth = world.hacking.hacked_mask
            clean = world.day_clean_prices[day]
            # ``received`` is the reported reading (what detection sees);
            # ``actual`` the responded-to prices.  Honest families keep
            # them bitwise-identical and the event omits ``actual``.
            received = np.tile(clean, (world.n_meters, 1))
            actual = np.tile(clean, (world.n_meters, 1))
            for meter in world.hacking.hacked_meters:
                attacked = meter.attack.apply(clean)
                actual[meter.meter_id] = attacked
                received[meter.meter_id] = meter.attack.report(clean, attacked)
            return MeterReading(
                slot=slot,
                received=received,
                truth=truth,
                actual=None if np.array_equal(actual, received) else actual,
            )
        return DayBoundary(day=day)

    def apply_repair(self) -> int:
        """Repair dispatch feedback: fix the whole fleet."""
        return self.world.hacking.repair_all()

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": "replay",
            "next_index": self._next_index,
            "hacking": self.world.hacking.state_dict(),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "replay":
            raise ValueError(f"not a replay-source state: {state.get('kind')!r}")
        self._next_index = int(state["next_index"])
        self.world.hacking.load_state(state["hacking"])


def synthetic_price_profile(
    slots_per_day: int, *, base_price: float = 0.03, amplitude: float = 0.35
) -> NDArray[np.float64]:
    """Smooth double-peak (morning/evening) daily guideline-price shape."""
    if slots_per_day < 1:
        raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
    hours = (np.arange(slots_per_day) + 0.5) * 24.0 / slots_per_day
    shape = (
        1.0
        + amplitude * np.exp(-((hours - 8.0) ** 2) / 6.0)
        + 1.6 * amplitude * np.exp(-((hours - 19.0) ** 2) / 8.0)
    )
    return base_price * shape


@dataclass(frozen=True)
class ScriptedOccurrence:
    """One scripted attack occurrence for :class:`SyntheticSource`.

    During ``days`` (start-inclusive, end-exclusive) the ``attack`` is
    installed on ``meter_ids``; the source announces it going live with
    an :class:`~repro.stream.events.AttackOccurrence` event right after
    each affected day's price update.  A repair dispatch clears it for
    the rest of the day; it re-arms at the next affected day.
    """

    days: tuple[int, int]
    meter_ids: tuple[int, ...]
    attack: PricingAttack

    def __post_init__(self) -> None:
        lo, hi = self.days
        if lo < 0 or hi < lo:
            raise ValueError(f"days must satisfy 0 <= lo <= hi, got {self.days}")
        object.__setattr__(self, "days", (int(lo), int(hi)))
        meter_ids = tuple(sorted(set(int(m) for m in self.meter_ids)))
        if not meter_ids:
            raise ValueError("meter_ids must be non-empty")
        if meter_ids[0] < 0:
            raise ValueError(f"meter_ids must be >= 0, got {self.meter_ids}")
        object.__setattr__(self, "meter_ids", meter_ids)

    @property
    def kind(self) -> str:
        return attack_kind(self.attack)

    def active_on(self, day: int) -> bool:
        lo, hi = self.days
        return lo <= day < hi

    def to_dict(self) -> dict[str, Any]:
        return {
            "days": list(self.days),
            "meter_ids": list(self.meter_ids),
            "attack": attack_to_dict(self.attack),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScriptedOccurrence":
        days = payload["days"]
        return cls(
            days=(int(days[0]), int(days[1])),
            meter_ids=tuple(int(m) for m in payload["meter_ids"]),
            attack=attack_from_dict(payload["attack"]),
        )


class SyntheticSource:
    """Deterministic scripted event generator (no RNG anywhere).

    Guideline prices follow a fixed double-peak profile with a weekly
    sinusoidal modulation; the forecast is the unmodulated profile, so
    benign days produce small PAR margins.  During the scripted attack
    window (``attack_days``, start-inclusive / end-exclusive) the meters
    in ``hacked_meters`` receive the ``attack``-manipulated price from
    the start of each day until a repair dispatch clears them; they are
    re-compromised at the next attack day's price update.

    Parameters
    ----------
    n_meters:
        Monitored fleet size.
    n_days:
        Stream length in days.
    slots_per_day:
        Slots per day (must match the pipeline's community horizon).
    attack_days:
        ``(first_day, end_day)`` of the compromise window.
    hacked_meters:
        Meter ids compromised during the window.
    attack:
        The manipulation installed on compromised meters.
    occurrences:
        Additional scripted :class:`ScriptedOccurrence` entries — each
        is announced on the stream with an
        :class:`~repro.stream.events.AttackOccurrence` event when it
        goes live and manipulates its meters' readings while active.
    base_price, modulation:
        Price scale and weekly modulation depth.
    """

    def __init__(
        self,
        *,
        n_meters: int,
        n_days: int,
        slots_per_day: int = 24,
        attack_days: tuple[int, int] = (0, 0),
        hacked_meters: Sequence[int] = (),
        attack: PeakIncreaseAttack | None = None,
        occurrences: Sequence[ScriptedOccurrence] = (),
        base_price: float = 0.03,
        modulation: float = 0.05,
    ) -> None:
        if n_meters < 1:
            raise ValueError(f"n_meters must be >= 1, got {n_meters}")
        if n_days < 1:
            raise ValueError(f"n_days must be >= 1, got {n_days}")
        lo, hi = attack_days
        if lo < 0 or hi < lo:
            raise ValueError(f"attack_days must satisfy 0 <= lo <= hi, got {attack_days}")
        for meter_id in hacked_meters:
            if not 0 <= meter_id < n_meters:
                raise ValueError(
                    f"hacked meter id {meter_id} out of range [0, {n_meters})"
                )
        for occurrence in occurrences:
            if occurrence.meter_ids[-1] >= n_meters:
                raise ValueError(
                    f"occurrence meter id {occurrence.meter_ids[-1]} out of "
                    f"range [0, {n_meters})"
                )
        self.n_meters = n_meters
        self.n_days = n_days
        self.slots_per_day = slots_per_day
        self.attack_days = (int(lo), int(hi))
        self.hacked_meters = tuple(sorted(set(int(m) for m in hacked_meters)))
        self.attack = (
            attack
            if attack is not None
            else PeakIncreaseAttack(
                start_slot=int(slots_per_day * 0.7),
                end_slot=min(int(slots_per_day * 0.7) + 1, slots_per_day - 1),
                strength=0.6,
            )
        )
        self.base_price = base_price
        self.modulation = modulation
        self.occurrences = tuple(occurrences)
        self.profile = synthetic_price_profile(slots_per_day, base_price=base_price)
        self._next_index = 0
        self._active: set[int] = set()
        self._active_occurrences: set[int] = set()
        self._due: list[StreamEvent] = []

    # ------------------------------------------------------------------
    @property
    def events_per_day(self) -> int:
        """Grid events per day (occurrence announcements ride on top)."""
        return self.slots_per_day + 2

    @property
    def n_events(self) -> int:
        return self.n_days * self.events_per_day

    @property
    def exhausted(self) -> bool:
        return not self._due and self._next_index >= self.n_events

    def clean_prices(self, day: int) -> NDArray[np.float64]:
        """The posted guideline price of one day (deterministic)."""
        return self.profile * (1.0 + self.modulation * np.sin(2.0 * np.pi * day / 7.0))

    def predicted_prices(self, day: int) -> NDArray[np.float64]:
        """The forecast: the unmodulated profile (small benign margin)."""
        return self.profile.copy()

    def _in_attack_window(self, day: int) -> bool:
        lo, hi = self.attack_days
        return lo <= day < hi

    def next_event(self) -> StreamEvent | None:
        if self._due:
            return self._due.pop(0)
        day, pos = divmod(self._next_index, self.events_per_day)
        if day >= self.n_days:
            return None
        self._next_index += 1
        if pos == 0:
            if self._in_attack_window(day):
                self._active = set(self.hacked_meters)
            else:
                self._active = set()
            previously_active = self._active_occurrences
            self._active_occurrences = {
                index
                for index, occurrence in enumerate(self.occurrences)
                if occurrence.active_on(day)
            }
            # Announce occurrences going live this day (newly active, or
            # re-arming after a repair) right after the price update.
            for index in sorted(self._active_occurrences - previously_active):
                occurrence = self.occurrences[index]
                self._due.append(
                    AttackOccurrence(
                        slot=day * self.slots_per_day,
                        kind=occurrence.kind,
                        meter_ids=occurrence.meter_ids,
                        attack=attack_to_dict(occurrence.attack),
                    )
                )
            return PriceUpdate(
                day=day,
                clean_prices=self.clean_prices(day),
                predicted_prices=self.predicted_prices(day),
            )
        if pos <= self.slots_per_day:
            slot = day * self.slots_per_day + (pos - 1)
            clean = self.clean_prices(day)
            received = np.tile(clean, (self.n_meters, 1))
            actual = np.tile(clean, (self.n_meters, 1))
            truth = np.zeros(self.n_meters, dtype=bool)
            for meter_id in sorted(self._active):
                attacked = self.attack.apply(clean)
                actual[meter_id] = attacked
                received[meter_id] = self.attack.report(clean, attacked)
                truth[meter_id] = True
            for index in sorted(self._active_occurrences):
                occurrence = self.occurrences[index]
                attacked = occurrence.attack.apply(clean)
                reported = occurrence.attack.report(clean, attacked)
                # A zero-intensity payload perturbs nothing — physically
                # and observationally a clean meter — so it must not
                # overlay rows or flip ground-truth labels (inertness
                # pin in tests/test_attack_taxonomy.py).
                if np.array_equal(attacked, clean) and np.array_equal(
                    reported, clean
                ):
                    continue
                for meter_id in occurrence.meter_ids:
                    actual[meter_id] = attacked
                    received[meter_id] = reported
                    truth[meter_id] = True
            return MeterReading(
                slot=slot,
                received=received,
                truth=truth,
                actual=None if np.array_equal(actual, received) else actual,
            )
        return DayBoundary(day=day)

    def _occurrence_perturbs(self, occurrence: ScriptedOccurrence, day: int) -> bool:
        """Whether the occurrence actually changes the day's readings."""
        clean = self.clean_prices(day)
        attacked = occurrence.attack.apply(clean)
        reported = occurrence.attack.report(clean, attacked)
        return not (
            np.array_equal(attacked, clean) and np.array_equal(reported, clean)
        )

    def apply_repair(self) -> int:
        """Clear the compromised set until the next scripted attack day.

        Inert (zero-intensity) occurrences are cleared too but never
        counted: their meters were indistinguishable from clean ones, so
        a repair dispatch cannot have fixed anything there.
        """
        day = min(
            max(self._next_index - 1, 0) // self.events_per_day,
            self.n_days - 1,
        )
        repaired_meters = set(self._active)
        for index in self._active_occurrences:
            occurrence = self.occurrences[index]
            if self._occurrence_perturbs(occurrence, day):
                repaired_meters.update(occurrence.meter_ids)
        self._active.clear()
        self._active_occurrences.clear()
        return len(repaired_meters)

    def state_dict(self) -> dict[str, Any]:
        from repro.stream.events import event_to_dict

        return {
            "kind": "synthetic",
            "next_index": self._next_index,
            "active": sorted(self._active),
            "active_occurrences": sorted(self._active_occurrences),
            "due": [event_to_dict(event) for event in self._due],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        from repro.stream.events import event_from_dict

        if state.get("kind") != "synthetic":
            raise ValueError(f"not a synthetic-source state: {state.get('kind')!r}")
        self._next_index = int(state["next_index"])
        self._active = set(int(m) for m in state["active"])
        # Pre-taxonomy checkpoints carry neither field; both default empty.
        self._active_occurrences = set(
            int(i) for i in state.get("active_occurrences", [])
        )
        self._due = [event_from_dict(payload) for payload in state.get("due", [])]
