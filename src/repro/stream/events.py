"""Wire-format event model of the streaming detection engine.

Three event kinds cover everything the utility observes during a
monitoring run:

- :class:`PriceUpdate` — a new day begins: the posted guideline-price
  vector and the detector-side forecast for the day.
- :class:`MeterReading` — one monitoring slot: the guideline-price
  vector each monitored meter reports having received (hacked meters
  report the manipulated vector), plus an optional ground-truth
  compromise mask for scoring replayed simulations.
- :class:`DayBoundary` — the day's last slot has been processed.

Events are immutable and JSON-serializable (:func:`event_to_dict` /
:func:`event_from_dict`), so the same objects travel through the
in-process pipeline, the HTTP service's ``POST /events`` endpoint and
the checkpoint files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class PriceUpdate:
    """Start-of-day event carrying the day's price vectors.

    Attributes
    ----------
    day:
        Zero-based day index within the stream.
    clean_prices:
        The guideline-price vector the utility actually posted, shape
        ``(slots_per_day,)``.
    predicted_prices:
        The price predictor's forecast for the day (what the detector's
        ``P_p`` is computed from).
    """

    day: int
    clean_prices: NDArray[np.float64]
    predicted_prices: NDArray[np.float64]

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")
        clean = np.asarray(self.clean_prices, dtype=float)
        predicted = np.asarray(self.predicted_prices, dtype=float)
        if clean.ndim != 1 or clean.size == 0:
            raise ValueError(f"clean_prices must be 1-D non-empty, got {clean.shape}")
        if predicted.shape != clean.shape:
            raise ValueError(
                f"predicted_prices shape {predicted.shape} != clean {clean.shape}"
            )
        object.__setattr__(self, "clean_prices", clean)
        object.__setattr__(self, "predicted_prices", predicted)


@dataclass(frozen=True)
class MeterReading:
    """One monitoring slot's per-meter received guideline prices.

    Attributes
    ----------
    slot:
        Global slot index (``day * slots_per_day + slot_in_day``).
    received:
        Shape ``(n_meters, slots_per_day)``: row ``i`` is the price
        vector meter ``i`` received for the current day.
    truth:
        Optional ground-truth compromise mask over the fleet; present in
        replayed simulations (used for scoring and realized-grid
        accounting), absent for externally pushed readings.
    """

    slot: int
    received: NDArray[np.float64]
    truth: NDArray[np.bool_] | None = None

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        received = np.asarray(self.received, dtype=float)
        if received.ndim != 2 or received.size == 0:
            raise ValueError(
                f"received must be (n_meters, horizon), got {received.shape}"
            )
        object.__setattr__(self, "received", received)
        if self.truth is not None:
            truth = np.asarray(self.truth, dtype=bool)
            if truth.shape != (received.shape[0],):
                raise ValueError(
                    f"truth must have shape ({received.shape[0]},), got {truth.shape}"
                )
            object.__setattr__(self, "truth", truth)

    @property
    def n_meters(self) -> int:
        return self.received.shape[0]

    def validation_error(self, *, horizon: int | None = None) -> str | None:
        """Why this reading is unusable, or ``None`` when well-formed.

        Catches the field corruption a wire can introduce — non-finite
        or negative prices, horizon mismatch — without raising, so the
        gap-tolerant pipeline can degrade instead of crash.  Structural
        errors (shape, negative slot) are still rejected eagerly by
        ``__post_init__``.
        """
        if horizon is not None and self.received.shape[1] != horizon:
            return (
                f"received horizon {self.received.shape[1]} != "
                f"active day horizon {horizon}"
            )
        if not bool(np.isfinite(self.received).all()):
            return "received contains non-finite prices"
        if bool((self.received < 0.0).any()):
            return "received contains negative prices"
        return None


@dataclass(frozen=True)
class DayBoundary:
    """End-of-day marker."""

    day: int

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")


StreamEvent = Union[PriceUpdate, MeterReading, DayBoundary]

_EVENT_TYPES = {
    "price_update": PriceUpdate,
    "meter_reading": MeterReading,
    "day_boundary": DayBoundary,
}


def event_to_dict(event: StreamEvent) -> dict[str, Any]:
    """JSON-serializable representation of one event."""
    if isinstance(event, PriceUpdate):
        return {
            "type": "price_update",
            "day": event.day,
            "clean_prices": event.clean_prices.tolist(),
            "predicted_prices": event.predicted_prices.tolist(),
        }
    if isinstance(event, MeterReading):
        payload: dict[str, Any] = {
            "type": "meter_reading",
            "slot": event.slot,
            "received": event.received.tolist(),
        }
        if event.truth is not None:
            payload["truth"] = event.truth.astype(int).tolist()
        return payload
    if isinstance(event, DayBoundary):
        return {"type": "day_boundary", "day": event.day}
    raise TypeError(f"not a stream event: {type(event).__name__}")


def event_from_dict(payload: dict[str, Any]) -> StreamEvent:
    """Rebuild an event from its JSON representation."""
    kind = payload.get("type")
    if kind not in _EVENT_TYPES:
        raise ValueError(
            f"unknown event type {kind!r} (expected one of {sorted(_EVENT_TYPES)})"
        )
    if kind == "price_update":
        return PriceUpdate(
            day=int(payload["day"]),
            clean_prices=np.asarray(payload["clean_prices"], dtype=float),
            predicted_prices=np.asarray(payload["predicted_prices"], dtype=float),
        )
    if kind == "meter_reading":
        truth = payload.get("truth")
        return MeterReading(
            slot=int(payload["slot"]),
            received=np.asarray(payload["received"], dtype=float),
            truth=None if truth is None else np.asarray(truth, dtype=bool),
        )
    return DayBoundary(day=int(payload["day"]))
