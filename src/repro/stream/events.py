"""Wire-format event model of the streaming detection engine.

Four event kinds cover everything the utility observes during a
monitoring run:

- :class:`PriceUpdate` — a new day begins: the posted guideline-price
  vector and the detector-side forecast for the day.
- :class:`MeterReading` — one monitoring slot: the guideline-price
  vector each monitored meter reports having received (hacked meters
  report the manipulated vector), plus an optional ground-truth
  compromise mask for scoring replayed simulations.  When a telemetry
  attack decouples the reading from the price the home responded to,
  the optional ``actual`` matrix carries the responded-to prices for
  realized-grid accounting.
- :class:`AttackOccurrence` — ground-truth announcement that an attack
  of a registered kind (see :mod:`repro.attacks.registry`) went live on
  a set of meters.  Detection never consumes these — the detector must
  not peek at ground truth — but they ride the stream as first-class
  occurrences for scoring, audit and checkpoint/resume.
- :class:`DayBoundary` — the day's last slot has been processed.

Events are immutable and JSON-serializable (:func:`event_to_dict` /
:func:`event_from_dict`), so the same objects travel through the
in-process pipeline, the HTTP service's ``POST /events`` endpoint and
the checkpoint files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class PriceUpdate:
    """Start-of-day event carrying the day's price vectors.

    Attributes
    ----------
    day:
        Zero-based day index within the stream.
    clean_prices:
        The guideline-price vector the utility actually posted, shape
        ``(slots_per_day,)``.
    predicted_prices:
        The price predictor's forecast for the day (what the detector's
        ``P_p`` is computed from).
    """

    day: int
    clean_prices: NDArray[np.float64]
    predicted_prices: NDArray[np.float64]

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")
        clean = np.asarray(self.clean_prices, dtype=float)
        predicted = np.asarray(self.predicted_prices, dtype=float)
        if clean.ndim != 1 or clean.size == 0:
            raise ValueError(f"clean_prices must be 1-D non-empty, got {clean.shape}")
        if predicted.shape != clean.shape:
            raise ValueError(
                f"predicted_prices shape {predicted.shape} != clean {clean.shape}"
            )
        object.__setattr__(self, "clean_prices", clean)
        object.__setattr__(self, "predicted_prices", predicted)


@dataclass(frozen=True)
class MeterReading:
    """One monitoring slot's per-meter received guideline prices.

    Attributes
    ----------
    slot:
        Global slot index (``day * slots_per_day + slot_in_day``).
    received:
        Shape ``(n_meters, slots_per_day)``: row ``i`` is the price
        vector meter ``i`` received for the current day.
    truth:
        Optional ground-truth compromise mask over the fleet; present in
        replayed simulations (used for scoring and realized-grid
        accounting), absent for externally pushed readings.
    actual:
        Optional per-meter prices the homes *actually* responded to,
        shape ``(n_meters, slots_per_day)``.  ``None`` — the common,
        honest-reporting case — means the report is the response
        (``actual == received``); telemetry attacks set it so the
        realized grid reflects the true response while detection only
        sees the spoofed report.
    """

    slot: int
    received: NDArray[np.float64]
    truth: NDArray[np.bool_] | None = None
    actual: NDArray[np.float64] | None = None

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        received = np.asarray(self.received, dtype=float)
        if received.ndim != 2 or received.size == 0:
            raise ValueError(
                f"received must be (n_meters, horizon), got {received.shape}"
            )
        object.__setattr__(self, "received", received)
        if self.truth is not None:
            truth = np.asarray(self.truth, dtype=bool)
            if truth.shape != (received.shape[0],):
                raise ValueError(
                    f"truth must have shape ({received.shape[0]},), got {truth.shape}"
                )
            object.__setattr__(self, "truth", truth)
        if self.actual is not None:
            actual = np.asarray(self.actual, dtype=float)
            if actual.shape != received.shape:
                raise ValueError(
                    f"actual must have shape {received.shape}, got {actual.shape}"
                )
            object.__setattr__(self, "actual", actual)

    @property
    def n_meters(self) -> int:
        return self.received.shape[0]

    @property
    def responded(self) -> NDArray[np.float64]:
        """The prices the homes responded to (``actual`` or the report)."""
        return self.received if self.actual is None else self.actual

    def validation_error(self, *, horizon: int | None = None) -> str | None:
        """Why this reading is unusable, or ``None`` when well-formed.

        Catches the field corruption a wire can introduce — non-finite
        or negative prices, horizon mismatch — without raising, so the
        gap-tolerant pipeline can degrade instead of crash.  Structural
        errors (shape, negative slot) are still rejected eagerly by
        ``__post_init__``.
        """
        if horizon is not None and self.received.shape[1] != horizon:
            return (
                f"received horizon {self.received.shape[1]} != "
                f"active day horizon {horizon}"
            )
        if not bool(np.isfinite(self.received).all()):
            return "received contains non-finite prices"
        if bool((self.received < 0.0).any()):
            return "received contains negative prices"
        return None


@dataclass(frozen=True)
class AttackOccurrence:
    """Ground-truth announcement: an attack went live on some meters.

    Attributes
    ----------
    slot:
        Global slot index at which the occurrence takes effect (the
        first reading it manipulates).
    kind:
        Registered attack kind tag (``attack["kind"]`` when present);
        see :func:`repro.attacks.registry.attack_kinds`.
    meter_ids:
        Affected meters, ascending.
    attack:
        Kind-tagged attack payload
        (:func:`repro.attacks.registry.attack_to_dict` format), exact
        enough to rebuild the installed attack.
    """

    slot: int
    kind: str
    meter_ids: tuple[int, ...]
    attack: dict[str, Any]

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"slot must be >= 0, got {self.slot}")
        if not self.kind:
            raise ValueError("kind must be non-empty")
        meter_ids = tuple(int(m) for m in self.meter_ids)
        if not meter_ids:
            raise ValueError("meter_ids must be non-empty")
        if any(m < 0 for m in meter_ids):
            raise ValueError(f"meter_ids must be >= 0, got {meter_ids}")
        if tuple(sorted(set(meter_ids))) != meter_ids:
            raise ValueError(f"meter_ids must be sorted and unique, got {meter_ids}")
        object.__setattr__(self, "meter_ids", meter_ids)
        payload_kind = self.attack.get("kind")
        if payload_kind is not None and payload_kind != self.kind:
            raise ValueError(
                f"kind {self.kind!r} != attack payload kind {payload_kind!r}"
            )


@dataclass(frozen=True)
class DayBoundary:
    """End-of-day marker."""

    day: int

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError(f"day must be >= 0, got {self.day}")


StreamEvent = Union[PriceUpdate, MeterReading, AttackOccurrence, DayBoundary]

_EVENT_TYPES = {
    "price_update": PriceUpdate,
    "meter_reading": MeterReading,
    "attack_occurrence": AttackOccurrence,
    "day_boundary": DayBoundary,
}


def event_to_dict(event: StreamEvent) -> dict[str, Any]:
    """JSON-serializable representation of one event."""
    if isinstance(event, PriceUpdate):
        return {
            "type": "price_update",
            "day": event.day,
            "clean_prices": event.clean_prices.tolist(),
            "predicted_prices": event.predicted_prices.tolist(),
        }
    if isinstance(event, MeterReading):
        payload: dict[str, Any] = {
            "type": "meter_reading",
            "slot": event.slot,
            "received": event.received.tolist(),
        }
        if event.truth is not None:
            payload["truth"] = event.truth.astype(int).tolist()
        if event.actual is not None:
            payload["actual"] = event.actual.tolist()
        return payload
    if isinstance(event, AttackOccurrence):
        return {
            "type": "attack_occurrence",
            "slot": event.slot,
            "kind": event.kind,
            "meter_ids": list(event.meter_ids),
            "attack": dict(event.attack),
        }
    if isinstance(event, DayBoundary):
        return {"type": "day_boundary", "day": event.day}
    raise TypeError(f"not a stream event: {type(event).__name__}")


def event_from_dict(payload: dict[str, Any]) -> StreamEvent:
    """Rebuild an event from its JSON representation."""
    kind = payload.get("type")
    if kind not in _EVENT_TYPES:
        raise ValueError(
            f"unknown event type {kind!r} (expected one of {sorted(_EVENT_TYPES)})"
        )
    if kind == "price_update":
        return PriceUpdate(
            day=int(payload["day"]),
            clean_prices=np.asarray(payload["clean_prices"], dtype=float),
            predicted_prices=np.asarray(payload["predicted_prices"], dtype=float),
        )
    if kind == "meter_reading":
        truth = payload.get("truth")
        actual = payload.get("actual")
        return MeterReading(
            slot=int(payload["slot"]),
            received=np.asarray(payload["received"], dtype=float),
            truth=None if truth is None else np.asarray(truth, dtype=bool),
            actual=None if actual is None else np.asarray(actual, dtype=float),
        )
    if kind == "attack_occurrence":
        return AttackOccurrence(
            slot=int(payload["slot"]),
            kind=str(payload["kind"]),
            meter_ids=tuple(int(m) for m in payload["meter_ids"]),
            attack=dict(payload["attack"]),
        )
    return DayBoundary(day=int(payload["day"]))
