"""Checkpoint/resume for streaming engines.

A checkpoint is one self-contained JSON document: the engine's *build
spec* (how to reconstruct the world from nothing — configuration,
detector kind, policy, seeds) plus its *runtime state* (source cursor,
hacking-process compromises, detector beliefs, detection timeline, and
the bit-generator state of the shared RNG).

Resume rebuilds the world deterministically from the build spec — every
setup-time draw replays identically because construction is seeded, and
the expensive game solves come from the content-addressed solution
cache — then overwrites the mutable runtime state.  Floats survive the
JSON round trip exactly (``repr`` shortest-round-trip), and the RNG
resumes from its serialized bit-generator state, so a killed stream
continues *bitwise-identically* to one that never stopped.  The property
test in ``tests/test_stream_checkpoint.py`` asserts this over random cut
points.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.config import config_from_dict
from repro.faults.plan import FaultPlan
from repro.obs.manifest import build_manifest
from repro.simulation.cache import GameSolutionCache

if TYPE_CHECKING:
    from repro.stream.pipeline import StreamEngine

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is unreadable, torn, or not a checkpoint at all.

    Raised for missing files, truncated/bit-flipped JSON, wrong format
    markers, unsupported versions and missing sections — every way a
    crash or bad disk can damage a checkpoint.  The loader fails loudly
    with this instead of resuming from corrupt state; the chaos suite
    drives each damage mode through :mod:`repro.faults.chaos`.
    """


def checkpoint_payload(engine: Any) -> dict[str, Any]:
    """The JSON document for one engine (build spec + runtime state)."""
    if engine.build_spec is None:
        raise ValueError(
            "engine has no build spec; only engines created by "
            "build_replay_engine/build_synthetic_engine can be checkpointed"
        )
    spec = engine.build_spec
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        # Provenance only — the loader ignores it, and it carries no
        # timestamps, so identical runs still produce identical files.
        "manifest": build_manifest(
            spec.get("config"),
            seeds=None if "seed" not in spec else {"stream": spec["seed"]},
            command=spec.get("kind"),
        ),
        "build": spec,
        "state": engine.state_dict(),
    }


def save_checkpoint(engine: Any, path: str | Path) -> Path:
    """Atomically persist an engine's full resumable state.

    Writes to a sibling temp file and renames into place, so a crash (or
    the service's SIGTERM handler racing a kill) never leaves a torn
    checkpoint behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = checkpoint_payload(engine)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload), encoding="utf-8")
    os.replace(tmp, path)
    return path


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint document.

    Raises :class:`CheckpointError` on any damage: unreadable file,
    invalid JSON, wrong format marker, unsupported version, missing
    sections.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: invalid JSON ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"corrupt checkpoint {path}: not a JSON object")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"not a stream checkpoint: {path}")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    for key in ("build", "state"):
        if key not in payload:
            raise CheckpointError(f"checkpoint missing {key!r} section: {path}")
    return payload


def resume_engine(
    source: str | Path | dict[str, Any],
    *,
    cache: GameSolutionCache | None = None,
) -> "StreamEngine":
    """Rebuild an engine from a checkpoint and restore its runtime state.

    Parameters
    ----------
    source:
        Checkpoint file path, or an already-loaded payload dict.
    cache:
        Game-solution cache for the rebuild (defaults to the process
        global); a warm cache makes replay-world reconstruction cheap.

    Returns
    -------
    A :class:`~repro.stream.pipeline.StreamEngine` whose next event —
    and every event after it — matches what the original engine would
    have produced had it never stopped.
    """
    from repro.stream.pipeline import build_replay_engine, build_synthetic_engine

    payload = source if isinstance(source, dict) else load_checkpoint(source)
    build = payload["build"]
    kind = build.get("kind")
    config = config_from_dict(build["config"])
    faults = build.get("faults")
    plan = None if faults is None else FaultPlan.from_dict(faults)
    if kind == "replay":
        engine = build_replay_engine(
            config,
            detector=build["detector"],
            n_slots=int(build["n_slots"]),
            policy=build["policy"],
            calibration_trials=int(build["calibration_trials"]),
            seed=build["seed"],
            cache=cache,
            faults=plan,
            # Pre-taxonomy checkpoints predate attack families.
            attack_family=build.get("attack_family", "peak_increase"),
        )
    elif kind == "synthetic":
        from repro.stream.source import ScriptedOccurrence

        engine = build_synthetic_engine(
            config,
            n_days=int(build["n_days"]),
            attack_days=tuple(build["attack_days"]),
            hacked_meters=tuple(build["hacked_meters"]),
            attack_strength=float(build["attack_strength"]),
            tp_rate=float(build["tp_rate"]),
            fp_rate=float(build["fp_rate"]),
            detector=build["detector"],
            seed=int(build["seed"]),
            cache=cache,
            faults=plan,
            # Pre-taxonomy checkpoints carry no occurrence script.
            occurrences=tuple(
                ScriptedOccurrence.from_dict(payload)
                for payload in build.get("occurrences", [])
            ),
        )
    else:
        raise ValueError(f"unknown checkpoint build kind: {kind!r}")
    engine.restore(payload["state"])
    return engine
