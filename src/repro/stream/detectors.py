"""Incremental (per-event) wrappers around the batch detection stack.

The batch scenario builds every day's detector up front and loops over
slots; a stream cannot.  These state machines hold exactly the state one
event needs to advance:

- :class:`IncrementalSingleEvent` — binds the SVR/PAR single-event
  detector to the current day on each
  :class:`~repro.stream.events.PriceUpdate` and flags meters per
  :class:`~repro.stream.events.MeterReading`.
- :class:`IncrementalMonitor` — folds per-slot flag counts into the
  POMDP belief and emits monitor/repair actions, one observation at a
  time.
- :class:`SlidingHistoryPredictor` — maintains a rolling ``(p, V, D)``
  history window and refits the SVR price predictor once per day, so a
  long-running stream keeps forecasting from recent data instead of a
  frozen training set.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.data.pricing import PriceHistory
from repro.detection.long_term import LongTermDetector, MonitoringStep
from repro.detection.single_event import (
    CommunityResponseSimulator,
    SingleEventDetection,
    SingleEventDetector,
)
from repro.prediction.price import AwarePricePredictor, UnawarePricePredictor
from repro.stream.events import MeterReading, PriceUpdate


class IncrementalSingleEvent:
    """Per-day binding of the PAR single-event detector.

    Two operating modes:

    - **replay** — ``prebuilt`` holds one :class:`SingleEventDetector`
      per day (constructed by the replay world exactly as the batch
      scenario does), and ``start_day`` just selects the day's instance;
    - **live** — detectors are constructed on the fly from the day's
      predicted prices against the provided community simulators, which
      is what the synthetic source and the HTTP push path use.
    """

    def __init__(
        self,
        truth_simulator: CommunityResponseSimulator,
        *,
        predicted_simulator: CommunityResponseSimulator | None = None,
        threshold: float = 0.10,
        margin_noise_std: float = 0.03,
        prebuilt: Sequence[SingleEventDetector] | None = None,
    ) -> None:
        self.truth_simulator = truth_simulator
        self.predicted_simulator = predicted_simulator
        self.threshold = threshold
        self.margin_noise_std = margin_noise_std
        self.prebuilt = tuple(prebuilt) if prebuilt is not None else None
        self._detector: SingleEventDetector | None = None
        self._day: int | None = None

    @property
    def day(self) -> int | None:
        """Day the detector is currently bound to (None before the first
        price update)."""
        return self._day

    def start_day(self, update: PriceUpdate) -> None:
        """Bind to a new day's predicted prices."""
        if self.prebuilt is not None:
            if not 0 <= update.day < len(self.prebuilt):
                raise ValueError(
                    f"day {update.day} outside prebuilt range "
                    f"[0, {len(self.prebuilt)})"
                )
            self._detector = self.prebuilt[update.day]
        else:
            self._detector = SingleEventDetector(
                self.truth_simulator,
                update.predicted_prices,
                predicted_simulator=self.predicted_simulator,
                threshold=self.threshold,
                margin_noise_std=self.margin_noise_std,
            )
        self._day = update.day

    def observe(
        self, reading: MeterReading, *, rng: np.random.Generator | None = None
    ) -> NDArray[np.bool_]:
        """Flag each meter of one reading; requires a bound day."""
        if self._detector is None:
            raise RuntimeError(
                "no active day: a PriceUpdate must precede the first MeterReading"
            )
        return self._detector.observe_meters(reading.received, rng=rng)

    def observe_checks(
        self, reading: MeterReading, *, rng: np.random.Generator | None = None
    ) -> "list[SingleEventDetection]":
        """Per-meter check detail for one reading (audit-trail evidence).

        Consumes the measurement-noise stream in the exact order
        :meth:`observe` would, so an auditing pipeline stays bitwise
        equivalent to a non-auditing one.
        """
        if self._detector is None:
            raise RuntimeError(
                "no active day: a PriceUpdate must precede the first MeterReading"
            )
        return self._detector.check_meters(reading.received, rng=rng)


class IncrementalMonitor:
    """One-observation-at-a-time POMDP monitoring.

    A thin stateful shell over :class:`LongTermDetector` so the pipeline
    and the checkpoint layer talk to one object: ``observe`` folds a
    flag count into the belief and returns the chosen action, and the
    runtime state (belief, last action, trace) round-trips through
    ``state_dict``/``load_state``.
    """

    def __init__(self, detector: LongTermDetector) -> None:
        self.detector = detector

    @property
    def belief_mean(self) -> float:
        """Posterior mean number of hacked meters."""
        return float(self.detector.belief @ np.arange(self.detector.model.n_states))

    @property
    def n_meters(self) -> int:
        """Monitored fleet size (POMDP states count 0..n hacked meters)."""
        return self.detector.model.n_states - 1

    @property
    def n_repairs(self) -> int:
        return self.detector.n_repairs

    def observe(self, flag_count: int) -> MonitoringStep:
        """Belief update + action selection for one slot's flag count."""
        return self.detector.step(flag_count)

    def state_dict(self) -> dict[str, Any]:
        return self.detector.state_dict()

    def load_state(self, state: dict[str, Any]) -> None:
        self.detector.load_state(state)


class SlidingHistoryPredictor:
    """Rolling-window price predictor with per-day SVR refits.

    The batch scenario trains its predictor once on a fixed history; a
    service that runs for months must keep learning.  This wrapper keeps
    the most recent ``max_days`` days of ``(price, renewable, demand)``
    observations, refits the underlying SVR at most once per appended
    day, and predicts the next day from the refreshed model.

    Parameters
    ----------
    history:
        Initial training history (e.g. the synthetic two-era record).
    aware:
        Net-metering-aware featurization when True, the price-lags-only
        baseline otherwise.
    max_days:
        Sliding-window length in days; older days are dropped.
    """

    def __init__(
        self, history: PriceHistory, *, aware: bool = True, max_days: int = 28
    ) -> None:
        if max_days < 2:
            raise ValueError(f"max_days must be >= 2, got {max_days}")
        self.aware = aware
        self.max_days = max_days
        self._history = self._trimmed(history)
        # Derived cache, deliberately absent from state_dict/from_state:
        # restore refits the SVR from the serialized window instead.
        self._dirty = True  # repro: noqa[CKPT001] rebuilt on restore
        self._n_refits = 0  # repro: noqa[CKPT001] diagnostic counter, resets on restore
        self._predictor: AwarePricePredictor | UnawarePricePredictor | None = None  # repro: noqa[CKPT001] lazy refit

    @property
    def history(self) -> PriceHistory:
        """The current sliding window."""
        return self._history

    @property
    def n_refits(self) -> int:
        """How many times the SVR has been retrained."""
        return self._n_refits

    def _trimmed(self, history: PriceHistory) -> PriceHistory:
        if history.n_days <= self.max_days:
            return history
        start = (history.n_days - self.max_days) * history.slots_per_day
        return PriceHistory(
            prices=history.prices[start:],
            demand=history.demand[start:],
            renewable=history.renewable[start:],
            nm_active=history.nm_active[start:],
            slots_per_day=history.slots_per_day,
        )

    def observe_day(
        self,
        prices: NDArray[np.float64],
        demand: NDArray[np.float64],
        renewable: NDArray[np.float64],
    ) -> None:
        """Append one realized day and schedule a refit."""
        spd = self._history.slots_per_day
        for name, arr in (("prices", prices), ("demand", demand), ("renewable", renewable)):
            if np.asarray(arr).shape != (spd,):
                raise ValueError(f"{name} must have shape ({spd},)")
        self._history = self._trimmed(
            PriceHistory(
                prices=np.concatenate([self._history.prices, prices]),
                demand=np.concatenate([self._history.demand, demand]),
                renewable=np.concatenate([self._history.renewable, renewable]),
                nm_active=np.concatenate(
                    [self._history.nm_active, np.ones(spd, dtype=bool)]
                ),
                slots_per_day=spd,
            )
        )
        self._dirty = True

    def predict_day(
        self,
        *,
        demand_forecast: NDArray[np.float64] | None = None,
        renewable_forecast: NDArray[np.float64] | None = None,
    ) -> NDArray[np.float64]:
        """Forecast the next day's guideline price, refitting if stale."""
        if self._dirty or self._predictor is None:
            predictor: AwarePricePredictor | UnawarePricePredictor = (
                AwarePricePredictor() if self.aware else UnawarePricePredictor()
            )
            predictor.fit(self._history)
            self._predictor = predictor
            self._dirty = False
            self._n_refits += 1
        if self.aware:
            return self._predictor.predict_day(
                demand_forecast=demand_forecast, renewable_forecast=renewable_forecast
            )
        return self._predictor.predict_day()

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable window state (the SVR refits on restore)."""
        h = self._history
        return {
            "aware": self.aware,
            "max_days": self.max_days,
            "slots_per_day": h.slots_per_day,
            "prices": h.prices.tolist(),
            "demand": h.demand.tolist(),
            "renewable": h.renewable.tolist(),
            "nm_active": h.nm_active.astype(int).tolist(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "SlidingHistoryPredictor":
        history = PriceHistory(
            prices=np.asarray(state["prices"], dtype=float),
            demand=np.asarray(state["demand"], dtype=float),
            renewable=np.asarray(state["renewable"], dtype=float),
            nm_active=np.asarray(state["nm_active"], dtype=bool),
            slots_per_day=int(state["slots_per_day"]),
        )
        return cls(history, aware=bool(state["aware"]), max_days=int(state["max_days"]))
