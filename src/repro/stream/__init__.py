"""Event-sourced online detection engine (the streaming front of the repo).

The batch path (:mod:`repro.simulation.scenario`) rebuilds the world and
runs the whole monitoring horizon in one call.  This package turns the
same computation into a long-running *stream*: an event source emits
ordered :class:`~repro.stream.events.PriceUpdate` /
:class:`~repro.stream.events.MeterReading` /
:class:`~repro.stream.events.DayBoundary` events, an incremental
detector pipeline folds each event into per-slot detection decisions,
and the full pipeline state checkpoints to disk so a killed stream
resumes bitwise-identically.

The stack is fault-tolerant by construction: a seeded
:class:`~repro.faults.injector.FaultInjector` (see :mod:`repro.faults`)
can drop, duplicate, reorder, delay or corrupt events, and the pipeline
absorbs the damage — unusable slots become explicit gap markers in the
timeline, stalled feeds are retried under a
:class:`~repro.core.config.RetryPolicy`, and damaged checkpoint files
fail loudly with :class:`~repro.stream.checkpoint.CheckpointError`.
``docs/ROBUSTNESS.md`` documents the taxonomy and degradation
semantics.

- :mod:`repro.stream.events` -- the wire-format event model.
- :mod:`repro.stream.source` -- replay (scenario-equivalent) and
  deterministic synthetic event sources.
- :mod:`repro.stream.detectors` -- the SVR single-event detector and the
  POMDP monitor wrapped as incremental state machines.
- :mod:`repro.stream.pipeline` -- the online pipeline, the pump engine
  and the replay/synthetic engine builders.
- :mod:`repro.stream.checkpoint` -- save / load / resume.
"""

from repro.stream.events import (
    AttackOccurrence,
    DayBoundary,
    MeterReading,
    PriceUpdate,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.stream.pipeline import (
    OnlinePipeline,
    SlotDetection,
    StreamEngine,
    build_replay_engine,
    build_synthetic_engine,
)
from repro.stream.checkpoint import (
    CheckpointError,
    load_checkpoint,
    resume_engine,
    save_checkpoint,
)
from repro.stream.source import ReplaySource, ScriptedOccurrence, SyntheticSource

__all__ = [
    "AttackOccurrence",
    "CheckpointError",
    "DayBoundary",
    "MeterReading",
    "OnlinePipeline",
    "PriceUpdate",
    "ReplaySource",
    "ScriptedOccurrence",
    "SlotDetection",
    "StreamEngine",
    "StreamEvent",
    "SyntheticSource",
    "build_replay_engine",
    "build_synthetic_engine",
    "event_from_dict",
    "event_to_dict",
    "load_checkpoint",
    "resume_engine",
    "save_checkpoint",
]
