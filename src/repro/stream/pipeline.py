"""The online detection pipeline and the event-pump engine.

:class:`OnlinePipeline` is the incremental mirror of the batch
scenario's per-slot loop: each :class:`~repro.stream.events.PriceUpdate`
binds the single-event detector to the new day, each
:class:`~repro.stream.events.MeterReading` produces per-meter flags, a
POMDP observation, a belief update and a monitor/repair action — one
:class:`SlotDetection` per slot, appended to the pipeline's timeline.

:class:`StreamEngine` couples a source with a pipeline and pumps events
through it, routing repair decisions back to the source (the feedback
edge of the paper's Figure 2 loop) and exposing whole-run state capture
for the checkpoint layer.  :func:`build_replay_engine` yields an engine
whose detection timeline is bitwise-identical to the batch scenario;
:func:`build_synthetic_engine` yields a lightweight scripted engine for
the service layer and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np
from numpy.typing import NDArray

from repro.attacks.pricing import PeakIncreaseAttack
from repro.core.config import CommunityConfig, config_to_dict
from repro.data.community import build_community
from repro.detection.long_term import LongTermDetector
from repro.detection.pomdp import build_detection_pomdp
from repro.detection.single_event import CommunityResponseSimulator
from repro.detection.solvers import QmdpPolicy
from repro.perf.counters import PERF
from repro.simulation.cache import GameSolutionCache, global_game_cache
from repro.simulation.scenario import DetectorKind, ScenarioResult
from repro.stream.detectors import IncrementalMonitor, IncrementalSingleEvent
from repro.stream.events import (
    DayBoundary,
    MeterReading,
    PriceUpdate,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.stream.source import (
    EventSource,
    ReplaySource,
    SyntheticSource,
    build_replay_world,
)


@dataclass(frozen=True)
class SlotDetection:
    """The pipeline's verdict for one monitoring slot.

    ``action``/``belief_mean`` are ``None`` when no long-term monitor is
    configured (the batch path's ``detector="none"`` column);
    ``realized_grid`` is ``None`` when the reading carried no ground
    truth to simulate against.
    """

    slot: int
    day: int
    flags: NDArray[np.bool_]
    observation: int
    action: int | None
    belief_mean: float | None
    repaired: bool
    repaired_count: int
    realized_grid: float | None
    truth: NDArray[np.bool_] | None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "slot": self.slot,
            "day": self.day,
            "flags": self.flags.astype(int).tolist(),
            "observation": self.observation,
            "action": self.action,
            "belief_mean": self.belief_mean,
            "repaired": self.repaired,
            "repaired_count": self.repaired_count,
            "realized_grid": self.realized_grid,
        }
        if self.truth is not None:
            payload["truth"] = self.truth.astype(int).tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SlotDetection":
        truth = payload.get("truth")
        return cls(
            slot=int(payload["slot"]),
            day=int(payload["day"]),
            flags=np.asarray(payload["flags"], dtype=bool),
            observation=int(payload["observation"]),
            action=None if payload["action"] is None else int(payload["action"]),
            belief_mean=(
                None if payload["belief_mean"] is None else float(payload["belief_mean"])
            ),
            repaired=bool(payload["repaired"]),
            repaired_count=int(payload["repaired_count"]),
            realized_grid=(
                None
                if payload["realized_grid"] is None
                else float(payload["realized_grid"])
            ),
            truth=None if truth is None else np.asarray(truth, dtype=bool),
        )


class OnlinePipeline:
    """Incremental detector stack: one event in, at most one verdict out.

    Parameters
    ----------
    single_event:
        The per-day single-event detector state machine.
    monitor:
        The POMDP monitor, or ``None`` for flag-only operation.
    rng:
        Measurement-noise stream for the per-meter checks.  For replay
        engines this is the *shared* world generator (interleaved with
        the hacking process exactly as in the batch loop).
    slots_per_day:
        Day length, for slot/day bookkeeping.
    grid_simulator:
        Ground-truth community simulator used to account the realized
        grid demand of readings that carry a truth mask; ``None`` skips
        the accounting.
    repair_hook:
        Called when the monitor dispatches a repair; returns the number
        of meters actually fixed.  The engine wires this to the source's
        ``apply_repair``.
    """

    def __init__(
        self,
        *,
        single_event: IncrementalSingleEvent,
        monitor: IncrementalMonitor | None,
        rng: np.random.Generator | None,
        slots_per_day: int,
        grid_simulator: CommunityResponseSimulator | None = None,
        repair_hook: Callable[[], int] | None = None,
    ) -> None:
        if slots_per_day < 1:
            raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
        self.single_event = single_event
        self.monitor = monitor
        self.rng = rng
        self.slots_per_day = slots_per_day
        self.grid_simulator = grid_simulator
        self.repair_hook = repair_hook
        self._current_update: PriceUpdate | None = None
        self._days_completed = 0
        self._timeline: list[SlotDetection] = []

    # ------------------------------------------------------------------
    @property
    def timeline(self) -> tuple[SlotDetection, ...]:
        """Every verdict so far, in slot order."""
        return tuple(self._timeline)

    @property
    def current_day(self) -> int | None:
        """Day of the active price update (None before the first)."""
        return None if self._current_update is None else self._current_update.day

    @property
    def days_completed(self) -> int:
        return self._days_completed

    @property
    def n_slots_processed(self) -> int:
        return len(self._timeline)

    @property
    def n_repairs(self) -> int:
        return sum(1 for det in self._timeline if det.repaired)

    def detection_stats(self) -> dict[str, Any]:
        """Aggregate detection statistics for the monitoring API."""
        timeline = self._timeline
        stats: dict[str, Any] = {
            "slots_processed": len(timeline),
            "days_completed": self._days_completed,
            "current_day": self.current_day,
            "flags_total": int(sum(det.observation for det in timeline)),
            "repairs": self.n_repairs,
            "meters_repaired": int(sum(det.repaired_count for det in timeline)),
        }
        if self.monitor is not None:
            stats["belief_mean"] = self.monitor.belief_mean
        scored = [det for det in timeline if det.truth is not None]
        if scored:
            correct = sum(
                int(np.sum(det.truth == det.flags)) for det in scored
            )
            total = sum(det.flags.size for det in scored)
            stats["observation_accuracy"] = correct / total
        return stats

    # ------------------------------------------------------------------
    def handle(self, event: StreamEvent) -> SlotDetection | None:
        """Fold one event into the pipeline state."""
        PERF.add("stream.events")
        if isinstance(event, PriceUpdate):
            self.single_event.start_day(event)
            self._current_update = event
            return None
        if isinstance(event, DayBoundary):
            self._days_completed = max(self._days_completed, event.day + 1)
            return None
        if isinstance(event, MeterReading):
            return self._handle_reading(event)
        raise TypeError(f"not a stream event: {type(event).__name__}")

    def _handle_reading(self, reading: MeterReading) -> SlotDetection:
        if self._current_update is None:
            raise RuntimeError(
                "no active day: a PriceUpdate must precede the first MeterReading"
            )
        flags = self.single_event.observe(reading, rng=self.rng)
        observation = int(flags.sum())
        realized = self._realized_grid(reading)

        action: int | None = None
        belief_mean: float | None = None
        repaired = False
        repaired_count = 0
        if self.monitor is not None:
            step = self.monitor.observe(observation)
            action = step.action
            belief_mean = step.belief_mean
            repaired = step.repaired
            if repaired:
                PERF.add("stream.repairs")
                if self.repair_hook is not None:
                    repaired_count = self.repair_hook()

        detection = SlotDetection(
            slot=reading.slot,
            day=self._current_update.day,
            flags=flags,
            observation=observation,
            action=action,
            belief_mean=belief_mean,
            repaired=repaired,
            repaired_count=repaired_count,
            realized_grid=realized,
            truth=reading.truth,
        )
        self._timeline.append(detection)
        PERF.add("stream.readings")
        PERF.add("stream.flags", observation)
        return detection

    def _realized_grid(self, reading: MeterReading) -> float | None:
        """Realized grid demand: benign response plus hacked-share deltas.

        Identical arithmetic (and identical summation order: ascending
        meter id) to the batch scenario's per-slot accounting.
        """
        if (
            reading.truth is None
            or self.grid_simulator is None
            or self._current_update is None
        ):
            return None
        clean = self._current_update.clean_prices
        slot_in_day = reading.slot % self.slots_per_day
        benign = self.grid_simulator.response(clean).grid_demand
        demand = benign[slot_in_day]
        for meter_id in np.flatnonzero(reading.truth):
            attacked = self.grid_simulator.response(reading.received[meter_id]).grid_demand
            demand += (attacked[slot_in_day] - benign[slot_in_day]) / reading.n_meters
        return max(demand, 0.0)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable runtime state (day binding, monitor, timeline)."""
        return {
            "current_update": (
                None
                if self._current_update is None
                else event_to_dict(self._current_update)
            ),
            "days_completed": self._days_completed,
            "monitor": None if self.monitor is None else self.monitor.state_dict(),
            "timeline": [det.to_dict() for det in self._timeline],
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore runtime state captured by :meth:`state_dict`."""
        update = state["current_update"]
        if update is None:
            self._current_update = None
        else:
            event = event_from_dict(update)
            if not isinstance(event, PriceUpdate):
                raise ValueError("current_update must be a price_update event")
            self.single_event.start_day(event)
            self._current_update = event
        self._days_completed = int(state["days_completed"])
        if self.monitor is not None and state["monitor"] is not None:
            self.monitor.load_state(state["monitor"])
        self._timeline = [SlotDetection.from_dict(det) for det in state["timeline"]]


class StreamEngine:
    """Pump loop: source events in, detection timeline out.

    The engine owns the wiring between source and pipeline (the repair
    feedback edge), counts processed events (the checkpoint cut point),
    and captures/restores whole-run state.  ``build_spec`` describes how
    to rebuild this engine from scratch — the checkpoint layer persists
    it so ``resume_engine`` works from nothing but the file.
    """

    def __init__(
        self,
        source: EventSource,
        pipeline: OnlinePipeline,
        *,
        rng: np.random.Generator | None = None,
        build_spec: dict[str, Any] | None = None,
        tp_rate: float = 0.0,
        fp_rate: float = 0.0,
    ) -> None:
        self.source = source
        self.pipeline = pipeline
        self.rng = rng
        self.build_spec = build_spec
        self.tp_rate = tp_rate
        self.fp_rate = fp_rate
        self._events_processed = 0
        if pipeline.repair_hook is None:
            pipeline.repair_hook = source.apply_repair

    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def timeline(self) -> tuple[SlotDetection, ...]:
        return self.pipeline.timeline

    def step(self) -> SlotDetection | None:
        """Process one event; returns its verdict (None for non-readings
        and for an exhausted source — check :meth:`exhausted`)."""
        event = self.source.next_event()
        if event is None:
            return None
        self._events_processed += 1
        with PERF.timer("stream.pump"):
            return self.pipeline.handle(event)

    @property
    def exhausted(self) -> bool:
        exhausted = getattr(self.source, "exhausted", None)
        if exhausted is None:
            return False
        return bool(exhausted)

    def run(
        self,
        *,
        max_events: int | None = None,
        until_day: int | None = None,
    ) -> list[SlotDetection]:
        """Pump events until the source dries up (or a bound is hit).

        Parameters
        ----------
        max_events:
            Stop after this many additional events (checkpoint cut
            points in tests).
        until_day:
            Stop once ``until_day`` full days have been completed.

        Returns
        -------
        The verdicts produced by *this* call (the full history stays on
        :attr:`timeline`).
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        produced: list[SlotDetection] = []
        pumped = 0
        while True:
            if max_events is not None and pumped >= max_events:
                break
            if until_day is not None and self.pipeline.days_completed >= until_day:
                break
            before = self._events_processed
            detection = self.step()
            if self._events_processed == before:  # source exhausted
                break
            pumped += 1
            if detection is not None:
                produced.append(detection)
        return produced

    # ------------------------------------------------------------------
    def result(self, *, slots_per_day: int | None = None) -> ScenarioResult:
        """Assemble the timeline into a batch-compatible ScenarioResult.

        Requires a complete, truth-scored timeline (replay engines).
        """
        timeline = self.pipeline.timeline
        if not timeline:
            raise RuntimeError("empty timeline: run the engine first")
        spd = slots_per_day if slots_per_day is not None else self.pipeline.slots_per_day
        for i, det in enumerate(timeline):
            if det.slot != i:
                raise RuntimeError(f"timeline gap: expected slot {i}, got {det.slot}")
            if det.truth is None or det.realized_grid is None:
                raise RuntimeError(
                    "timeline is not truth-scored; ScenarioResult needs a replay engine"
                )
        detector: DetectorKind = "none"
        if self.build_spec is not None:
            detector = self.build_spec.get("detector", detector)
        return ScenarioResult(
            detector=detector,
            truth=np.stack([det.truth for det in timeline]),
            flags=np.stack([det.flags for det in timeline]),
            observations=np.array([det.observation for det in timeline], dtype=int),
            repairs=np.array([det.repaired for det in timeline], dtype=bool),
            repaired_counts=np.array(
                [det.repaired_count for det in timeline], dtype=int
            ),
            realized_grid=np.array([det.realized_grid for det in timeline]),
            slots_per_day=spd,
            tp_rate=self.tp_rate,
            fp_rate=self.fp_rate,
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Full resumable state: cursors, detectors, timeline, RNG."""
        rng_state = None
        if self.rng is not None:
            rng_state = self.rng.bit_generator.state
        return {
            "events_processed": self._events_processed,
            "source": self.source.state_dict(),
            "pipeline": self.pipeline.state_dict(),
            "rng": rng_state,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` on a freshly
        built engine (same build spec)."""
        self._events_processed = int(state["events_processed"])
        self.source.load_state(state["source"])
        self.pipeline.load_state(state["pipeline"])
        if state["rng"] is not None:
            if self.rng is None:
                raise ValueError("checkpoint carries RNG state but engine has no RNG")
            self.rng.bit_generator.state = state["rng"]


# ----------------------------------------------------------------------
def build_replay_engine(
    config: CommunityConfig,
    *,
    detector: DetectorKind = "aware",
    n_slots: int = 48,
    policy: str = "qmdp",
    calibration_trials: int = 30,
    seed: int | None = None,
    cache: GameSolutionCache | None = None,
) -> StreamEngine:
    """Scenario-equivalent streaming engine.

    Pumping this engine to exhaustion and calling :meth:`StreamEngine.result`
    reproduces :func:`~repro.simulation.scenario.run_long_term_scenario`
    bit for bit (same flags, observations, repair actions and realized
    grid) — the equivalence test in ``tests/test_stream_equivalence.py``
    asserts exactly that.
    """
    world = build_replay_world(
        config,
        detector=detector,
        n_slots=n_slots,
        policy=policy,
        calibration_trials=calibration_trials,
        seed=seed,
        cache=cache,
    )
    source = ReplaySource(world)
    single_event = IncrementalSingleEvent(
        world.truth_simulator,
        predicted_simulator=world.predicted_simulator,
        threshold=config.detection.par_threshold,
        margin_noise_std=config.detection.margin_noise_std,
        prebuilt=world.day_detectors,
    )
    monitor = (
        IncrementalMonitor(world.long_term) if world.long_term is not None else None
    )
    pipeline = OnlinePipeline(
        single_event=single_event,
        monitor=monitor,
        rng=world.rng,
        slots_per_day=world.slots_per_day,
        grid_simulator=world.truth_simulator,
    )
    build_spec = {
        "kind": "replay",
        "config": config_to_dict(config),
        "detector": detector,
        "n_slots": n_slots,
        "policy": policy,
        "calibration_trials": calibration_trials,
        "seed": seed,
    }
    return StreamEngine(
        source,
        pipeline,
        rng=world.rng,
        build_spec=build_spec,
        tp_rate=world.tp_rate,
        fp_rate=world.fp_rate,
    )


def build_synthetic_engine(
    config: CommunityConfig,
    *,
    n_days: int = 30,
    attack_days: tuple[int, int] = (10, 19),
    hacked_meters: tuple[int, ...] | None = None,
    attack_strength: float = 0.6,
    tp_rate: float = 0.75,
    fp_rate: float = 0.05,
    detector: DetectorKind = "aware",
    seed: int = 0,
    cache: GameSolutionCache | None = None,
) -> StreamEngine:
    """Lightweight scripted engine for the service layer and examples.

    The source is fully deterministic (:class:`SyntheticSource`); the
    pipeline runs *live* — per-day detectors are built on the fly from
    the community model, and the POMDP observation model uses the given
    (assumed rather than Monte-Carlo-calibrated) TP/FP rates, keeping
    start-up to a couple of game solves.
    """
    spd = config.time.slots_per_day
    n_meters = config.detection.n_monitored_meters
    if hacked_meters is None:
        hacked_meters = tuple(range(max(1, n_meters // 2)))
    rng = np.random.default_rng(config.seed)
    day_config = config.with_updates(time=replace(config.time, n_days=1))
    community = build_community(day_config, rng=rng)
    cache = cache if cache is not None else global_game_cache()
    truth_simulator = CommunityResponseSimulator(
        community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
        cache=cache,
    )
    predicted_simulator = (
        truth_simulator
        if detector != "unaware"
        else CommunityResponseSimulator(
            community.without_net_metering(),
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
            cache=cache,
        )
    )
    source = SyntheticSource(
        n_meters=n_meters,
        n_days=n_days,
        slots_per_day=spd,
        attack_days=attack_days,
        hacked_meters=hacked_meters,
        attack=default_synthetic_attack(spd, attack_strength),
    )
    single_event = IncrementalSingleEvent(
        truth_simulator,
        predicted_simulator=(
            None if predicted_simulator is truth_simulator else predicted_simulator
        ),
        threshold=config.detection.par_threshold,
        margin_noise_std=config.detection.margin_noise_std,
    )
    monitor: IncrementalMonitor | None = None
    if detector != "none":
        model = build_detection_pomdp(
            n_meters,
            hack_probability=config.detection.hack_probability,
            tp_rate=tp_rate,
            fp_rate=fp_rate,
            damage_per_meter=config.detection.damage_per_meter,
            repair_fixed_cost=config.detection.repair_fixed_cost,
            repair_cost_per_meter=config.detection.repair_cost_per_meter,
            discount=config.detection.discount,
        )
        monitor = IncrementalMonitor(LongTermDetector(model, policy=QmdpPolicy(model)))
    pipeline = OnlinePipeline(
        single_event=single_event,
        monitor=monitor,
        rng=np.random.default_rng(seed),
        slots_per_day=spd,
        grid_simulator=truth_simulator,
    )
    build_spec = {
        "kind": "synthetic",
        "config": config_to_dict(config),
        "n_days": n_days,
        "attack_days": list(attack_days),
        "hacked_meters": list(hacked_meters),
        "attack_strength": attack_strength,
        "tp_rate": tp_rate,
        "fp_rate": fp_rate,
        "detector": detector,
        "seed": seed,
    }
    return StreamEngine(
        source,
        pipeline,
        rng=pipeline.rng,
        build_spec=build_spec,
        tp_rate=tp_rate if detector != "none" else 0.0,
        fp_rate=fp_rate if detector != "none" else 0.0,
    )


def default_synthetic_attack(slots_per_day: int, strength: float) -> PeakIncreaseAttack:
    """Evening cheap-window attack sized to the day grid.

    Module-level (rather than inlined in :func:`build_synthetic_engine`)
    so a checkpoint resume reconstructs the identical attack from the
    persisted ``attack_strength``.
    """
    start = int(slots_per_day * 0.75)
    return PeakIncreaseAttack(
        start_slot=start,
        end_slot=min(start + 1, slots_per_day - 1),
        strength=strength,
    )
