"""The online detection pipeline and the event-pump engine.

:class:`OnlinePipeline` is the incremental mirror of the batch
scenario's per-slot loop: each :class:`~repro.stream.events.PriceUpdate`
binds the single-event detector to the new day, each
:class:`~repro.stream.events.MeterReading` produces per-meter flags, a
POMDP observation, a belief update and a monitor/repair action — one
:class:`SlotDetection` per slot, appended to the pipeline's timeline.

:class:`StreamEngine` couples a source with a pipeline and pumps events
through it, routing repair decisions back to the source (the feedback
edge of the paper's Figure 2 loop) and exposing whole-run state capture
for the checkpoint layer.  :func:`build_replay_engine` yields an engine
whose detection timeline is bitwise-identical to the batch scenario;
:func:`build_synthetic_engine` yields a lightweight scripted engine for
the service layer and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable

import numpy as np
from numpy.typing import NDArray

from repro.attacks.pricing import PeakIncreaseAttack
from repro.core.config import CommunityConfig, RetryPolicy, config_to_dict
from repro.data.community import build_community
from repro.detection.long_term import LongTermDetector
from repro.detection.pomdp import build_detection_pomdp
from repro.detection.single_event import CommunityResponseSimulator
from repro.detection.solvers import QmdpPolicy
from repro.obs.trace import TRACER
from repro.perf.counters import PERF
from repro.simulation.cache import GameSolutionCache, global_game_cache
from repro.simulation.scenario import DetectorKind, ScenarioResult
from repro.stream.detectors import IncrementalMonitor, IncrementalSingleEvent
from repro.stream.events import (
    AttackOccurrence,
    DayBoundary,
    MeterReading,
    PriceUpdate,
    StreamEvent,
    event_from_dict,
    event_to_dict,
)
from repro.stream.source import (
    EventSource,
    ReplaySource,
    ScriptedOccurrence,
    SyntheticSource,
    build_replay_world,
)

if TYPE_CHECKING:  # runtime import stays lazy to keep faults optional
    from repro.detection.single_event import SingleEventDetection
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.obs.audit import AuditTrail
    from repro.obs.scoreboard import ResilienceScoreboard


@dataclass(frozen=True)
class SlotDetection:
    """The pipeline's verdict for one monitoring slot.

    ``action``/``belief_mean`` are ``None`` when no long-term monitor is
    configured (the batch path's ``detector="none"`` column);
    ``realized_grid`` is ``None`` when the reading carried no ground
    truth to simulate against.

    A ``gap`` entry is an explicit placeholder for a slot whose reading
    never arrived usable (dropped, corrupted, or lost across a day
    boundary): flags are all-False, the observation is 0, and no belief
    update happened — the monitor simply held its posterior.
    ``gap_reason`` says why (``"dropped"`` or ``"corrupt"``).
    """

    slot: int
    day: int
    flags: NDArray[np.bool_]
    observation: int
    action: int | None
    belief_mean: float | None
    repaired: bool
    repaired_count: int
    realized_grid: float | None
    truth: NDArray[np.bool_] | None
    gap: bool = False
    gap_reason: str | None = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "slot": self.slot,
            "day": self.day,
            "flags": self.flags.astype(int).tolist(),
            "observation": self.observation,
            "action": self.action,
            "belief_mean": self.belief_mean,
            "repaired": self.repaired,
            "repaired_count": self.repaired_count,
            "realized_grid": self.realized_grid,
        }
        if self.truth is not None:
            payload["truth"] = self.truth.astype(int).tolist()
        if self.gap:
            payload["gap"] = True
            payload["gap_reason"] = self.gap_reason
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SlotDetection":
        truth = payload.get("truth")
        return cls(
            slot=int(payload["slot"]),
            day=int(payload["day"]),
            flags=np.asarray(payload["flags"], dtype=bool),
            observation=int(payload["observation"]),
            action=None if payload["action"] is None else int(payload["action"]),
            belief_mean=(
                None if payload["belief_mean"] is None else float(payload["belief_mean"])
            ),
            repaired=bool(payload["repaired"]),
            repaired_count=int(payload["repaired_count"]),
            realized_grid=(
                None
                if payload["realized_grid"] is None
                else float(payload["realized_grid"])
            ),
            truth=None if truth is None else np.asarray(truth, dtype=bool),
            gap=bool(payload.get("gap", False)),
            gap_reason=payload.get("gap_reason"),
        )


class OnlinePipeline:
    """Incremental detector stack: one event in, at most one verdict out.

    Parameters
    ----------
    single_event:
        The per-day single-event detector state machine.
    monitor:
        The POMDP monitor, or ``None`` for flag-only operation.
    rng:
        Measurement-noise stream for the per-meter checks.  For replay
        engines this is the *shared* world generator (interleaved with
        the hacking process exactly as in the batch loop).
    slots_per_day:
        Day length, for slot/day bookkeeping.
    grid_simulator:
        Ground-truth community simulator used to account the realized
        grid demand of readings that carry a truth mask; ``None`` skips
        the accounting.
    repair_hook:
        Called when the monitor dispatches a repair; returns the number
        of meters actually fixed.  The engine wires this to the source's
        ``apply_repair``.
    audit:
        Optional :class:`~repro.obs.audit.AuditTrail` receiving one
        explainable record per verdict (per-meter PAR margins, belief
        before/after, gap reasons).  ``None`` — the default — runs the
        exact historical code path; attaching a trail consumes the
        measurement-noise stream in the identical order, so verdicts
        never change.
    scoreboard:
        Optional :class:`~repro.obs.scoreboard.ResilienceScoreboard`
        folding each verdict and occurrence into MTTD/MTTR/availability
        metrics.  Pure observer: it never touches the RNG stream and is
        rebuilt from the restored timeline on resume, so attaching one
        changes no verdict and no checkpoint byte.
    """

    def __init__(
        self,
        *,
        single_event: IncrementalSingleEvent,
        monitor: IncrementalMonitor | None,
        rng: np.random.Generator | None,
        slots_per_day: int,
        grid_simulator: CommunityResponseSimulator | None = None,
        repair_hook: Callable[[], int] | None = None,
        audit: "AuditTrail | None" = None,
        scoreboard: "ResilienceScoreboard | None" = None,
    ) -> None:
        if slots_per_day < 1:
            raise ValueError(f"slots_per_day must be >= 1, got {slots_per_day}")
        self.single_event = single_event
        self.monitor = monitor
        self.rng = rng
        self.slots_per_day = slots_per_day
        self.grid_simulator = grid_simulator
        self.repair_hook = repair_hook
        self.audit = audit
        self.scoreboard = scoreboard
        self.trace_tags: dict[str, Any] = {}  # repro: noqa[CKPT001] trace bookkeeping, not simulation state
        self._current_update: PriceUpdate | None = None
        self._days_completed = 0
        self._timeline: list[SlotDetection] = []
        self._next_slot = 0
        self._pending: dict[int, MeterReading] = {}
        self._occurrences: list[dict[str, Any]] = []
        self._n_meters: int | None = None
        self._day_span: int | None = None  # repro: noqa[CKPT001] trace bookkeeping, not simulation state

    # ------------------------------------------------------------------
    @property
    def timeline(self) -> tuple[SlotDetection, ...]:
        """Every verdict so far, in slot order."""
        return tuple(self._timeline)

    @property
    def current_day(self) -> int | None:
        """Day of the active price update (None before the first)."""
        return None if self._current_update is None else self._current_update.day

    @property
    def days_completed(self) -> int:
        return self._days_completed

    @property
    def n_slots_processed(self) -> int:
        return len(self._timeline)

    @property
    def n_repairs(self) -> int:
        return sum(1 for det in self._timeline if det.repaired)

    @property
    def n_gaps(self) -> int:
        """Slots covered by an explicit gap marker instead of a verdict."""
        return sum(1 for det in self._timeline if det.gap)

    @property
    def occurrences(self) -> tuple[dict[str, Any], ...]:
        """Ground-truth attack occurrences seen on the stream, in order.

        Each entry is the event's JSON payload (slot, kind, meter ids,
        kind-tagged attack).  Detection never consumes these; they are
        the run's attack ledger for scoring and audit.
        """
        return tuple(self._occurrences)

    def detection_stats(self) -> dict[str, Any]:
        """Aggregate detection statistics for the monitoring API."""
        timeline = self._timeline
        stats: dict[str, Any] = {
            "slots_processed": len(timeline),
            "days_completed": self._days_completed,
            "current_day": self.current_day,
            "flags_total": int(sum(det.observation for det in timeline)),
            "repairs": self.n_repairs,
            "meters_repaired": int(sum(det.repaired_count for det in timeline)),
            "gaps": self.n_gaps,
            "occurrences": len(self._occurrences),
        }
        if self.monitor is not None:
            stats["belief_mean"] = self.monitor.belief_mean
        scored = [det for det in timeline if det.truth is not None]
        if scored:
            correct = sum(
                int(np.sum(det.truth == det.flags)) for det in scored
            )
            total = sum(det.flags.size for det in scored)
            stats["observation_accuracy"] = correct / total
        return stats

    # ------------------------------------------------------------------
    def handle(self, event: StreamEvent) -> SlotDetection | None:
        """Fold one event into the pipeline state.

        Robustness contract: once a first day is bound, no event — stale,
        early, duplicated, or field-corrupted — raises.  Unusable slots
        become explicit gap markers in the timeline instead, so a faulted
        stream degrades without ever crashing the pump loop.
        """
        PERF.add("stream.events")
        if isinstance(event, PriceUpdate):
            current = self.current_day
            if current is not None and event.day < current:
                PERF.add("stream.stale_updates")
                return None
            if current is None:
                # First binding: slots before the first bound day were
                # never observable, so fast-forward rather than gap-fill.
                self._next_slot = max(self._next_slot, event.day * self.slots_per_day)
            elif event.day > current:
                # Readings of skipped/incomplete days can no longer be
                # processed under their own day's detector.
                self._flush_through(event.day * self.slots_per_day, reason="dropped")
            self.single_event.start_day(event)
            self._current_update = event
            if TRACER.enabled:
                TRACER.end(self._day_span)
                self._day_span = TRACER.begin(
                    "stream.day", category="stream", day=event.day, **self.trace_tags
                )
            return None
        if isinstance(event, DayBoundary):
            if self.current_day is not None and event.day == self.current_day:
                self._flush_through(
                    (event.day + 1) * self.slots_per_day, reason="dropped"
                )
            self._days_completed = max(self._days_completed, event.day + 1)
            if TRACER.enabled and self._day_span is not None:
                TRACER.end(self._day_span)
                self._day_span = None
            return None
        if isinstance(event, AttackOccurrence):
            # Ground-truth metadata: record it, never feed it to the
            # detectors (the detector must not peek at ground truth).
            self._occurrences.append(event_to_dict(event))
            PERF.add("stream.occurrences")
            if self.scoreboard is not None:
                self.scoreboard.record_occurrence(self._occurrences[-1])
            return None
        if isinstance(event, MeterReading):
            return self._handle_reading(event)
        raise TypeError(f"not a stream event: {type(event).__name__}")

    def _handle_reading(self, reading: MeterReading) -> SlotDetection | None:
        if self._current_update is None:
            raise RuntimeError(
                "no active day: a PriceUpdate must precede the first MeterReading"
            )
        day_start = self._current_update.day * self.slots_per_day
        day_end = day_start + self.slots_per_day
        error = reading.validation_error(
            horizon=int(self._current_update.clean_prices.size)
        )
        if error is not None:
            PERF.add("stream.faults.rejected")
            if reading.slot == self._next_slot and day_start <= reading.slot < day_end:
                # The slot's only reading is unusable: mark it lost.
                return self._emit_gap(reading.slot, reason="corrupt")
            return None
        if reading.slot < self._next_slot:
            # Duplicate or late straggler for an already-settled slot.
            PERF.add("stream.stale_readings")
            return None
        if reading.slot != self._next_slot:
            # Early arrival (reordered/delayed): park it until its turn.
            self._pending[reading.slot] = reading
            PERF.add("stream.pending_readings")
            return None
        detection = self._process_reading(reading)
        self._drain_pending()
        return detection

    def _process_reading(self, reading: MeterReading) -> SlotDetection:
        assert self._current_update is not None
        with TRACER.span(
            "stream.slot",
            category="stream",
            slot=reading.slot,
            day=self._current_update.day,
            **self.trace_tags,
        ):
            slot_span = TRACER.current_span_id
            # The audit path collects per-meter evidence on the *same*
            # noise draws observe() would consume; flags are identical.
            checks: "list[SingleEventDetection] | None" = None
            if self.audit is None:
                flags = self.single_event.observe(reading, rng=self.rng)
            else:
                checks = self.single_event.observe_checks(reading, rng=self.rng)
                flags = np.zeros(len(checks), dtype=bool)
                for i, single_check in enumerate(checks):
                    flags[i] = single_check.flagged
            observation = int(flags.sum())
            realized = self._realized_grid(reading)

            action: int | None = None
            belief_mean: float | None = None
            belief_before: float | None = None
            repaired = False
            repaired_count = 0
            if self.monitor is not None:
                if self.audit is not None:
                    belief_before = self.monitor.belief_mean
                with TRACER.span(
                    "detector.update", category="stream", observation=observation
                ):
                    step = self.monitor.observe(observation)
                action = step.action
                belief_mean = step.belief_mean
                PERF.set_gauge("stream.belief_mean", step.belief_mean)
                repaired = step.repaired
                if repaired:
                    PERF.add("stream.repairs")
                    if self.repair_hook is not None:
                        repaired_count = self.repair_hook()

            detection = SlotDetection(
                slot=reading.slot,
                day=self._current_update.day,
                flags=flags,
                observation=observation,
                action=action,
                belief_mean=belief_mean,
                repaired=repaired,
                repaired_count=repaired_count,
                realized_grid=realized,
                truth=reading.truth,
            )
            self._timeline.append(detection)
            self._next_slot = reading.slot + 1
            self._n_meters = reading.n_meters
            PERF.add("stream.readings")
            PERF.add("stream.flags", observation)
            if self.audit is not None:
                self.audit.record_detection(
                    detection,
                    checks=checks,
                    update=self._current_update,
                    belief_before=belief_before,
                    span_id=slot_span,
                )
            if self.scoreboard is not None:
                self.scoreboard.record(detection)
            return detection

    def _drain_pending(self) -> None:
        """Process parked early arrivals that are now in order."""
        while self._next_slot in self._pending:
            self._process_reading(self._pending.pop(self._next_slot))

    def _emit_gap(self, slot: int, *, reason: str) -> SlotDetection:
        """Record an explicit placeholder for a slot with no usable reading.

        The monitor's belief is deliberately *not* updated — a missing
        observation carries no evidence, so the posterior holds.
        """
        width = self._n_meters
        if width is None:
            width = self.monitor.n_meters if self.monitor is not None else 0
        detection = SlotDetection(
            slot=slot,
            day=slot // self.slots_per_day,
            flags=np.zeros(width, dtype=bool),
            observation=0,
            action=None,
            belief_mean=None,
            repaired=False,
            repaired_count=0,
            realized_grid=None,
            truth=None,
            gap=True,
            gap_reason=reason,
        )
        self._timeline.append(detection)
        self._next_slot = slot + 1
        PERF.add("stream.gaps")
        if self.audit is not None:
            self.audit.record_gap(detection, span_id=TRACER.current_span_id)
        if self.scoreboard is not None:
            self.scoreboard.record(detection)
        return detection

    def _flush_through(self, end_slot: int, *, reason: str) -> None:
        """Settle every slot below ``end_slot``: parked readings are
        processed, the rest become gap markers."""
        while self._next_slot < end_slot:
            parked = self._pending.pop(self._next_slot, None)
            if parked is not None:
                self._process_reading(parked)
                self._drain_pending()
            else:
                self._emit_gap(self._next_slot, reason=reason)
        if self._pending:
            self._pending = {
                slot: reading
                for slot, reading in sorted(self._pending.items())
                if slot >= end_slot
            }

    def _realized_grid(self, reading: MeterReading) -> float | None:
        """Realized grid demand: benign response plus hacked-share deltas.

        Identical arithmetic (and identical summation order: ascending
        meter id) to the batch scenario's per-slot accounting.
        """
        if (
            reading.truth is None
            or self.grid_simulator is None
            or self._current_update is None
        ):
            return None
        clean = self._current_update.clean_prices
        slot_in_day = reading.slot % self.slots_per_day
        benign = self.grid_simulator.response(clean).grid_demand
        demand = benign[slot_in_day]
        # Homes respond to the prices they *received*, not the spoofed
        # report — ``responded`` is ``received`` unless a telemetry
        # attack decoupled the two.
        responded = reading.responded
        for meter_id in np.flatnonzero(reading.truth):
            attacked = self.grid_simulator.response(responded[meter_id]).grid_demand
            demand += (attacked[slot_in_day] - benign[slot_in_day]) / reading.n_meters
        return max(demand, 0.0)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable runtime state (day binding, monitor, timeline,
        slot cursor and parked readings)."""
        return {
            "current_update": (
                None
                if self._current_update is None
                else event_to_dict(self._current_update)
            ),
            "days_completed": self._days_completed,
            "monitor": None if self.monitor is None else self.monitor.state_dict(),
            "timeline": [det.to_dict() for det in self._timeline],
            "next_slot": self._next_slot,
            "pending": [
                event_to_dict(reading)
                for _, reading in sorted(self._pending.items())
            ],
            "occurrences": [dict(payload) for payload in self._occurrences],
            "n_meters": self._n_meters,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore runtime state captured by :meth:`state_dict`."""
        update = state["current_update"]
        if update is None:
            self._current_update = None
        else:
            event = event_from_dict(update)
            if not isinstance(event, PriceUpdate):
                raise ValueError("current_update must be a price_update event")
            self.single_event.start_day(event)
            self._current_update = event
        self._days_completed = int(state["days_completed"])
        if self.monitor is not None and state["monitor"] is not None:
            self.monitor.load_state(state["monitor"])
        self._timeline = [SlotDetection.from_dict(det) for det in state["timeline"]]
        # Pre-robustness checkpoints lack the cursor fields; derive them.
        self._next_slot = int(state.get("next_slot", len(self._timeline)))
        pending: dict[int, MeterReading] = {}
        for payload in state.get("pending", []):
            event = event_from_dict(payload)
            if not isinstance(event, MeterReading):
                raise ValueError("pending entries must be meter_reading events")
            pending[event.slot] = event
        self._pending = pending
        # Pre-taxonomy checkpoints carry no occurrence ledger.
        self._occurrences = [dict(p) for p in state.get("occurrences", [])]
        n_meters = state.get("n_meters")
        if n_meters is None and self._timeline:
            n_meters = int(self._timeline[-1].flags.size)
        self._n_meters = None if n_meters is None else int(n_meters)
        if self.audit is not None:
            self.audit.backfill(self._timeline)
        # Scoreboard state is derived, not checkpointed: refold the
        # restored history so a resumed board equals an uncut one.
        if self.scoreboard is not None:
            self.scoreboard.rebuild(self._timeline, self._occurrences)


class StreamEngine:
    """Pump loop: source events in, detection timeline out.

    The engine owns the wiring between source and pipeline (the repair
    feedback edge), counts processed events (the checkpoint cut point),
    and captures/restores whole-run state.  ``build_spec`` describes how
    to rebuild this engine from scratch — the checkpoint layer persists
    it so ``resume_engine`` works from nothing but the file.
    """

    def __init__(
        self,
        source: EventSource,
        pipeline: OnlinePipeline,
        *,
        rng: np.random.Generator | None = None,
        build_spec: dict[str, Any] | None = None,
        tp_rate: float = 0.0,
        fp_rate: float = 0.0,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.source = source
        self.pipeline = pipeline
        self.rng = rng
        self.build_spec = build_spec  # repro: noqa[CKPT001] persisted as the checkpoint's build section
        self.tp_rate = tp_rate
        self.fp_rate = fp_rate
        # Backoff sleeping is injected (the service passes time.sleep);
        # by default a stalled poll retries immediately, which keeps the
        # engine wall-clock-free and chaos tests instant.
        self.retry = retry  # repro: noqa[CKPT001] re-derived from the build spec's fault plan on resume
        self._sleep = sleep
        self._events_processed = 0
        if pipeline.repair_hook is None:
            pipeline.repair_hook = source.apply_repair

    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def timeline(self) -> tuple[SlotDetection, ...]:
        return self.pipeline.timeline

    def step(self) -> SlotDetection | None:
        """Process one event; returns its verdict (None for non-readings
        and for an exhausted source — check :meth:`exhausted`)."""
        event = self.source.next_event()
        if event is None:
            return None
        self._events_processed += 1
        with PERF.timer("stream.pump", hist=True):
            return self.pipeline.handle(event)

    @property
    def exhausted(self) -> bool:
        exhausted = getattr(self.source, "exhausted", None)
        if exhausted is None:
            return False
        return bool(exhausted)

    def run(
        self,
        *,
        max_events: int | None = None,
        until_day: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[SlotDetection]:
        """Pump events until the source dries up (or a bound is hit).

        A poll that yields no event from a non-exhausted source (a
        stalled feed) is retried under the engine's
        :class:`~repro.core.config.RetryPolicy` — per-call ``retry``
        overrides the engine default.  The retry budget resets on every
        successful delivery; when it runs out the run stops cleanly
        (``stream.stalls_aborted`` perf counter) rather than raising.

        Parameters
        ----------
        max_events:
            Stop after this many additional events (checkpoint cut
            points in tests).
        until_day:
            Stop once ``until_day`` full days have been completed.
        retry:
            Stall policy for this call only.

        Returns
        -------
        The verdicts appended by *this* call, gap markers included (the
        full history stays on :attr:`timeline`).
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        policy = retry if retry is not None else self.retry
        run_span = TRACER.begin(
            "stream.run",
            category="stream",
            max_events=max_events,
            until_day=until_day,
        )
        start = self.pipeline.n_slots_processed
        pumped = 0
        stalls = 0
        while True:
            if max_events is not None and pumped >= max_events:
                break
            if until_day is not None and self.pipeline.days_completed >= until_day:
                break
            before = self._events_processed
            self.step()
            if self._events_processed == before:
                if self.exhausted or policy is None:
                    break
                stalls += 1
                PERF.add("stream.stalls")
                if stalls > policy.max_retries:
                    PERF.add("stream.stalls_aborted")
                    break
                if self._sleep is not None:
                    delay = policy.delay(stalls)
                    if delay > 0.0:
                        self._sleep(delay)
                continue
            stalls = 0
            pumped += 1
        TRACER.end(run_span)
        return list(self.pipeline.timeline[start:])

    # ------------------------------------------------------------------
    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Wrap the engine's source in a seeded fault injector.

        Re-installing replaces any previous injector (the clean source
        is unwrapped first, never stacked).  The repair feedback edge is
        rewired through the injector, the plan is recorded in
        ``build_spec`` so checkpoints resume faulted, and — when the
        plan can stall the feed and no policy is set — a default retry
        policy sized to ``max_stall`` is installed.
        """
        from repro.faults.injector import FaultInjector

        source = self.source
        if isinstance(source, FaultInjector):
            source = source.source
        injector = FaultInjector(source, plan)
        self.source = injector
        self.pipeline.repair_hook = injector.apply_repair
        if self.build_spec is not None:
            self.build_spec["faults"] = plan.to_dict()
        if self.retry is None and plan.stall_prob > 0.0:
            self.retry = RetryPolicy(max_retries=plan.max_stall + 4)
        return injector

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The active injector, or ``None`` when the source is clean."""
        from repro.faults.injector import FaultInjector

        return self.source if isinstance(self.source, FaultInjector) else None

    # ------------------------------------------------------------------
    def result(self, *, slots_per_day: int | None = None) -> ScenarioResult:
        """Assemble the timeline into a batch-compatible ScenarioResult.

        Requires a complete, truth-scored timeline (replay engines).
        """
        timeline = self.pipeline.timeline
        if not timeline:
            raise RuntimeError("empty timeline: run the engine first")
        spd = slots_per_day if slots_per_day is not None else self.pipeline.slots_per_day
        for i, det in enumerate(timeline):
            if det.slot != i:
                raise RuntimeError(f"timeline gap: expected slot {i}, got {det.slot}")
            if det.gap:
                raise RuntimeError(
                    f"slot {i} is a gap marker ({det.gap_reason}); a degraded "
                    "timeline cannot be assembled into a ScenarioResult"
                )
            if det.truth is None or det.realized_grid is None:
                raise RuntimeError(
                    "timeline is not truth-scored; ScenarioResult needs a replay engine"
                )
        detector: DetectorKind = "none"
        if self.build_spec is not None:
            detector = self.build_spec.get("detector", detector)
        return ScenarioResult(
            detector=detector,
            truth=np.stack([det.truth for det in timeline]),
            flags=np.stack([det.flags for det in timeline]),
            observations=np.array([det.observation for det in timeline], dtype=int),
            repairs=np.array([det.repaired for det in timeline], dtype=bool),
            repaired_counts=np.array(
                [det.repaired_count for det in timeline], dtype=int
            ),
            realized_grid=np.array([det.realized_grid for det in timeline]),
            slots_per_day=spd,
            tp_rate=self.tp_rate,
            fp_rate=self.fp_rate,
        )

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Full resumable state: cursors, detectors, timeline, RNG."""
        rng_state = None
        if self.rng is not None:
            rng_state = self.rng.bit_generator.state
        return {
            "events_processed": self._events_processed,
            "source": self.source.state_dict(),
            "pipeline": self.pipeline.state_dict(),
            "rng": rng_state,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore state captured by :meth:`state_dict` on a freshly
        built engine (same build spec)."""
        self._events_processed = int(state["events_processed"])
        self.source.load_state(state["source"])
        self.pipeline.load_state(state["pipeline"])
        if state["rng"] is not None:
            if self.rng is None:
                raise ValueError("checkpoint carries RNG state but engine has no RNG")
            self.rng.bit_generator.state = state["rng"]


# ----------------------------------------------------------------------
def build_replay_engine(
    config: CommunityConfig,
    *,
    detector: DetectorKind = "aware",
    n_slots: int = 48,
    policy: str = "qmdp",
    calibration_trials: int = 30,
    seed: int | None = None,
    cache: GameSolutionCache | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    attack_family: str = "peak_increase",
) -> StreamEngine:
    """Scenario-equivalent streaming engine.

    Pumping this engine to exhaustion and calling :meth:`StreamEngine.result`
    reproduces :func:`~repro.simulation.scenario.run_long_term_scenario`
    bit for bit (same flags, observations, repair actions and realized
    grid) — the equivalence test in ``tests/test_stream_equivalence.py``
    asserts exactly that.  Passing ``faults`` wraps the source in a
    seeded :class:`~repro.faults.injector.FaultInjector` (see
    :meth:`StreamEngine.install_faults`).
    """
    world = build_replay_world(
        config,
        detector=detector,
        n_slots=n_slots,
        policy=policy,
        calibration_trials=calibration_trials,
        seed=seed,
        cache=cache,
        attack_family=attack_family,
    )
    source = ReplaySource(world)
    single_event = IncrementalSingleEvent(
        world.truth_simulator,
        predicted_simulator=world.predicted_simulator,
        threshold=config.detection.par_threshold,
        margin_noise_std=config.detection.margin_noise_std,
        prebuilt=world.day_detectors,
    )
    monitor = (
        IncrementalMonitor(world.long_term) if world.long_term is not None else None
    )
    pipeline = OnlinePipeline(
        single_event=single_event,
        monitor=monitor,
        rng=world.rng,
        slots_per_day=world.slots_per_day,
        grid_simulator=world.truth_simulator,
    )
    build_spec = {
        "kind": "replay",
        "config": config_to_dict(config),
        "detector": detector,
        "n_slots": n_slots,
        "policy": policy,
        "calibration_trials": calibration_trials,
        "seed": seed,
    }
    if attack_family != "peak_increase":
        build_spec["attack_family"] = attack_family
    engine = StreamEngine(
        source,
        pipeline,
        rng=world.rng,
        build_spec=build_spec,
        tp_rate=world.tp_rate,
        fp_rate=world.fp_rate,
        retry=retry,
    )
    if faults is not None:
        engine.install_faults(faults)
    return engine


def build_synthetic_engine(
    config: CommunityConfig,
    *,
    n_days: int = 30,
    attack_days: tuple[int, int] = (10, 19),
    hacked_meters: tuple[int, ...] | None = None,
    attack_strength: float = 0.6,
    tp_rate: float = 0.75,
    fp_rate: float = 0.05,
    detector: DetectorKind = "aware",
    seed: int = 0,
    cache: GameSolutionCache | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    occurrences: tuple["ScriptedOccurrence", ...] = (),
) -> StreamEngine:
    """Lightweight scripted engine for the service layer and examples.

    The source is fully deterministic (:class:`SyntheticSource`); the
    pipeline runs *live* — per-day detectors are built on the fly from
    the community model, and the POMDP observation model uses the given
    (assumed rather than Monte-Carlo-calibrated) TP/FP rates, keeping
    start-up to a couple of game solves.
    """
    spd = config.time.slots_per_day
    n_meters = config.detection.n_monitored_meters
    if hacked_meters is None:
        hacked_meters = tuple(range(max(1, n_meters // 2)))
    rng = np.random.default_rng(config.seed)
    day_config = config.with_updates(time=replace(config.time, n_days=1))
    community = build_community(day_config, rng=rng)
    cache = cache if cache is not None else global_game_cache()
    truth_simulator = CommunityResponseSimulator(
        community,
        config=config.game,
        sellback_divisor=config.pricing.sellback_divisor,
        seed=3,
        cache=cache,
        tariff=config.tariff,
    )
    predicted_simulator = (
        truth_simulator
        if detector != "unaware"
        else CommunityResponseSimulator(
            community.without_net_metering(),
            config=config.game,
            sellback_divisor=config.pricing.sellback_divisor,
            seed=3,
            cache=cache,
        )
    )
    source = SyntheticSource(
        n_meters=n_meters,
        n_days=n_days,
        slots_per_day=spd,
        attack_days=attack_days,
        hacked_meters=hacked_meters,
        attack=default_synthetic_attack(spd, attack_strength),
        occurrences=occurrences,
    )
    single_event = IncrementalSingleEvent(
        truth_simulator,
        predicted_simulator=(
            None if predicted_simulator is truth_simulator else predicted_simulator
        ),
        threshold=config.detection.par_threshold,
        margin_noise_std=config.detection.margin_noise_std,
    )
    monitor: IncrementalMonitor | None = None
    if detector != "none":
        model = build_detection_pomdp(
            n_meters,
            hack_probability=config.detection.hack_probability,
            tp_rate=tp_rate,
            fp_rate=fp_rate,
            damage_per_meter=config.detection.damage_per_meter,
            repair_fixed_cost=config.detection.repair_fixed_cost,
            repair_cost_per_meter=config.detection.repair_cost_per_meter,
            discount=config.detection.discount,
        )
        monitor = IncrementalMonitor(LongTermDetector(model, policy=QmdpPolicy(model)))
    pipeline = OnlinePipeline(
        single_event=single_event,
        monitor=monitor,
        rng=np.random.default_rng(seed),
        slots_per_day=spd,
        grid_simulator=truth_simulator,
    )
    build_spec = {
        "kind": "synthetic",
        "config": config_to_dict(config),
        "n_days": n_days,
        "attack_days": list(attack_days),
        "hacked_meters": list(hacked_meters),
        "attack_strength": attack_strength,
        "tp_rate": tp_rate,
        "fp_rate": fp_rate,
        "detector": detector,
        "seed": seed,
    }
    if occurrences:
        build_spec["occurrences"] = [occ.to_dict() for occ in occurrences]
    engine = StreamEngine(
        source,
        pipeline,
        rng=pipeline.rng,
        build_spec=build_spec,
        tp_rate=tp_rate if detector != "none" else 0.0,
        fp_rate=fp_rate if detector != "none" else 0.0,
        retry=retry,
    )
    if faults is not None:
        engine.install_faults(faults)
    return engine


def default_synthetic_attack(slots_per_day: int, strength: float) -> PeakIncreaseAttack:
    """Evening cheap-window attack sized to the day grid.

    Module-level (rather than inlined in :func:`build_synthetic_engine`)
    so a checkpoint resume reconstructs the identical attack from the
    persisted ``attack_strength``.
    """
    start = int(slots_per_day * 0.75)
    return PeakIncreaseAttack(
        start_slot=start,
        end_slot=min(start + 1, slots_per_day - 1),
        strength=strength,
    )
