"""Tariff protocol and kind-tagged registry.

A *tariff* is a small frozen dataclass describing a billing structure;
its one obligation is :meth:`Tariff.cost_model` — given a guideline
price vector, produce the cost model the scheduling game prices
decisions through (either the legacy
:class:`~repro.netmetering.cost.NetMeteringCostModel` or a generalized
:class:`~repro.tariffs.model.TariffCostModel`).  Tariffs are pure
parameters: deterministic, hashable, JSON-round-trippable — which is
what makes them config-addressable (``CommunityConfig.tariff``),
checkpoint-safe (they ride inside the engine build spec) and
cache-keyed (:func:`tariff_fingerprint` extends the game-solution
context key).

The registry mirrors the stream layer's ``_EVENT_TYPES`` pattern: each
concrete tariff declares a ``kind`` tag and registers itself with
:func:`register_tariff`; :func:`tariff_to_dict` /
:func:`tariff_from_dict` serialize by tag.  ``kind`` is a class
attribute, not a dataclass field, so payloads stay flat
(``{"kind": ..., **fields}``) and constructors stay field-only.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Type, TypeVar, Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.netmetering.cost import NetMeteringCostModel
from repro.tariffs.model import TariffCostModel

CostModel = Union[NetMeteringCostModel, TariffCostModel]
"""What the scheduling game's cost hook accepts: the legacy flat model
(kernel-accelerated fast path) or the generalized tariff model
(backend-independent pure-numpy path)."""


@dataclass(frozen=True)
class Tariff:
    """Base class for billing structures.

    Subclasses are frozen dataclasses with a unique ``kind`` tag,
    registered via :func:`register_tariff`.
    """

    kind: ClassVar[str] = ""

    def cost_model(
        self, prices: ArrayLike, *, sellback_divisor: float
    ) -> CostModel:
        """The cost model pricing one guideline-price vector.

        ``sellback_divisor`` is the pricing config's ``W`` — tariffs
        that don't pin their own sell side inherit it, which is what
        lets the default tariff reproduce the legacy behaviour exactly.
        """
        raise NotImplementedError

    def settle(
        self,
        prices: ArrayLike,
        trading: ArrayLike,
        others_trading: ArrayLike,
        *,
        sellback_divisor: float,
    ) -> float:
        """Billing-period settlement for one customer's realized trading.

        Defaults to instantaneous netting: the sum of the per-slot costs
        the scheduling model already computes.  Tariffs with a
        settlement period (monthly netting) override this.
        """
        model = self.cost_model(prices, sellback_divisor=sellback_divisor)
        return model.customer_cost(trading, others_trading)

    @staticmethod
    def _price_array(prices: ArrayLike) -> NDArray[np.float64]:
        arr = np.asarray(prices, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"prices must be a non-empty 1-D array, got {arr.shape}")
        return arr


_TARIFF_KINDS: dict[str, type[Tariff]] = {}

T = TypeVar("T", bound=Tariff)


def register_tariff(cls: Type[T]) -> Type[T]:
    """Class decorator: enter a tariff into the kind registry."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must declare a non-empty kind tag")
    existing = _TARIFF_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"tariff kind {cls.kind!r} already registered by {existing.__name__}"
        )
    _TARIFF_KINDS[cls.kind] = cls
    return cls


def tariff_kinds() -> tuple[str, ...]:
    """All registered kind tags, sorted."""
    return tuple(sorted(_TARIFF_KINDS))


def tariff_to_dict(tariff: Tariff) -> dict[str, Any]:
    """Serialize a registered tariff to a flat JSON-safe payload."""
    cls = _TARIFF_KINDS.get(tariff.kind)
    if cls is None or type(tariff) is not cls:
        raise ValueError(
            f"cannot serialize unregistered tariff {type(tariff).__name__}"
        )
    payload: dict[str, Any] = {"kind": tariff.kind}
    for field in fields(tariff):
        value = getattr(tariff, field.name)
        payload[field.name] = list(value) if isinstance(value, tuple) else value
    return payload


def tariff_from_dict(payload: dict[str, Any]) -> Tariff:
    """Rebuild a tariff from :func:`tariff_to_dict` output.

    Unknown kinds and unknown fields fail loudly — a checkpoint or
    config written by a newer taxonomy should never be silently
    reinterpreted.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"tariff payload must be an object, got {type(payload)}")
    kind = payload.get("kind")
    cls = _TARIFF_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(
            f"unknown tariff kind {kind!r} (known: {list(tariff_kinds())})"
        )
    field_names = {field.name for field in fields(cls)}
    extra = set(payload) - field_names - {"kind"}
    if extra:
        raise ValueError(
            f"unknown fields for tariff kind {kind!r}: {sorted(extra)}"
        )
    kwargs = {name: payload[name] for name in field_names if name in payload}
    return cls(**kwargs)


def tariff_fingerprint(tariff: Tariff) -> str:
    """Content hash for cache keys: same tariff, same fingerprint."""
    text = json.dumps(tariff_to_dict(tariff), sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
