"""First-class tariff layer (ROADMAP item 3: Table 1 as one matrix cell).

Public surface: the :class:`Tariff` protocol and registry, the
generalized :class:`TariffCostModel`, and the concrete catalog
(:class:`FlatNetMetering`, :class:`BuySellSpread`, :class:`TimeOfUse`,
:class:`MonthlyNetting`).  See docs/SCENARIOS.md for the config grammar
and the tariff × attack × PV-penetration matrix these feed.
"""

from repro.tariffs.base import (
    CostModel,
    Tariff,
    register_tariff,
    tariff_fingerprint,
    tariff_from_dict,
    tariff_kinds,
    tariff_to_dict,
)
from repro.tariffs.catalog import (
    NAMED_TARIFFS,
    BuySellSpread,
    FlatNetMetering,
    MonthlyNetting,
    TimeOfUse,
    named_tariff,
)
from repro.tariffs.model import TariffCostModel, tariff_cost_terms

__all__ = [
    "BuySellSpread",
    "CostModel",
    "FlatNetMetering",
    "MonthlyNetting",
    "NAMED_TARIFFS",
    "Tariff",
    "TariffCostModel",
    "TimeOfUse",
    "named_tariff",
    "register_tariff",
    "tariff_cost_terms",
    "tariff_fingerprint",
    "tariff_from_dict",
    "tariff_kinds",
    "tariff_to_dict",
]
