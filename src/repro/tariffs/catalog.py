"""Concrete tariffs: the paper's flat net metering plus three variants.

=====================  =====================================================
Tariff                 Billing structure
=====================  =====================================================
``FlatNetMetering``    The paper's implicit tariff: flat buy at the
                       guideline price, sell at ``p/W``.  With default
                       parameters it returns the *identical legacy*
                       :class:`~repro.netmetering.cost.NetMeteringCostModel`
                       object, so scheduling, caching and kernels are
                       bitwise-unchanged — Table 1 is reproduced exactly.
``BuySellSpread``      NEM-3-style decoupling (Alahmed & Tong,
                       arXiv:2212.03311): buy at ``markup * p``, sell at
                       ``fraction * p``, optionally with a per-slot
                       compensated-export cap.
``TimeOfUse``          A peak window of slots is billed at a multiplied
                       rate on both sides of the meter.
``MonthlyNetting``     Same instantaneous rates as flat net metering for
                       *scheduling* (customers can't see the settlement
                       period inside one day-ahead game), but
                       :meth:`~MonthlyNetting.settle` nets import and
                       export energy over the whole billing horizon:
                       banked export kWh offset imports at the retail
                       rate instead of earning the sell-back rate.
=====================  =====================================================

``named_tariff`` maps CLI/config grammar names (``flat``, ``tou``, …)
onto instances for the matrix runner; ``"flat"`` maps to ``None`` — the
*absence* of a tariff — so the matrix's flat-net-metering column runs
through exactly the legacy code path and cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.netmetering.cost import NetMeteringCostModel
from repro.tariffs.base import CostModel, Tariff, register_tariff
from repro.tariffs.model import TariffCostModel


@register_tariff
@dataclass(frozen=True)
class FlatNetMetering(Tariff):
    """The paper's tariff, made explicit and parameterized.

    Parameters
    ----------
    sellback_divisor:
        Override for the pricing config's ``W``; ``None`` inherits it.
    paper_literal:
        Selling-branch sign (see :mod:`repro.netmetering.cost`).  The
        default keeps the text's rewarding reading — and with it, the
        bitwise-identical legacy cost model.
    """

    kind = "flat_net_metering"

    sellback_divisor: float | None = None
    paper_literal: bool = False

    def __post_init__(self) -> None:
        if self.sellback_divisor is not None:
            divisor = float(self.sellback_divisor)
            object.__setattr__(self, "sellback_divisor", divisor)
            if not np.isfinite(divisor) or divisor < 1:
                raise ValueError(
                    f"sellback_divisor must be >= 1, got {divisor}"
                )

    def _divisor(self, sellback_divisor: float) -> float:
        return (
            float(sellback_divisor)
            if self.sellback_divisor is None
            else self.sellback_divisor
        )

    def cost_model(
        self, prices: ArrayLike, *, sellback_divisor: float
    ) -> CostModel:
        arr = self._price_array(prices)
        divisor = self._divisor(sellback_divisor)
        if not self.paper_literal:
            # The actual legacy class — equivalence by construction, so
            # the kernel fast paths and existing cache keys still apply.
            return NetMeteringCostModel(
                prices=tuple(float(v) for v in arr),
                sellback_divisor=divisor,
            )
        return TariffCostModel(
            buy_rates=tuple(float(v) for v in arr),
            sell_rates=tuple(float(v) for v in arr / divisor),
            export_cap_kwh=None,
            paper_literal=True,
        )


@register_tariff
@dataclass(frozen=True)
class BuySellSpread(Tariff):
    """Decoupled buy/sell rates with an optional compensated-export cap.

    Buy at ``buy_markup * p_h``, sell at ``sell_fraction * p_h``; at
    most ``export_cap_kwh`` of export per slot earns compensation.
    """

    kind = "buy_sell_spread"

    buy_markup: float = 1.0
    sell_fraction: float = 0.5
    export_cap_kwh: float | None = None
    paper_literal: bool = False

    def __post_init__(self) -> None:
        markup = float(self.buy_markup)
        fraction = float(self.sell_fraction)
        object.__setattr__(self, "buy_markup", markup)
        object.__setattr__(self, "sell_fraction", fraction)
        if not np.isfinite(markup) or markup <= 0:
            raise ValueError(f"buy_markup must be > 0, got {markup}")
        if not np.isfinite(fraction) or fraction < 0:
            raise ValueError(f"sell_fraction must be >= 0, got {fraction}")
        if self.export_cap_kwh is not None:
            cap = float(self.export_cap_kwh)
            object.__setattr__(self, "export_cap_kwh", cap)
            if not np.isfinite(cap) or cap <= 0:
                raise ValueError(f"export_cap_kwh must be > 0, got {cap}")

    def cost_model(
        self, prices: ArrayLike, *, sellback_divisor: float
    ) -> CostModel:
        arr = self._price_array(prices)
        return TariffCostModel(
            buy_rates=tuple(float(v) for v in arr * self.buy_markup),
            sell_rates=tuple(float(v) for v in arr * self.sell_fraction),
            export_cap_kwh=self.export_cap_kwh,
            paper_literal=self.paper_literal,
        )


@register_tariff
@dataclass(frozen=True)
class TimeOfUse(Tariff):
    """A peak window of slots billed at a multiplied rate.

    Slots ``peak_start_slot <= h < peak_end_slot`` of each game horizon
    are scaled by ``peak_multiplier``, the rest by
    ``offpeak_multiplier``; the sell side earns the scaled rate divided
    by the (inherited or pinned) sell-back divisor.
    """

    kind = "time_of_use"

    peak_start_slot: int = 16
    peak_end_slot: int = 21
    peak_multiplier: float = 1.5
    offpeak_multiplier: float = 1.0
    sellback_divisor: float | None = None

    def __post_init__(self) -> None:
        start = int(self.peak_start_slot)
        end = int(self.peak_end_slot)
        object.__setattr__(self, "peak_start_slot", start)
        object.__setattr__(self, "peak_end_slot", end)
        if start < 0 or end <= start:
            raise ValueError(
                f"need 0 <= peak_start_slot < peak_end_slot, got [{start}, {end})"
            )
        for name in ("peak_multiplier", "offpeak_multiplier"):
            value = float(getattr(self, name))
            object.__setattr__(self, name, value)
            if not np.isfinite(value) or value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.sellback_divisor is not None:
            divisor = float(self.sellback_divisor)
            object.__setattr__(self, "sellback_divisor", divisor)
            if not np.isfinite(divisor) or divisor < 1:
                raise ValueError(f"sellback_divisor must be >= 1, got {divisor}")

    def cost_model(
        self, prices: ArrayLike, *, sellback_divisor: float
    ) -> CostModel:
        arr = self._price_array(prices)
        if self.peak_end_slot > arr.size:
            raise ValueError(
                f"peak window [{self.peak_start_slot}, {self.peak_end_slot}) "
                f"does not fit horizon {arr.size}"
            )
        divisor = (
            float(sellback_divisor)
            if self.sellback_divisor is None
            else self.sellback_divisor
        )
        multipliers = np.full(arr.size, self.offpeak_multiplier)
        multipliers[self.peak_start_slot : self.peak_end_slot] = (
            self.peak_multiplier
        )
        buy = arr * multipliers
        return TariffCostModel(
            buy_rates=tuple(float(v) for v in buy),
            sell_rates=tuple(float(v) for v in buy / divisor),
            export_cap_kwh=None,
            paper_literal=False,
        )


@register_tariff
@dataclass(frozen=True)
class MonthlyNetting(Tariff):
    """Billing-period netting over the horizon, instantaneous scheduling.

    Customers schedule against the same instantaneous flat-net-metering
    model (a day-ahead game cannot see the settlement period), so
    scheduling is bitwise-identical to :class:`FlatNetMetering`.  The
    difference is all in :meth:`settle`: export energy *banks* against
    import energy kWh-for-kWh, and the banked quantity earns the average
    retail rate instead of the sell-back rate.  Identities pinned by
    property tests: settlement equals instantaneous billing whenever the
    customer never exports (or never imports), and never exceeds it
    while retail rates dominate sell-back rates.
    """

    kind = "monthly_netting"

    sellback_divisor: float | None = None

    def __post_init__(self) -> None:
        if self.sellback_divisor is not None:
            divisor = float(self.sellback_divisor)
            object.__setattr__(self, "sellback_divisor", divisor)
            if not np.isfinite(divisor) or divisor < 1:
                raise ValueError(f"sellback_divisor must be >= 1, got {divisor}")

    def cost_model(
        self, prices: ArrayLike, *, sellback_divisor: float
    ) -> CostModel:
        arr = self._price_array(prices)
        divisor = (
            float(sellback_divisor)
            if self.sellback_divisor is None
            else self.sellback_divisor
        )
        return NetMeteringCostModel(
            prices=tuple(float(v) for v in arr),
            sellback_divisor=divisor,
        )

    def settle(
        self,
        prices: ArrayLike,
        trading: ArrayLike,
        others_trading: ArrayLike,
        *,
        sellback_divisor: float,
    ) -> float:
        model = self.cost_model(prices, sellback_divisor=sellback_divisor)
        per_slot = model.customer_cost_per_slot(trading, others_trading)
        instantaneous = float(per_slot.sum())
        y = np.asarray(trading, dtype=float)
        bought_kwh = float(y[y > 0].sum())
        sold_kwh = float(-y[y < 0].sum())
        banked = min(bought_kwh, sold_kwh)
        if banked <= 0.0:
            return instantaneous
        buy_value = float(per_slot[y > 0].sum())
        sell_value = float(-per_slot[y < 0].sum())
        avg_buy_rate = buy_value / bought_kwh
        avg_sell_rate = sell_value / sold_kwh
        # Banked kWh upgrade from the sell-back rate to the retail rate.
        return instantaneous - banked * (avg_buy_rate - avg_sell_rate)


NAMED_TARIFFS: dict[str, Tariff | None] = {
    # The paper's tariff via the legacy code path (no tariff object at
    # all): identical cache keys, bitwise-identical Table 1.
    "flat": None,
    "flat_paper_literal": FlatNetMetering(paper_literal=True),
    "nem3_spread": BuySellSpread(sell_fraction=0.5),
    "spread_capped": BuySellSpread(sell_fraction=0.75, export_cap_kwh=2.0),
    "tou": TimeOfUse(),
    "monthly_netting": MonthlyNetting(),
}


def named_tariff(name: str) -> Tariff | None:
    """Resolve a config-grammar tariff name (see docs/SCENARIOS.md)."""
    try:
        return NAMED_TARIFFS[name]
    except KeyError:
        raise ValueError(
            f"unknown tariff name {name!r} (known: {sorted(NAMED_TARIFFS)})"
        ) from None
