"""Generalized tariff cost model (buy/sell rate vectors, export caps).

:class:`TariffCostModel` is the duck-typed sibling of
:class:`~repro.netmetering.cost.NetMeteringCostModel`: it exposes the
same evaluation surface (``horizon`` / ``price_array`` /
``customer_cost_per_slot`` / ``marginal_cost_table`` /
``community_cost``) so the scheduling game, the battery optimizer and
the lockstep batch solver can price any tariff through one hook, but it
decouples the buy and sell sides into independent per-slot rate vectors
and adds two structural knobs the paper's flat model cannot express:

``export_cap_kwh``
    NEM-3-style compensation cap: exports deeper than the cap are
    accepted by the grid but not compensated — the compensated quantity
    per slot is ``max(y, -cap)``, so the credit binds *exactly* at the
    cap (pinned by property tests).

``paper_literal``
    Sign of the selling branch.  The default implements the paper
    text's *rewarding* reading (selling earns money while the community
    is a net buyer); ``paper_literal=True`` keeps Eqn. (2)'s literal
    leading minus, which *charges* for exports.  See the module
    docstring of :mod:`repro.netmetering.cost`.

The quadratic demand-scaled structure itself (cost terms proportional to
``max(Y_h, 0) * y``) is shared with the legacy model, so
:class:`~repro.tariffs.catalog.FlatNetMetering` degenerates to it
bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import ArrayLike, NDArray

if TYPE_CHECKING:
    from repro.netmetering.cost import NetMeteringCostModel


def tariff_cost_terms(
    trading: NDArray[np.float64],
    others_trading: NDArray[np.float64],
    *,
    buy_rates: NDArray[np.float64],
    sell_rates: NDArray[np.float64],
    export_cap_kwh: float | None,
    paper_literal: bool,
    multiplicity: int = 1,
) -> NDArray[np.float64]:
    """Per-slot tariff cost for arbitrary broadcastable shapes.

    The one formula every tariff evaluation path shares — the sequential
    game, the batched CE populations and the lockstep solver all call
    this with differently shaped views, which is what keeps batched and
    sequential solves bitwise-identical: same operations, same order,
    only the leading (broadcast) axes differ.
    """
    total = np.maximum(others_trading + multiplicity * trading, 0.0)
    capped = (
        trading
        if export_cap_kwh is None
        else np.maximum(trading, -float(export_cap_kwh))
    )
    sell_term = sell_rates * total * capped
    if paper_literal:
        sell_term = -sell_term
    return np.where(trading >= 0.0, buy_rates * total * trading, sell_term)


@dataclass(frozen=True)
class TariffCostModel:
    """Vectorized cost evaluation for decoupled buy/sell rate vectors.

    Parameters
    ----------
    buy_rates:
        Retail (import) rate per slot, shape ``(H,)``; must be >= 0.
    sell_rates:
        Export compensation rate per slot, shape ``(H,)``; must be >= 0.
    export_cap_kwh:
        Maximum compensated export per slot (kWh); ``None`` = uncapped.
    paper_literal:
        ``True`` flips the selling branch to Eqn. (2)'s literal charging
        sign; ``False`` (default) implements the text's rewarding sign.
    """

    buy_rates: tuple[float, ...]
    sell_rates: tuple[float, ...]
    export_cap_kwh: float | None = None
    paper_literal: bool = False

    def __post_init__(self) -> None:
        buy = tuple(float(v) for v in self.buy_rates)
        sell = tuple(float(v) for v in self.sell_rates)
        object.__setattr__(self, "buy_rates", buy)
        object.__setattr__(self, "sell_rates", sell)
        if len(buy) == 0:
            raise ValueError("buy_rates must be non-empty")
        if len(sell) != len(buy):
            raise ValueError(
                f"sell_rates length {len(sell)} != buy_rates length {len(buy)}"
            )
        if any(not np.isfinite(v) or v < 0 for v in buy):
            raise ValueError("buy_rates must be finite and >= 0")
        if any(not np.isfinite(v) or v < 0 for v in sell):
            raise ValueError("sell_rates must be finite and >= 0")
        if self.export_cap_kwh is not None:
            cap = float(self.export_cap_kwh)
            object.__setattr__(self, "export_cap_kwh", cap)
            if not np.isfinite(cap) or cap <= 0:
                raise ValueError(
                    f"export_cap_kwh must be finite and > 0, got {cap}"
                )

    @classmethod
    def from_net_metering(cls, model: "NetMeteringCostModel") -> "TariffCostModel":
        """The legacy flat model re-expressed as decoupled rate vectors.

        ``sell_rates`` precomputes ``p_h / W`` per slot; because the
        legacy formula also evaluates ``(p / W)`` before scaling by
        ``total * y``, the conversion is bitwise-faithful.
        """
        prices = model.price_array
        return cls(
            buy_rates=tuple(float(v) for v in prices),
            sell_rates=tuple(
                float(v) for v in prices / float(model.sellback_divisor)
            ),
            export_cap_kwh=None,
            paper_literal=bool(getattr(model, "paper_literal", False)),
        )

    # -- NetMeteringCostModel-compatible surface -----------------------
    @property
    def horizon(self) -> int:
        return len(self.buy_rates)

    @property
    def price_array(self) -> NDArray[np.float64]:
        """Import-side rates — what a price-only greedy scheduler sees."""
        return np.asarray(self.buy_rates, dtype=float)

    @property
    def sell_array(self) -> NDArray[np.float64]:
        return np.asarray(self.sell_rates, dtype=float)

    def community_cost(self, total_trading: ArrayLike) -> float:
        """Total community billing at import rates, export slots floored."""
        y = self._validated(total_trading)
        cost = self.price_array * np.maximum(y, 0.0) ** 2
        return float(cost.sum())

    def customer_cost(
        self,
        trading: ArrayLike,
        others_trading: ArrayLike,
    ) -> float:
        return float(self.customer_cost_per_slot(trading, others_trading).sum())

    def customer_cost_per_slot(
        self,
        trading: ArrayLike,
        others_trading: ArrayLike,
        *,
        multiplicity: int = 1,
    ) -> NDArray[np.float64]:
        """Per-slot customer cost under the generalized tariff.

        Same demand-scaled quadratic structure and archetype
        ``multiplicity`` semantics as
        :meth:`~repro.netmetering.cost.NetMeteringCostModel.customer_cost_per_slot`.
        """
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        y = self._validated(trading)
        y_others = self._validated(others_trading)
        return tariff_cost_terms(
            y,
            y_others,
            buy_rates=self.price_array,
            sell_rates=self.sell_array,
            export_cap_kwh=self.export_cap_kwh,
            paper_literal=self.paper_literal,
            multiplicity=multiplicity,
        )

    def marginal_cost_table(
        self,
        base_trading: ArrayLike,
        others_trading: ArrayLike,
        levels: ArrayLike,
        *,
        multiplicity: int = 1,
        slot_hours: float = 1.0,
    ) -> NDArray[np.float64]:
        """Incremental cost of appliance levels on top of a base position.

        Shape ``(H, n_levels)``; the DP scheduler's table, mirroring the
        legacy model's method.
        """
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        y0 = self._validated(base_trading)
        y_others = self._validated(others_trading)
        lv = np.asarray(levels, dtype=float) * slot_hours
        if lv.ndim != 1:
            raise ValueError(f"levels must be 1-D, got shape {lv.shape}")
        base_cost = self.customer_cost_per_slot(
            y0, y_others, multiplicity=multiplicity
        )
        y_new = y0[:, None] + lv[None, :]
        cost_new = tariff_cost_terms(
            y_new,
            y_others[:, None],
            buy_rates=self.price_array[:, None],
            sell_rates=self.sell_array[:, None],
            export_cap_kwh=self.export_cap_kwh,
            paper_literal=self.paper_literal,
            multiplicity=multiplicity,
        )
        return cost_new - base_cost[:, None]

    def battery_costs(
        self,
        decisions: ArrayLike,
        *,
        initial_level: float,
        load: ArrayLike,
        pv: ArrayLike,
        others_trading: ArrayLike,
        multiplicity: int = 1,
    ) -> NDArray[np.float64]:
        """Batched battery-trajectory cost for CE populations.

        ``decisions`` has shape ``(..., H)`` (candidate end-of-slot
        battery levels); returns total cost per candidate with shape
        ``decisions.shape[:-1]``.  The pure-numpy analogue of the kernel
        backends' ``battery_costs`` — backend-independent by
        construction, so every backend prices generalized tariffs
        identically.
        """
        if multiplicity < 1:
            raise ValueError(f"multiplicity must be >= 1, got {multiplicity}")
        d = np.asarray(decisions, dtype=float)
        if d.shape[-1] != self.horizon:
            raise ValueError(
                f"decisions last axis {d.shape[-1]} != horizon {self.horizon}"
            )
        start = np.full(d.shape[:-1] + (1,), float(initial_level))
        trajectory = np.concatenate([start, d], axis=-1)
        trading = (
            np.asarray(load, dtype=float)
            + np.diff(trajectory, axis=-1)
            - np.asarray(pv, dtype=float)
        )
        cost = tariff_cost_terms(
            trading,
            np.asarray(others_trading, dtype=float),
            buy_rates=self.price_array,
            sell_rates=self.sell_array,
            export_cap_kwh=self.export_cap_kwh,
            paper_literal=self.paper_literal,
            multiplicity=multiplicity,
        )
        return np.asarray(cost.sum(axis=-1), dtype=float)

    def _validated(self, values: ArrayLike) -> NDArray[np.float64]:
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self.horizon,):
            raise ValueError(
                f"expected shape ({self.horizon},), got {arr.shape}"
            )
        if np.any(~np.isfinite(arr)):
            raise ValueError("values contain NaN or infinite entries")
        return arr
