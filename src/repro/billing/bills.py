"""Per-customer bill accounting under the net-metering tariff.

A bill decomposes into energy purchases (paid at the community-demand-
scaled price), sell-back credits (paid at the partial rate ``p/W``) and
the net total.  :func:`attack_bill_impact` quantifies ref. [8]'s
bill-increase objective: how much more the community pays when it
schedules against a manipulated guideline price but is billed at the
real-time price its own manipulated response produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.billing.realtime import RealTimePriceModel
from repro.netmetering.cost import NetMeteringCostModel
from repro.netmetering.trading import net_position
from repro.scheduling.game import GameResult


@dataclass(frozen=True)
class BillBreakdown:
    """One customer's (or archetype's) daily bill."""

    purchases_kwh: float
    sales_kwh: float
    energy_charge: float
    sellback_credit: float

    def __post_init__(self) -> None:
        if self.purchases_kwh < 0 or self.sales_kwh < 0:
            raise ValueError("energy quantities must be >= 0")
        if self.energy_charge < 0 or self.sellback_credit < 0:
            raise ValueError("charge and credit are magnitudes, must be >= 0")

    @property
    def total(self) -> float:
        """Net amount owed (negative when credits dominate)."""
        return self.energy_charge - self.sellback_credit


def customer_bill(
    trading: ArrayLike,
    others_trading: ArrayLike,
    cost_model: NetMeteringCostModel,
) -> BillBreakdown:
    """Bill one customer given everyone else's trading (Eqn. 2 split).

    The charge/credit split mirrors the cost model's buying and selling
    branches; their difference equals
    :meth:`NetMeteringCostModel.customer_cost`.
    """
    y = np.asarray(trading, dtype=float)
    per_slot = cost_model.customer_cost_per_slot(y, np.asarray(others_trading))
    bought, sold = net_position(y)
    return BillBreakdown(
        purchases_kwh=float(bought.sum()),
        sales_kwh=float(sold.sum()),
        energy_charge=float(per_slot[per_slot > 0].sum()),
        sellback_credit=float(-per_slot[per_slot < 0].sum()),
    )


def community_bills(
    result: GameResult,
    cost_model: NetMeteringCostModel,
) -> tuple[BillBreakdown, ...]:
    """Per-archetype bills for a converged game outcome."""
    total = result.community_trading
    bills = []
    for state, count in zip(result.states, result.counts):
        others = total - count * state.trading
        # Bill one instance; siblings are identical.
        bills.append(customer_bill(state.trading, others, cost_model))
    return tuple(bills)


def attack_bill_impact(
    benign: GameResult,
    attacked: GameResult,
    price_model: RealTimePriceModel,
) -> float:
    """Relative community bill increase caused by a pricing attack.

    Both outcomes are billed at the *real-time* price implied by their own
    realized grid demand: the attacked community's load spike raises the
    spike slots' real-time price, and the mis-scheduled load pays it.

    Returns
    -------
    ``(attacked_bill - benign_bill) / benign_bill``; positive values mean
    the attack cost the community money — the paper's ref. [8] "increase
    the customer electricity bill" effect.
    """
    benign_bill = _realtime_community_bill(benign, price_model)
    attacked_bill = _realtime_community_bill(attacked, price_model)
    if benign_bill <= 0:
        raise ValueError(f"benign bill must be > 0, got {benign_bill}")
    return (attacked_bill - benign_bill) / benign_bill


def _realtime_community_bill(
    result: GameResult, price_model: RealTimePriceModel
) -> float:
    demand = result.grid_demand
    prices = price_model.price(demand)
    return float((prices * demand).sum())
