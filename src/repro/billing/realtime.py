"""Ex-post real-time pricing.

The utility bills customers with the *real-time* price, set after the
fact from the demand the community actually drew — unlike the guideline
price, which is the day-ahead steering signal.  A pricing cyberattack
that piles load into one slot therefore raises the real-time price of
that slot, and everyone scheduled there pays for the spike: this is how
the manipulated guideline price becomes monetary damage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import PricingConfig


@dataclass(frozen=True)
class RealTimePriceModel:
    """Realized-demand pricing ``p_rt = base + slope * net_demand / N``.

    Parameters
    ----------
    config:
        Shares the guideline model's base/slope so the two schemes agree
        in expectation; the real-time price simply uses *realized* rather
        than anticipated demand.
    n_customers:
        Community size normalizing the per-customer demand.
    surge_exponent:
        Optional convexity: values > 1 make price spikes grow faster than
        linearly in demand, the standard scarcity-pricing stylization.
    """

    config: PricingConfig
    n_customers: int
    surge_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.n_customers < 1:
            raise ValueError(f"n_customers must be >= 1, got {self.n_customers}")
        if self.surge_exponent < 1.0:
            raise ValueError(
                f"surge_exponent must be >= 1, got {self.surge_exponent}"
            )

    def price(self, realized_grid_demand: ArrayLike) -> NDArray[np.float64]:
        """Real-time price per slot for a realized grid-demand profile."""
        demand = np.asarray(realized_grid_demand, dtype=float)
        if demand.ndim != 1 or demand.size == 0:
            raise ValueError(
                f"realized demand must be a non-empty 1-D array, got {demand.shape}"
            )
        if np.any(~np.isfinite(demand)) or np.any(demand < 0):
            raise ValueError("realized demand must be finite and >= 0")
        per_customer = demand / self.n_customers
        return (
            self.config.base_price
            + self.config.demand_slope * per_customer**self.surge_exponent
        )
