"""Billing: real-time pricing and customer bill accounting.

Section 1 of the paper distinguishes two pricing schemes: *real time
pricing* bills customers for past usage while *guideline pricing* steers
the smart home schedulers.  Pricing cyberattacks monetize through the
bill (ref. [8]'s bill-increase attack) and destabilize through the PAR;
this subpackage provides the billing side: an ex-post real-time price
derived from the realized community demand, per-customer bills under the
quadratic net-metering tariff, and the attack-impact accounting used by
the billing example and ablation bench.
"""

from repro.billing.bills import (
    BillBreakdown,
    attack_bill_impact,
    community_bills,
    customer_bill,
)
from repro.billing.realtime import RealTimePriceModel

__all__ = [
    "BillBreakdown",
    "RealTimePriceModel",
    "attack_bill_impact",
    "community_bills",
    "customer_bill",
]
