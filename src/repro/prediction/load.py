"""Net-metering-aware community energy-load prediction (Section 3).

Given a guideline-price vector, the community's future load is predicted
by *solving the scheduling game* (Algorithm 1): every customer is assumed
to cost-minimize, so the game's fixed point is the forecast.  The
net-metering-unaware variant solves the same game on the stripped
community (no PV, no batteries) — the prediction model of the paper's
ref. [8].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import GameConfig
from repro.metrics.par import par
from repro.scheduling.game import Community, GameResult, SchedulingGame


@dataclass(frozen=True)
class LoadPrediction:
    """A predicted community load profile plus diagnostics."""

    load: NDArray[np.float64]
    grid_demand: NDArray[np.float64]
    aware: bool
    game: GameResult

    @property
    def par(self) -> float:
        """Peak-to-average ratio of the predicted consumption."""
        return par(self.load)

    @property
    def grid_par(self) -> float:
        """Peak-to-average ratio of the predicted grid purchases."""
        return par(self.grid_demand)


def predict_community_load(
    community: Community,
    prices: ArrayLike,
    *,
    aware: bool = True,
    sellback_divisor: float = 2.0,
    config: GameConfig | None = None,
    rng: np.random.Generator | None = None,
) -> LoadPrediction:
    """Predict the community load under a guideline-price vector.

    Parameters
    ----------
    community:
        The community model (with PV/battery specs).
    prices:
        Guideline price per slot, shape ``(horizon,)``.
    aware:
        When False, PV panels and batteries are stripped before solving —
        the net-metering-unaware prediction of ref. [8].
    sellback_divisor:
        The paper's ``W``.
    config:
        Game convergence controls.
    rng:
        Randomness for the cross-entropy battery optimizer.
    """
    target = community if aware else community.without_net_metering()
    game = SchedulingGame(
        target,
        np.asarray(prices, dtype=float),
        sellback_divisor=sellback_divisor,
        config=config,
    )
    result = game.solve(rng=rng)
    return LoadPrediction(
        load=result.community_load,
        grid_demand=result.grid_demand,
        aware=aware,
        game=result,
    )
