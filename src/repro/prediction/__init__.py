"""Prediction: epsilon-SVR, guideline-price predictors and load prediction."""

from repro.prediction.features import (
    FeatureMatrix,
    aware_feature_dataset,
    aware_features_for_day,
    unaware_feature_dataset,
    unaware_features_for_day,
)
from repro.prediction.load import LoadPrediction, predict_community_load
from repro.prediction.renewable import (
    ClearSkyPersistenceForecaster,
    RenewableForecast,
    forecast_error_rmse,
)
from repro.prediction.price import (
    AwarePricePredictor,
    PricePredictor,
    UnawarePricePredictor,
)
from repro.prediction.svr import SupportVectorRegressor

__all__ = [
    "AwarePricePredictor",
    "ClearSkyPersistenceForecaster",
    "FeatureMatrix",
    "LoadPrediction",
    "PricePredictor",
    "RenewableForecast",
    "SupportVectorRegressor",
    "UnawarePricePredictor",
    "aware_feature_dataset",
    "aware_features_for_day",
    "forecast_error_rmse",
    "predict_community_load",
    "unaware_feature_dataset",
    "unaware_features_for_day",
]
