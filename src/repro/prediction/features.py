"""Feature engineering for guideline-price prediction.

Two featurizations are provided, matching the paper's two predictors:

- **Unaware** (the method of ref. [8]): price history only — same-slot
  lags from the previous days, a same-slot rolling mean, and a smooth
  hour-of-day encoding.
- **Aware** (this paper, the ``G(p, V, D)`` model): everything above plus
  the community *net demand* ``D - V`` — the same-slot net-demand lag and,
  crucially, the net-demand forecast for the target slot itself (the paper
  assumes renewable generation "approximately known in advance through
  prediction").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.data.pricing import PriceHistory

MIN_HISTORY_DAYS = 3
"""Day-ahead lags need at least two full prior days plus a target day."""


@dataclass(frozen=True)
class FeatureMatrix:
    """A supervised dataset: one row per slot, with names for debugging."""

    features: NDArray[np.float64]
    targets: NDArray[np.float64]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        if self.targets.shape != (self.features.shape[0],):
            raise ValueError(
                f"targets shape {self.targets.shape} inconsistent with "
                f"features {self.features.shape}"
            )
        if len(self.names) != self.features.shape[1]:
            raise ValueError(
                f"{len(self.names)} names for {self.features.shape[1]} columns"
            )


def _hour_encoding(slot_in_day: NDArray[np.int_], slots_per_day: int) -> NDArray[np.float64]:
    angle = 2.0 * np.pi * slot_in_day / slots_per_day
    return np.stack([np.sin(angle), np.cos(angle)], axis=1)


def _same_slot_mean(series: NDArray[np.float64], slots_per_day: int, upto_day: int, slot: int) -> float:
    """Mean of ``series`` at ``slot`` over all days strictly before ``upto_day``."""
    values = [series[d * slots_per_day + slot] for d in range(upto_day)]
    return float(np.mean(values))


def _base_rows(
    history: PriceHistory,
    day: int,
    include_net_demand: bool,
) -> tuple[NDArray[np.float64], tuple[str, ...]]:
    """Feature rows for all slots of ``day`` (one full day ahead of lags)."""
    spd = history.slots_per_day
    slots = np.arange(spd)
    price = history.prices
    rows = [
        price[(day - 1) * spd + slots],  # same slot, previous day
        price[(day - 2) * spd + slots],  # same slot, two days back
        np.array([_same_slot_mean(price, spd, day, s) for s in slots]),
    ]
    names = ["price_lag_1d", "price_lag_2d", "price_same_slot_mean"]
    hour = _hour_encoding(slots, spd)
    rows.extend([hour[:, 0], hour[:, 1]])
    names.extend(["hour_sin", "hour_cos"])
    if include_net_demand:
        net = history.net_demand
        rows.append(net[(day - 1) * spd + slots])
        names.append("net_demand_lag_1d")
    return np.stack(rows, axis=1), tuple(names)


def unaware_feature_dataset(history: PriceHistory) -> FeatureMatrix:
    """Training set for the price-lag-only predictor (ref. [8])."""
    if history.n_days < MIN_HISTORY_DAYS:
        raise ValueError(
            f"need >= {MIN_HISTORY_DAYS} history days, got {history.n_days}"
        )
    spd = history.slots_per_day
    blocks, targets = [], []
    names: tuple[str, ...] = ()
    for day in range(2, history.n_days):
        rows, names = _base_rows(history, day, include_net_demand=False)
        blocks.append(rows)
        targets.append(history.prices[day * spd : (day + 1) * spd])
    return FeatureMatrix(
        features=np.concatenate(blocks),
        targets=np.concatenate(targets),
        names=names,
    )


def aware_feature_dataset(history: PriceHistory) -> FeatureMatrix:
    """Training set for the net-metering-aware ``G(p, V, D)`` predictor.

    Adds the lagged net demand and the *target-slot* net demand (known to
    the utility when it designs the price, and approximately known to the
    predictor through demand and renewable forecasts).
    """
    if history.n_days < MIN_HISTORY_DAYS:
        raise ValueError(
            f"need >= {MIN_HISTORY_DAYS} history days, got {history.n_days}"
        )
    spd = history.slots_per_day
    blocks, targets = [], []
    names: tuple[str, ...] = ()
    for day in range(2, history.n_days):
        rows, base_names = _base_rows(history, day, include_net_demand=True)
        slots = np.arange(spd)
        target_net = history.net_demand[day * spd + slots]
        rows = np.concatenate([rows, target_net[:, None]], axis=1)
        names = base_names + ("net_demand_target",)
        blocks.append(rows)
        targets.append(history.prices[day * spd : (day + 1) * spd])
    return FeatureMatrix(
        features=np.concatenate(blocks),
        targets=np.concatenate(targets),
        names=names,
    )


def unaware_features_for_day(history: PriceHistory) -> NDArray[np.float64]:
    """Prediction features for the day immediately after the history."""
    if history.n_days < 2:
        raise ValueError("need at least two history days for day-ahead lags")
    extended = _extend_with_placeholder_day(history)
    rows, _ = _base_rows(extended, extended.n_days - 1, include_net_demand=False)
    return rows


def aware_features_for_day(
    history: PriceHistory,
    *,
    demand_forecast: NDArray[np.float64],
    renewable_forecast: NDArray[np.float64],
) -> NDArray[np.float64]:
    """Aware prediction features for the day after the history.

    ``demand_forecast`` and ``renewable_forecast`` are the target-day
    community forecasts, shape ``(slots_per_day,)``.
    """
    if history.n_days < 2:
        raise ValueError("need at least two history days for day-ahead lags")
    spd = history.slots_per_day
    d = np.asarray(demand_forecast, dtype=float)
    v = np.asarray(renewable_forecast, dtype=float)
    if d.shape != (spd,) or v.shape != (spd,):
        raise ValueError(
            f"forecasts must have shape ({spd},), got {d.shape} and {v.shape}"
        )
    extended = _extend_with_placeholder_day(history)
    rows, _ = _base_rows(extended, extended.n_days - 1, include_net_demand=True)
    target_net = d - v
    return np.concatenate([rows, target_net[:, None]], axis=1)


def _extend_with_placeholder_day(history: PriceHistory) -> PriceHistory:
    """Append one placeholder day so ``_base_rows`` can index lags for it.

    The placeholder values are never read: ``_base_rows(day)`` only reads
    strictly earlier days.
    """
    spd = history.slots_per_day
    pad = np.zeros(spd)
    return PriceHistory(
        prices=np.concatenate([history.prices, pad]),
        demand=np.concatenate([history.demand, pad]),
        renewable=np.concatenate([history.renewable, pad]),
        nm_active=np.concatenate([history.nm_active, np.ones(spd, dtype=bool)]),
        slots_per_day=spd,
    )
