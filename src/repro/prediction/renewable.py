"""Day-ahead renewable generation forecasting.

Section 2.2 of the paper assumes the PV output theta "is approximately
known in advance through prediction".  This module makes that assumption
explicit and testable: a clear-sky-plus-persistence forecaster produces
the renewable forecast the aware price predictor consumes, and its error
model supports the forecast-error sensitivity ablation (how much
renewable forecast error the detection advantage survives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.core.config import SolarConfig, TimeGrid
from repro.data.pricing import PriceHistory
from repro.data.solar import clear_sky_profile


@dataclass(frozen=True)
class RenewableForecast:
    """A day-ahead community PV forecast with its uncertainty estimate."""

    expected: NDArray[np.float64]
    std: NDArray[np.float64]

    def __post_init__(self) -> None:
        if self.expected.shape != self.std.shape or self.expected.ndim != 1:
            raise ValueError(
                f"expected/std shape mismatch: {self.expected.shape} vs {self.std.shape}"
            )
        if np.any(self.expected < 0) or np.any(self.std < 0):
            raise ValueError("forecast and uncertainty must be >= 0")

    def sample(self, rng: np.random.Generator) -> NDArray[np.float64]:
        """One stochastic realization consistent with the uncertainty."""
        draw = self.expected + rng.normal(0.0, 1.0) * self.std
        return np.maximum(draw, 0.0)


class ClearSkyPersistenceForecaster:
    """Forecast tomorrow's community PV from history and the clear-sky bound.

    The estimate blends two classical components:

    - *persistence*: tomorrow's weather factor resembles the recent days'
      (mean attenuation of the last ``persistence_days`` history days);
    - *clear-sky shape*: the within-day profile follows the deterministic
      clear-sky bell, which the weather factor scales.

    The uncertainty is the empirical spread of the recent weather factors
    times the clear-sky envelope.
    """

    def __init__(
        self,
        time: TimeGrid,
        solar: SolarConfig,
        *,
        persistence_days: int = 5,
    ) -> None:
        if persistence_days < 1:
            raise ValueError(f"persistence_days must be >= 1, got {persistence_days}")
        self.time = time
        self.solar = solar
        self.persistence_days = persistence_days
        self._envelope = clear_sky_profile(time, solar)

    def forecast(
        self,
        history: PriceHistory,
        *,
        peak_community_kw: float,
    ) -> RenewableForecast:
        """Day-ahead forecast from the tail of a price history.

        Parameters
        ----------
        history:
            Must contain at least one net-metering-era day with nonzero
            renewables (otherwise the forecast is zero with zero spread —
            the pre-net-metering regime).
        peak_community_kw:
            Clear-sky community peak rating; scales the envelope.
        """
        if peak_community_kw < 0:
            raise ValueError(
                f"peak_community_kw must be >= 0, got {peak_community_kw}"
            )
        spd = history.slots_per_day
        if spd != self.time.slots_per_day:
            raise ValueError(
                f"history slots_per_day {spd} != forecaster grid "
                f"{self.time.slots_per_day}"
            )
        envelope = self._envelope[: spd] * peak_community_kw * self.time.hours_per_slot
        factors = self._recent_weather_factors(history, envelope)
        if factors.size == 0:
            zero = np.zeros(spd)
            return RenewableForecast(expected=zero, std=zero)
        mean_factor = float(factors.mean())
        std_factor = float(factors.std()) if factors.size > 1 else 0.25
        return RenewableForecast(
            expected=envelope * mean_factor,
            std=envelope * std_factor,
        )

    def _recent_weather_factors(
        self, history: PriceHistory, envelope: NDArray[np.float64]
    ) -> NDArray[np.float64]:
        """Per-day attenuation factors of the most recent renewable days."""
        peak_slots = envelope > envelope.max() * 0.5
        if not np.any(peak_slots):
            return np.array([])
        factors = []
        for day in range(history.n_days - 1, -1, -1):
            sliced = history.day(day)
            if not sliced.nm_active.any() or sliced.renewable.sum() == 0:
                continue
            ratio = sliced.renewable[peak_slots] / envelope[peak_slots]
            factors.append(float(np.clip(ratio.mean(), 0.0, 1.5)))
            if len(factors) == self.persistence_days:
                break
        return np.asarray(factors[::-1])


def forecast_error_rmse(
    forecast: RenewableForecast, actual: ArrayLike
) -> float:
    """RMSE of a forecast against the realized generation."""
    realized = np.asarray(actual, dtype=float)
    if realized.shape != forecast.expected.shape:
        raise ValueError(
            f"actual shape {realized.shape} != forecast {forecast.expected.shape}"
        )
    return float(np.sqrt(np.mean((forecast.expected - realized) ** 2)))
