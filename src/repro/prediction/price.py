"""Guideline-price predictors (Section 4.1 of the paper).

Both predictors wrap the scratch-built
:class:`~repro.prediction.svr.SupportVectorRegressor`; they differ only in
featurization:

- :class:`UnawarePricePredictor` reproduces the state-of-the-art method of
  the paper's ref. [8]: SVR on the price history alone.  Trained on a
  mixed pre/post-net-metering history it predicts the *average* daily
  shape and misses the weather-driven midday price gap.
- :class:`AwarePricePredictor` is the paper's contribution: SVR on the
  ``G(p, V, D)`` series, whose target-slot net-demand feature lets it
  track the gap.
"""

from __future__ import annotations

import abc

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.data.pricing import PriceHistory
from repro.prediction.features import (
    aware_feature_dataset,
    aware_features_for_day,
    unaware_feature_dataset,
    unaware_features_for_day,
)
from repro.prediction.svr import SupportVectorRegressor


class PricePredictor(abc.ABC):
    """Common interface: fit on a history, predict the next day's prices."""

    def __init__(self, *, svr: SupportVectorRegressor | None = None) -> None:
        self._svr = svr if svr is not None else SupportVectorRegressor()
        self._history: PriceHistory | None = None

    @property
    def is_fitted(self) -> bool:
        return self._history is not None

    @property
    def history(self) -> PriceHistory:
        if self._history is None:
            raise RuntimeError("predictor not fitted")
        return self._history

    @abc.abstractmethod
    def fit(self, history: PriceHistory) -> "PricePredictor":
        """Train the underlying SVR on the history."""

    @abc.abstractmethod
    def predict_day(
        self,
        *,
        demand_forecast: ArrayLike | None = None,
        renewable_forecast: ArrayLike | None = None,
    ) -> NDArray[np.float64]:
        """Predict the guideline price for the day after the history."""

    @staticmethod
    def _floored(prices: NDArray[np.float64]) -> NDArray[np.float64]:
        """Prices are physically non-negative; clip tiny negative SVR output."""
        return np.maximum(prices, 0.0)


class UnawarePricePredictor(PricePredictor):
    """SVR on price lags only — the paper's ref. [8] baseline."""

    def fit(self, history: PriceHistory) -> "UnawarePricePredictor":
        dataset = unaware_feature_dataset(history)
        self._svr.fit(dataset.features, dataset.targets)
        self._history = history
        return self

    def predict_day(
        self,
        *,
        demand_forecast: ArrayLike | None = None,
        renewable_forecast: ArrayLike | None = None,
    ) -> NDArray[np.float64]:
        """Forecasts are accepted for interface parity but ignored."""
        features = unaware_features_for_day(self.history)
        return self._floored(self._svr.predict(features))


class AwarePricePredictor(PricePredictor):
    """SVR on the net-metering-aware ``G(p, V, D)`` series."""

    def fit(self, history: PriceHistory) -> "AwarePricePredictor":
        dataset = aware_feature_dataset(history)
        self._svr.fit(dataset.features, dataset.targets)
        self._history = history
        return self

    def predict_day(
        self,
        *,
        demand_forecast: ArrayLike | None = None,
        renewable_forecast: ArrayLike | None = None,
    ) -> NDArray[np.float64]:
        """Predict using the target day's demand and renewable forecasts.

        Both forecasts are required: the aware model's defining feature is
        the target-slot net demand.
        """
        if demand_forecast is None or renewable_forecast is None:
            raise ValueError(
                "aware prediction requires demand_forecast and renewable_forecast"
            )
        features = aware_features_for_day(
            self.history,
            demand_forecast=np.asarray(demand_forecast, dtype=float),
            renewable_forecast=np.asarray(renewable_forecast, dtype=float),
        )
        return self._floored(self._svr.predict(features))
