"""Epsilon-insensitive support vector regression, implemented from scratch.

The paper's detection layer (its refs. [7, 10]) predicts the guideline
price with SVR.  No off-the-shelf SVR is available offline, so this module
implements the standard dual formulation directly:

    minimize over beta in [-C, C]^n :
        0.5 * beta^T K~ beta - y^T beta + eps * ||beta||_1

where ``K~ = K + 1`` is the kernel matrix augmented with a constant
(absorbing the bias into the kernel removes the dual equality constraint),
and ``beta_i = alpha_i - alpha_i^*``.  The problem is solved by cyclic
dual coordinate descent with the exact closed-form per-coordinate update
(a soft-threshold followed by box clipping); for the few-hundred-sample
training sets used here this converges in milliseconds.

Predictions are ``f(x) = sum_i beta_i * K~(x_i, x)``.  Features and
targets are standardized internally.
"""

from __future__ import annotations

from typing import Literal

import numpy as np
from numpy.typing import ArrayLike, NDArray

KernelName = Literal["rbf", "linear", "poly"]


def _kernel_matrix(
    a: NDArray[np.float64],
    b: NDArray[np.float64],
    kernel: KernelName,
    gamma: float,
    degree: int,
    coef0: float,
) -> NDArray[np.float64]:
    if kernel == "linear":
        return a @ b.T
    if kernel == "poly":
        return (gamma * (a @ b.T) + coef0) ** degree
    if kernel == "rbf":
        sq_a = np.sum(a**2, axis=1)[:, None]
        sq_b = np.sum(b**2, axis=1)[None, :]
        sq_dist = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * sq_dist)
    raise ValueError(f"unknown kernel {kernel!r}")


class SupportVectorRegressor:
    """Kernel epsilon-SVR trained by dual coordinate descent.

    Parameters
    ----------
    kernel:
        ``"rbf"`` (default), ``"linear"`` or ``"poly"``.
    c:
        Box constraint on the dual coefficients (regularization inverse).
    epsilon:
        Half-width of the insensitive tube, in *standardized* target units.
    gamma:
        Kernel width; ``None`` uses the ``1 / (d * var)`` heuristic.
    degree, coef0:
        Polynomial kernel parameters.
    max_iterations, tol:
        Coordinate-descent stopping controls: stop when the largest
        per-coordinate change in one sweep falls below ``tol``.
    """

    def __init__(
        self,
        *,
        kernel: KernelName = "rbf",
        c: float = 10.0,
        epsilon: float = 0.05,
        gamma: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        max_iterations: int = 200,
        tol: float = 1e-5,
    ) -> None:
        if kernel not in ("rbf", "linear", "poly"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if c <= 0:
            raise ValueError(f"c must be > 0, got {c}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        if gamma is not None and gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        self.kernel: KernelName = kernel
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.degree = int(degree)
        self.coef0 = float(coef0)
        self.max_iterations = int(max_iterations)
        self.tol = float(tol)
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, features: ArrayLike, targets: ArrayLike) -> "SupportVectorRegressor":
        """Fit the regressor; returns ``self`` for chaining."""
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError(
                f"targets must have shape ({x.shape[0]},), got {y.shape}"
            )
        if x.shape[0] < 2:
            raise ValueError("need at least two training samples")
        if np.any(~np.isfinite(x)) or np.any(~np.isfinite(y)):
            raise ValueError("training data contains NaN or infinite values")

        self._x_mean = x.mean(axis=0)
        self._x_std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        xs = (x - self._x_mean) / self._x_std
        ys = (y - self._y_mean) / self._y_std

        gamma = self.gamma
        if gamma is None:
            variance = float(xs.var())
            gamma = 1.0 / (xs.shape[1] * variance) if variance > 1e-12 else 1.0
        self._gamma = gamma

        k = _kernel_matrix(xs, xs, self.kernel, gamma, self.degree, self.coef0)
        k_tilde = k + 1.0  # absorb the bias term
        n = xs.shape[0]
        beta = np.zeros(n)
        k_beta = np.zeros(n)  # running K~ @ beta
        diag = np.diag(k_tilde).copy()
        diag = np.where(diag > 1e-12, diag, 1e-12)

        self._n_sweeps = 0
        for sweep in range(self.max_iterations):
            max_change = 0.0
            for i in range(n):
                gradient_rest = k_beta[i] - diag[i] * beta[i] - ys[i]
                z = -gradient_rest
                candidate = np.sign(z) * max(abs(z) - self.epsilon, 0.0) / diag[i]
                new_beta = min(max(candidate, -self.c), self.c)
                change = new_beta - beta[i]
                if change != 0.0:  # repro: noqa[FLT001] exact: skip no-op updates
                    k_beta += change * k_tilde[:, i]
                    beta[i] = new_beta
                    max_change = max(max_change, abs(change))
            self._n_sweeps = sweep + 1
            if max_change < self.tol:
                break

        self._beta = beta
        self._x_train = xs
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict(self, features: ArrayLike) -> NDArray[np.float64]:
        """Predict targets for a feature matrix of shape ``(m, d)``."""
        if not self._fitted:
            raise RuntimeError("predict called before fit")
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self._x_train.shape[1]:
            raise ValueError(
                f"feature dimension {x.shape[1]} != training dimension "
                f"{self._x_train.shape[1]}"
            )
        xs = (x - self._x_mean) / self._x_std
        k = _kernel_matrix(
            xs, self._x_train, self.kernel, self._gamma, self.degree, self.coef0
        )
        ys = (k + 1.0) @ self._beta
        return ys * self._y_std + self._y_mean

    # ------------------------------------------------------------------
    @property
    def support_vector_count(self) -> int:
        """Number of training points with nonzero dual coefficient."""
        if not self._fitted:
            raise RuntimeError("model not fitted")
        return int(np.sum(np.abs(self._beta) > 1e-9))

    @property
    def n_sweeps(self) -> int:
        """Coordinate-descent sweeps used by the last fit."""
        if not self._fitted:
            raise RuntimeError("model not fitted")
        return self._n_sweeps

    def score_rmse(self, features: ArrayLike, targets: ArrayLike) -> float:
        """Root-mean-square error on a labelled set."""
        y = np.asarray(targets, dtype=float)
        predictions = self.predict(features)
        if y.shape != predictions.shape:
            raise ValueError(f"targets shape {y.shape} != predictions {predictions.shape}")
        return float(np.sqrt(np.mean((predictions - y) ** 2)))
