"""Shard workers: each owns the engines of the communities its shard serves.

A :class:`ShardWorker` is the fleet's unit of ownership: the consistent
hash ring assigns each community id to exactly one shard, and the
shard's worker holds those communities'
:class:`~repro.stream.pipeline.StreamEngine` instances.  Workers advance
their communities in *lockstep ticks* — one event per non-exhausted
community per tick, in ascending community-id order.

Determinism: every engine is fully self-contained (own source, own
pipeline, own RNG), so no interleaving of communities can change any
community's verdicts; the fixed tick order exists so fleet-level
counters, envelope batches and checkpoint files are reproducible run to
run.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.scoreboard import attach_scoreboard
from repro.obs.trace import TRACER
from repro.stream.events import MeterReading, StreamEvent
from repro.stream.pipeline import SlotDetection, StreamEngine


class ShardWorker:
    """One shard's communities and the engines that serve them."""

    def __init__(self, shard_id: str, engines: Mapping[str, StreamEngine]) -> None:
        if not shard_id:
            raise ValueError("shard_id must be a non-empty string")
        self.shard_id = shard_id
        # Fixed iteration order: ascending community id.
        self._engines: dict[str, StreamEngine] = {
            cid: engines[cid] for cid in sorted(engines)
        }
        for cid, engine in self._engines.items():
            # Resilience scoreboard + trace identity: both pure
            # observers (no RNG, no verdict influence).  The attach
            # backfills any restored history, so a resumed fleet's
            # boards equal the uncut run's.
            attach_scoreboard(engine.pipeline)
            engine.pipeline.trace_tags = {"shard": shard_id, "community": cid}

    # ------------------------------------------------------------------
    @property
    def community_ids(self) -> tuple[str, ...]:
        return tuple(self._engines)

    @property
    def n_communities(self) -> int:
        return len(self._engines)

    def engine(self, community_id: str) -> StreamEngine:
        """The engine serving one community (raises on unknown ids)."""
        try:
            return self._engines[community_id]
        except KeyError:
            raise ValueError(
                f"community {community_id!r} is not owned by shard {self.shard_id!r}"
            ) from None

    @property
    def exhausted(self) -> bool:
        """True once every owned community's source has dried up."""
        return all(engine.exhausted for engine in self._engines.values())

    @property
    def events_processed(self) -> int:
        return sum(engine.events_processed for engine in self._engines.values())

    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Pump one event from each non-exhausted community.

        Returns the number of events actually delivered this tick; a
        stalled (fault-injected) community contributes zero and is
        simply retried on the next tick.
        """
        pumped = 0
        with TRACER.span("fleet.shard_tick", category="fleet", shard=self.shard_id):
            for engine in self._engines.values():
                if engine.exhausted:
                    continue
                before = engine.events_processed
                engine.step()
                pumped += engine.events_processed - before
        return pumped

    def ingest(self, community_id: str, event: StreamEvent) -> SlotDetection | None:
        """Feed one externally supplied event into a community's pipeline.

        Mirrors the single-community service's ``POST /events`` path:
        the event bypasses the engine's own source and goes straight to
        the pipeline, so ingestion composes with (but does not consume)
        the attached source.
        """
        engine = self.engine(community_id)
        detection = engine.pipeline.handle(event)
        if isinstance(event, MeterReading):
            return detection
        return None

    def scoreboards(self) -> dict[str, dict[str, Any]]:
        """Per-community resilience scoreboard reports, ascending cid."""
        reports: dict[str, dict[str, Any]] = {}
        for cid, engine in self._engines.items():
            board = engine.pipeline.scoreboard
            if board is None:  # pragma: no cover - attached in __init__
                board = attach_scoreboard(engine.pipeline)
            reports[cid] = board.report()
        return reports

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Aggregated + per-community detection statistics for /status."""
        per_community: dict[str, dict[str, Any]] = {}
        totals = {
            "communities": self.n_communities,
            "events_processed": self.events_processed,
            "slots_processed": 0,
            "days_completed": 0,
            "flags_total": 0,
            "repairs": 0,
            "gaps": 0,
        }
        for cid, engine in self._engines.items():
            stats = engine.pipeline.detection_stats()
            stats["events_processed"] = engine.events_processed
            stats["exhausted"] = engine.exhausted
            per_community[cid] = stats
            totals["slots_processed"] += int(stats["slots_processed"])
            totals["days_completed"] += int(stats["days_completed"])
            totals["flags_total"] += int(stats["flags_total"])
            totals["repairs"] += int(stats["repairs"])
            totals["gaps"] += int(stats["gaps"])
        return {
            "shard": self.shard_id,
            "exhausted": self.exhausted,
            "totals": totals,
            "communities": per_community,
        }
