"""Fleet capacity benchmark: events/sec and lockstep-tick latency tails.

``repro-fleet-bench`` builds a seeded multi-community fleet with the
:class:`~repro.fleet.loadgen.LoadGenerator`, drains it tick by tick, and
appends one entry to ``BENCH_fleet.json`` (same ``{"entries": [...]}``
trajectory format as ``BENCH_hotpaths.json``): fleet shape, build time,
sustained events/sec, and p50/p95/p99 per-tick latency — both raw and
with the cold first tick excluded (``tick_latency.cold_first_tick_ms``
+ ``tick_latency.warm``), so steady-state regressions are not masked by
cold-start skew — plus the ``fleet.*`` perf counters and per-shard
event totals.  ``--quick`` is the CI smoke shape (4 communities ×
2 shards, 2 days).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.presets import smoke_preset
from repro.fleet.engine import FleetEngine, build_fleet
from repro.fleet.loadgen import LoadGenerator
from repro.obs.logs import configure_logging, get_logger
from repro.perf.counters import PERF
from repro.perf.bench import collect_environment, write_bench_json
from repro.simulation.cache import GameSolutionCache


def _drain(
    fleet: FleetEngine, *, max_ticks: int | None = None
) -> tuple[list[float], int]:
    """Tick the fleet dry, timing every lockstep tick.

    Returns (per-tick wall-clock seconds, events pumped).  Stalls are
    impossible here — the load generator attaches plain synthetic
    sources — so the loop terminates exactly at exhaustion.
    """
    tick_seconds: list[float] = []
    events = 0
    while not fleet.exhausted:
        if max_ticks is not None and len(tick_seconds) >= max_ticks:
            break
        start = time.perf_counter()
        events += fleet.tick()
        tick_seconds.append(time.perf_counter() - start)
    return tick_seconds, events


def run_fleet_bench(
    *,
    communities: int,
    shards: int,
    days: int,
    customers: int,
    meters: int,
    seed: int,
    max_ticks: int | None = None,
) -> dict[str, Any]:
    """Build, drain and measure one fleet; returns the bench entry body."""
    logger = get_logger("fleet.bench")
    base = smoke_preset(seed=seed)
    base = base.with_updates(
        n_customers=customers,
        detection=replace(base.detection, n_monitored_meters=meters),
    )
    generator = LoadGenerator(
        base, n_communities=communities, n_days=days, seed=seed
    )
    specs = generator.specs()

    cache = GameSolutionCache()
    build_start = time.perf_counter()
    fleet = build_fleet(specs, n_shards=shards, cache=cache)
    build_s = time.perf_counter() - build_start
    logger.info(
        "built fleet: %d communities on %d shards in %.2fs "
        "(cache: %d entries, hit rate %.2f)",
        fleet.n_communities, shards, build_s, cache.size, cache.hit_rate,
    )

    baseline = PERF.snapshot()
    drain_start = time.perf_counter()
    tick_seconds, events = _drain(fleet, max_ticks=max_ticks)
    drain_s = time.perf_counter() - drain_start
    counters = PERF.delta_since(baseline)

    ticks_ms = np.asarray(tick_seconds) * 1e3
    # The first lockstep tick pays cold-start costs (lazy imports, page
    # faults, branch-predictor warmup) that the steady state never sees;
    # report it explicitly and publish warm percentiles alongside the
    # raw ones so regressions in either regime are visible separately.
    warm_ms = ticks_ms[1:]
    warm = {
        "ticks": int(len(warm_ms)),
        "p50_ms": float(np.percentile(warm_ms, 50)) if len(warm_ms) else 0.0,
        "p95_ms": float(np.percentile(warm_ms, 95)) if len(warm_ms) else 0.0,
        "p99_ms": float(np.percentile(warm_ms, 99)) if len(warm_ms) else 0.0,
        "max_ms": float(warm_ms.max()) if len(warm_ms) else 0.0,
    }
    latency: dict[str, Any] = {
        "ticks": len(tick_seconds),
        "p50_ms": float(np.percentile(ticks_ms, 50)) if len(ticks_ms) else 0.0,
        "p95_ms": float(np.percentile(ticks_ms, 95)) if len(ticks_ms) else 0.0,
        "p99_ms": float(np.percentile(ticks_ms, 99)) if len(ticks_ms) else 0.0,
        "max_ms": float(ticks_ms.max()) if len(ticks_ms) else 0.0,
        "cold_first_tick_ms": float(ticks_ms[0]) if len(ticks_ms) else 0.0,
        "warm": warm,
    }
    throughput = {
        "events": events,
        "drain_s": drain_s,
        "events_per_s": events / drain_s if drain_s > 0 else 0.0,
    }
    per_shard = {
        worker.shard_id: {
            "communities": worker.n_communities,
            "events_processed": worker.events_processed,
        }
        for worker in fleet.workers
    }
    status_totals = fleet.status()["totals"]

    logger.info(
        "drained %d events in %.2fs (%.0f events/s, tick p99 %.2f ms, "
        "cold first tick %.2f ms, warm p99 %.2f ms)",
        events, drain_s, throughput["events_per_s"], latency["p99_ms"],
        latency["cold_first_tick_ms"], warm["p99_ms"],
    )
    return {
        "fleet": {
            "communities": communities,
            "shards": shards,
            "days": days,
            "customers": customers,
            "meters": meters,
            "seed": seed,
            "vnodes": fleet.ring.vnodes,
        },
        "build_s": build_s,
        "throughput": throughput,
        "tick_latency": latency,
        "per_shard": per_shard,
        "totals": status_totals,
        "cache": {
            "entries": cache.size,
            "hit_rate": cache.hit_rate,
        },
        "fleet_counters": {
            name: value
            for name, value in counters.items()
            if name.startswith("fleet.")
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet-bench",
        description="Drain a seeded synthetic fleet and append events/sec "
        "and tick-latency percentiles to a BENCH_fleet.json trajectory.",
    )
    parser.add_argument("--communities", type=int, default=12)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument(
        "--customers", type=int, default=12,
        help="customers per community (smoke-preset override)",
    )
    parser.add_argument(
        "--meters", type=int, default=4,
        help="monitored meters per community",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="stop the drain early after this many lockstep ticks",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_fleet.json"),
        help="perf-trajectory file to append to",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: 4 communities, 2 shards, 2 days",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.communities = 4
        args.shards = 2
        args.days = 2
    for name in ("communities", "shards", "days", "customers", "meters"):
        if getattr(args, name) < 1:
            parser.error(f"--{name} must be >= 1")

    configure_logging()
    logger = get_logger("fleet.bench")
    body = run_fleet_bench(
        communities=args.communities,
        shards=args.shards,
        days=args.days,
        customers=args.customers,
        meters=args.meters,
        seed=args.seed,
        max_ticks=args.max_ticks,
    )
    environment = collect_environment()
    entry: dict[str, Any] = {
        "environment": environment,
        "key": f"{environment['git_rev'] or 'unknown'}+fleet",
        **body,
    }
    write_bench_json(args.out, entry)
    logger.info("appended fleet entry to %s", args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
