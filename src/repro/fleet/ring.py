"""Deterministic consistent-hash ring: community ids → shard ids.

The ring places ``vnodes`` virtual nodes per shard on a 64-bit circle
using SHA-256 (salt-free, unlike Python's builtin ``hash``), so the
mapping is identical across processes, platforms and runs — a hard
requirement for the fleet's determinism contract and for resuming a
fleet from per-shard checkpoints.

Consistent hashing's stability property is what makes shard membership
changes cheap, and it is *provable* here because the ring is pure
arithmetic:

- adding a shard moves only the keys whose owning arc was claimed by
  one of the new shard's virtual nodes — every moved key lands on the
  new shard, and no key moves between pre-existing shards;
- removing a shard moves only the keys it owned — every other key keeps
  its shard.

``tests/test_fleet_ring.py`` asserts both properties over randomized
key populations.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterable, Sequence


def ring_point(token: str) -> int:
    """Stable 64-bit ring coordinate of a token (first 8 SHA-256 bytes)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash assignment of string keys onto named shards.

    Parameters
    ----------
    shards:
        Initial shard ids (order-insensitive: the ring layout depends
        only on the set of ids and ``vnodes``).
    vnodes:
        Virtual nodes per shard.  More vnodes smooth the key balance;
        the default (64) keeps the worst shard within a few percent of
        uniform for fleet-sized key counts.
    """

    def __init__(self, shards: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        # Derived state, rebuilt exactly from (shards, vnodes) — which is
        # what to_dict/from_dict round-trip.
        self._ring: list[tuple[int, str]] = []  # repro: noqa[CKPT001] derived from shards
        self._shards: set[str] = set()
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        """Current shard ids, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: object) -> bool:
        return shard_id in self._shards

    # ------------------------------------------------------------------
    def add_shard(self, shard_id: str) -> None:
        """Place one shard's virtual nodes on the ring."""
        if not shard_id or not isinstance(shard_id, str):
            raise ValueError(f"shard id must be a non-empty string, got {shard_id!r}")
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.add(shard_id)
        for replica in range(self.vnodes):
            point = ring_point(f"{shard_id}#{replica}")
            # (point, owner) tuples keep a total order even on the
            # astronomically unlikely 64-bit point collision.
            bisect.insort(self._ring, (point, shard_id))

    def remove_shard(self, shard_id: str) -> None:
        """Take one shard's virtual nodes off the ring."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        self._ring = [(p, s) for p, s in self._ring if s != shard_id]

    # ------------------------------------------------------------------
    def assign(self, key: str) -> str:
        """The shard owning ``key``: first vnode clockwise of its point."""
        if not self._ring:
            raise ValueError("cannot assign on an empty ring (no shards)")
        point = ring_point(key)
        index = bisect.bisect_left(self._ring, (point, ""))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def assignments(self, keys: Sequence[str]) -> dict[str, str]:
        """Key → owning shard for every key, in the given order."""
        return {key: self.assign(key) for key in keys}

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON form: the shard set and vnode count rebuild the ring
        deterministically (the layout is pure arithmetic)."""
        return {"vnodes": self.vnodes, "shards": list(self.shards)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HashRing":
        return cls(
            (str(s) for s in payload["shards"]), vnodes=int(payload["vnodes"])
        )
