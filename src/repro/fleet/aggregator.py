"""Fleet-wide HTTP front door: status, detections, metrics, ingestion.

The :class:`FleetAggregator` is the multi-tenant twin of
:class:`repro.service.app.DetectionService`: one lock-guarded fleet
engine behind a threaded stdlib HTTP server, structured 4xx JSON for
every client error, checkpoint-on-SIGTERM.

Endpoints
---------
- ``GET /status`` — fleet totals, per-shard/per-community stats, ring
  assignments.
- ``GET /shards`` — the consistent-hash ring layout.
- ``GET /detections?community=ID&since=S&limit=L`` — merged fleet
  timeline (tagged with community + shard) or one community's slice.
- ``GET /metrics`` — perf-counter deltas since the previous scrape;
  ``?format=prometheus`` publishes per-shard gauges plus the fleet
  scoreboard series and returns the text exposition (fleet histograms
  included) instead.
- ``GET /scoreboard`` — resilience metrics (MTTD/MTTR/availability/
  false alarms/per-family confusion) per community, per shard (exact
  merge) and fleet-wide.
- ``GET /trace`` — the merged fleet Chrome trace (deterministic
  pid/tid per shard/community); 400 ``trace_disabled`` unless the
  tracer is on.
- ``GET /healthz`` — liveness.
- ``POST /advance`` — lockstep ticks (``{"ticks": N}`` and/or
  ``{"until_day": D}``).
- ``POST /envelope`` — batched multi-community event ingestion.
- ``POST /checkpoint`` — persist per-shard checkpoints now.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.fleet.checkpoint import save_fleet_checkpoint
from repro.fleet.engine import FleetEngine
from repro.obs.fleettrace import to_fleet_chrome_trace
from repro.obs.logs import configure_logging, get_logger
from repro.obs.prometheus import render_prometheus
from repro.obs.scoreboard import ScoreboardPublisher
from repro.obs.trace import TRACER
from repro.perf.counters import PERF
from repro.service.app import ServiceError, _int_field, _int_param, _TextResponse


class FleetAggregator:
    """Thread-safe facade over one fleet engine.

    Parameters
    ----------
    fleet:
        The fleet to serve.
    checkpoint_dir:
        Directory :meth:`checkpoint` (and the SIGTERM handler) writes
        per-shard checkpoints into; ``None`` disables checkpointing.
    """

    def __init__(
        self,
        fleet: FleetEngine,
        *,
        checkpoint_dir: str | Path | None = None,
    ) -> None:
        self.fleet = fleet
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self._lock = threading.Lock()
        self._metrics_baseline = PERF.snapshot()
        self._scoreboard_publisher = ScoreboardPublisher(
            PERF, prefix="fleet.scoreboard"
        )

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        with self._lock:
            status = self.fleet.status()
            status["checkpoint_dir"] = (
                None if self.checkpoint_dir is None else str(self.checkpoint_dir)
            )
            return status

    def shards(self) -> dict[str, Any]:
        with self._lock:
            return {
                "vnodes": self.fleet.ring.vnodes,
                "shards": list(self.fleet.shard_ids),
                "assignments": self.fleet.ring.assignments(
                    self.fleet.community_ids
                ),
            }

    def detections(
        self,
        *,
        community: str | None = None,
        since: int = 0,
        limit: int | None = None,
    ) -> dict[str, Any]:
        with self._lock:
            try:
                return self.fleet.detections(
                    community=community, since=since, limit=limit
                )
            except ValueError as exc:
                raise ServiceError(str(exc)) from exc

    def advance(
        self, *, ticks: int | None = None, until_day: int | None = None
    ) -> dict[str, Any]:
        if ticks is not None and ticks < 0:
            raise ServiceError(f"ticks must be >= 0, got {ticks}")
        if until_day is not None and until_day < 0:
            raise ServiceError(f"until_day must be >= 0, got {until_day}")
        with self._lock:
            stats = self.fleet.advance(max_ticks=ticks, until_day=until_day)
            return stats.to_dict()

    def ingest_envelope(self, payload: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            try:
                return self.fleet.ingest_envelope(payload)
            except (ValueError, RuntimeError) as exc:
                raise ServiceError(str(exc)) from exc

    def metrics(self) -> dict[str, Any]:
        """JSON deltas since the previous scrape plus lifetime totals."""
        with self._lock:
            delta = PERF.delta_since(self._metrics_baseline)
            totals = PERF.snapshot()
            self._metrics_baseline = totals
            return {
                "interval": delta,
                "totals": totals,
                "fleet": PERF.prefixed("fleet."),
                "events_processed": self.fleet.events_processed,
            }

    def metrics_prometheus(self) -> str:
        """Prometheus exposition with fresh per-shard gauges.

        Lifetime totals only (no JSON-delta re-baseline), so Prometheus
        scrapes and JSON scrapes can interleave, exactly like the
        single-community service.  Each scrape also republishes the
        fleet scoreboard: availability/false-alarm/episode gauges plus
        ``fleet.scoreboard.mttd_slots``/``mttr_slots`` histogram
        samples (only the episodes new since the previous scrape).
        """
        with self._lock:
            self.fleet.publish_shard_gauges()
            scoreboard = self.fleet.scoreboard()
            self._scoreboard_publisher.publish(
                scoreboard["fleet"], scoreboard["communities"]
            )
            return render_prometheus(PERF)

    def scoreboard(self) -> dict[str, Any]:
        """Resilience metrics: per community, per shard, fleet-wide."""
        with self._lock:
            return self.fleet.scoreboard()

    def trace_chrome(self) -> dict[str, Any]:
        """The merged fleet Chrome trace (Perfetto-loadable JSON)."""
        with self._lock:
            if not TRACER.enabled and not TRACER.spans():
                raise ServiceError(
                    "tracing is disabled (start with --trace)",
                    code="trace_disabled",
                )
            return to_fleet_chrome_trace(TRACER, self.fleet.trace_layout())

    def checkpoint(self) -> dict[str, Any]:
        if self.checkpoint_dir is None:
            raise ServiceError("aggregator started without a checkpoint directory")
        with self._lock:
            manifest = save_fleet_checkpoint(self.fleet, self.checkpoint_dir)
            shards = list(self.fleet.shard_ids)
            events_processed = self.fleet.events_processed
        return {
            "checkpoint": str(manifest),
            "shards": shards,
            "events_processed": events_processed,
        }


class _FleetHandler(BaseHTTPRequestHandler):
    """JSON-in/JSON-out routing onto the aggregator."""

    aggregator: FleetAggregator  # set by create_fleet_server()

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _respond_text(self, status: int, response: _TextResponse) -> None:
        self._send_body(status, response.body.encode("utf-8"), response.content_type)

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as exc:
            raise ServiceError("invalid Content-Length header") from exc
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        from urllib.parse import parse_qs, urlparse

        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            payload = self._route(method, parsed.path, query)
        except ServiceError as exc:
            self._respond(400, {"error": str(exc), "code": exc.code, "status": 400})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(
                500,
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": "internal_error",
                    "status": 500,
                },
            )
            return
        if payload is None:
            self._respond(
                404,
                {
                    "error": f"no route for {method} {parsed.path}",
                    "code": "not_found",
                    "status": 404,
                },
            )
        elif isinstance(payload, _TextResponse):
            self._respond_text(200, payload)
        else:
            self._respond(200, payload)

    def _route(
        self, method: str, path: str, query: dict[str, list[str]]
    ) -> dict[str, Any] | _TextResponse | None:
        aggregator = self.aggregator
        if method == "GET":
            if path == "/status":
                return aggregator.status()
            if path == "/shards":
                return aggregator.shards()
            if path == "/detections":
                community_values = query.get("community")
                return aggregator.detections(
                    community=(
                        None if not community_values else community_values[0]
                    ),
                    since=_int_param(query, "since", 0) or 0,
                    limit=_int_param(query, "limit", None),
                )
            if path == "/metrics":
                fmt = query.get("format", ["json"])[0]
                if fmt == "prometheus":
                    return _TextResponse(aggregator.metrics_prometheus())
                if fmt != "json":
                    raise ServiceError(
                        f"format must be 'json' or 'prometheus', got {fmt!r}"
                    )
                return aggregator.metrics()
            if path == "/scoreboard":
                return aggregator.scoreboard()
            if path == "/trace":
                return aggregator.trace_chrome()
            if path == "/healthz":
                return {"ok": True}
            return None
        if method == "POST":
            if path == "/advance":
                body = self._read_json()
                unknown = set(body) - {"ticks", "until_day"}
                if unknown:
                    raise ServiceError(f"unknown fields: {sorted(unknown)}")
                return aggregator.advance(
                    ticks=_int_field(body, "ticks"),
                    until_day=_int_field(body, "until_day"),
                )
            if path == "/envelope":
                return aggregator.ingest_envelope(self._read_json())
            if path == "/checkpoint":
                body = self._read_json()
                if body:
                    raise ServiceError(f"unknown fields: {sorted(body)}")
                return aggregator.checkpoint()
            return None
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


def create_fleet_server(
    aggregator: FleetAggregator, *, host: str = "127.0.0.1", port: int = 8010
) -> ThreadingHTTPServer:
    """Bind a threaded HTTP server to the aggregator (port 0 = ephemeral)."""
    handler = type("BoundFleetHandler", (_FleetHandler,), {"aggregator": aggregator})
    return ThreadingHTTPServer((host, port), handler)


def run_fleet_service(
    aggregator: FleetAggregator,
    *,
    host: str = "127.0.0.1",
    port: int = 8010,
    install_signals: bool = True,
) -> None:
    """Serve forever; checkpoint and exit cleanly on SIGTERM/SIGINT."""
    server = create_fleet_server(aggregator, host=host, port=port)

    def _shutdown(signum: int, frame: Any) -> None:
        if aggregator.checkpoint_dir is not None:
            aggregator.checkpoint()
        # shutdown() must come from another thread; serve_forever() is
        # blocking this one via the signal-interrupted frame.
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _shutdown)
        signal.signal(signal.SIGINT, _shutdown)
    configure_logging()
    logger = get_logger("fleet.service")
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    logger.info(
        "serving fleet aggregator on http://%s:%s (%d communities, %d shards)",
        bound_host,
        bound_port,
        aggregator.fleet.n_communities,
        len(aggregator.fleet.shard_ids),
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    if aggregator.checkpoint_dir is not None:
        logger.info("fleet checkpoint saved to %s", aggregator.checkpoint_dir)
